//! The per-file source model the rules operate on.
//!
//! A [`SourceFile`] owns the full token stream plus the derived facts every
//! rule needs: which lines are test code (`#[cfg(test)]` / `#[test]` item
//! bodies), which lines carry suppression directives, where comments sit,
//! and a flat list of `fn` / `enum` items with their doc comments,
//! attributes, and signature tokens.

use crate::lexer::{lex, Token, TokenKind};

/// A function parameter: its binding name and the tokens of its type.
#[derive(Clone, Debug)]
pub struct Param {
    /// The parameter name (`_` for patterns the scanner does not resolve,
    /// `self` for receivers).
    pub name: String,
    /// The type's token texts, in order.
    pub ty: Vec<String>,
    /// Line of the parameter name.
    pub line: u32,
}

/// One `fn` item (free function, inherent/trait method, or nested fn).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function name.
    pub name: String,
    /// The `Self` type of the enclosing `impl` block, when the fn is an
    /// inherent or trait method (`impl Energy { fn scaled.. }` → `Energy`,
    /// `impl Display for Power { .. }` → `Power`). `None` for free fns.
    pub owner: Option<String>,
    /// `true` for `pub` (including `pub(crate)` etc.) functions.
    pub is_pub: bool,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Column of the `fn` keyword.
    pub col: u32,
    /// Outer attributes, as flattened text (e.g. `must_use`,
    /// `cfg(feature = "x")`).
    pub attrs: Vec<String>,
    /// Concatenated outer doc-comment text (`///` and `/** */`).
    pub doc: String,
    /// Parsed parameters.
    pub params: Vec<Param>,
    /// Return-type token texts (empty for `()`-returning functions).
    pub ret: Vec<String>,
    /// Code-token index range of the body (start `{` .. matching `}`),
    /// when the fn has one.
    pub body: Option<(usize, usize)>,
    /// `true` when the item lies inside a test region.
    pub in_test: bool,
}

/// One `enum` item.
#[derive(Clone, Debug)]
pub struct EnumItem {
    /// The enum name.
    pub name: String,
    /// `true` for `pub` enums.
    pub is_pub: bool,
    /// Line of the `enum` keyword.
    pub line: u32,
    /// Column of the `enum` keyword.
    pub col: u32,
    /// Outer attributes, as flattened text.
    pub attrs: Vec<String>,
    /// `true` when the item lies inside a test region.
    pub in_test: bool,
}

/// One name introduced by a `use` declaration, flattened from use-trees.
///
/// `use ppatc_units::Energy;` yields `alias: "Energy", segs: ["ppatc_units",
/// "Energy"]`; `use x::y as z;` yields `alias: "z", segs: ["x", "y"]`. Glob
/// imports produce no entry. The workspace symbol table uses these to
/// resolve aliased cross-crate calls.
#[derive(Clone, Debug)]
pub struct UseItem {
    /// The name the import binds in this file.
    pub alias: String,
    /// The full imported path, as written (aliases keep the target path).
    pub segs: Vec<String>,
}

/// One `// ppatc-lint: allow(...)` suppression directive, as written.
#[derive(Clone, Debug)]
pub struct AllowDirective {
    /// The rule names listed in the directive (or `["all"]`).
    pub rules: Vec<String>,
    /// Line of the directive comment.
    pub line: u32,
    /// Column of the directive comment.
    pub col: u32,
    /// First line the directive covers (its own).
    pub first: u32,
    /// Last line the directive covers (the next code line).
    pub last: u32,
}

/// A lexed and scanned source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics).
    pub path: String,
    /// The crate directory name under `crates/` (`core`, `fab`, ...), or
    /// `"suite"` for the workspace-root `src/`.
    pub crate_name: String,
    /// Full token stream, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Per-rule suppression line ranges: `(rule-name, first, last)`.
    pub suppressions: Vec<(String, u32, u32)>,
    /// The suppression directives as written (one per comment).
    pub allow_directives: Vec<AllowDirective>,
    /// Lines that carry at least one comment token.
    pub comment_lines: Vec<u32>,
    /// All `fn` items found (at any nesting depth).
    pub fns: Vec<FnItem>,
    /// All `enum` items found.
    pub enums: Vec<EnumItem>,
    /// Names introduced by `use` declarations, flattened.
    pub uses: Vec<UseItem>,
}

impl SourceFile {
    /// Lexes and scans `src`. `path` should be workspace-relative.
    pub fn parse(path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let mut file = Self {
            path: path.to_string(),
            crate_name: crate_name_of(path),
            tokens,
            code,
            test_ranges: Vec::new(),
            suppressions: Vec::new(),
            allow_directives: Vec::new(),
            comment_lines: Vec::new(),
            fns: Vec::new(),
            enums: Vec::new(),
            uses: Vec::new(),
        };
        file.scan_comments();
        file.scan_items();
        file
    }

    /// True when `line` is inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| (a..=b).contains(&line))
    }

    /// True when diagnostics of `rule` are suppressed on `line`.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|(r, a, b)| (r == rule || r == "all") && (*a..=*b).contains(&line))
    }

    /// True when `line` carries a comment token.
    pub fn line_has_comment(&self, line: u32) -> bool {
        self.comment_lines.binary_search(&line).is_ok()
    }

    /// The code token at code-index `i`, if any.
    pub fn code_token(&self, i: usize) -> Option<&Token> {
        self.code.get(i).and_then(|&ti| self.tokens.get(ti))
    }

    /// True when the code token at `i` is a `>` that closes an `->` arrow
    /// (so it must not count as an angle-bracket close).
    fn is_arrow_gt(&self, i: usize) -> bool {
        i > 0
            && matches!(self.code_token(i), Some(t) if t.text == ">")
            && matches!(self.code_token(i - 1), Some(t) if t.text == "-")
    }

    /// Collects suppression directives and comment lines.
    ///
    /// A directive `// ppatc-lint: allow(rule-a, rule-b)` suppresses the
    /// named rules (or every rule, for `allow(all)`) on the comment's own
    /// line and on the next line that contains code. Doc comments never
    /// carry directives — prose that *mentions* the syntax (as this very
    /// paragraph does) must not suppress anything.
    fn scan_comments(&mut self) {
        let mut suppressions = Vec::new();
        let mut directives = Vec::new();
        let mut comment_lines = Vec::new();
        for (i, tok) in self.tokens.iter().enumerate() {
            if !matches!(tok.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let last_line = tok.line + newline_count(&tok.text);
            for l in tok.line..=last_line {
                comment_lines.push(l);
            }
            if is_doc_comment(&tok.text) {
                continue;
            }
            if let Some(rules) = parse_allow_directive(&tok.text) {
                // Extend coverage to the next line holding a code token.
                let until = self
                    .tokens
                    .iter()
                    .skip(i + 1)
                    .find(|t| {
                        !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                            && t.line > last_line
                    })
                    .map_or(last_line, |t| t.line);
                for rule in &rules {
                    suppressions.push((rule.clone(), tok.line, until));
                }
                directives.push(AllowDirective {
                    rules,
                    line: tok.line,
                    col: tok.col,
                    first: tok.line,
                    last: until,
                });
            }
        }
        comment_lines.sort_unstable();
        comment_lines.dedup();
        self.suppressions = suppressions;
        self.allow_directives = directives;
        self.comment_lines = comment_lines;
    }

    /// Walks the code tokens collecting `fn`/`enum`/`use` items, `impl`
    /// spans, and test regions.
    fn scan_items(&mut self) {
        let mut fns: Vec<FnItem> = Vec::new();
        let mut fn_cis: Vec<usize> = Vec::new();
        let mut enums = Vec::new();
        let mut uses = Vec::new();
        let mut test_ranges: Vec<(u32, u32)> = Vec::new();
        // `(self type, code-index range)` of every `impl` block body.
        let mut impl_ranges: Vec<(String, usize, usize)> = Vec::new();

        let mut pending_attrs: Vec<String> = Vec::new();
        let mut pending_doc = String::new();
        let mut pending_pub = false;
        let mut doc_cursor = 0usize; // index into tokens for doc collection

        let mut i = 0usize;
        while i < self.code.len() {
            let ti = self.code[i];
            let tok = &self.tokens[ti];
            // Fold any doc comments between the previous code token and
            // this one into the pending doc text.
            while doc_cursor < ti {
                let t = &self.tokens[doc_cursor];
                match t.kind {
                    TokenKind::LineComment if t.text.starts_with("///") => {
                        pending_doc.push_str(&t.text);
                        pending_doc.push('\n');
                    }
                    TokenKind::BlockComment if t.text.starts_with("/**") => {
                        pending_doc.push_str(&t.text);
                        pending_doc.push('\n');
                    }
                    _ => {}
                }
                doc_cursor += 1;
            }

            match (tok.kind, tok.text.as_str()) {
                (TokenKind::Punct, "#") => {
                    // Outer attribute `#[...]`; inner `#![...]` is skipped.
                    let inner = matches!(self.code_token(i + 1), Some(t) if t.text == "!");
                    let open = if inner { i + 2 } else { i + 1 };
                    if matches!(self.code_token(open), Some(t) if t.text == "[") {
                        let (text, next) = self.attr_text(open);
                        if !inner {
                            pending_attrs.push(text);
                        }
                        i = next;
                        continue;
                    }
                    i += 1;
                }
                (TokenKind::Ident, "pub") => {
                    pending_pub = true;
                    // Skip a `(crate)` / `(super)` / `(in path)` restriction.
                    if matches!(self.code_token(i + 1), Some(t) if t.text == "(") {
                        i = self.skip_group(i + 1, "(", ")");
                    } else {
                        i += 1;
                    }
                }
                (TokenKind::Ident, "macro_rules") => {
                    // A `macro_rules! name { ... }` body is template text:
                    // `fn` items inside it carry `$`-variables no analysis
                    // can type, so the whole definition is skipped.
                    let mut j = i + 1;
                    if matches!(self.code_token(j), Some(t) if t.text == "!") {
                        j += 1;
                    }
                    if matches!(self.code_token(j), Some(t) if t.kind == TokenKind::Ident) {
                        j += 1;
                    }
                    i = match self.code_token(j).map(|t| t.text.clone()).as_deref() {
                        Some("{") => self.skip_group(j, "{", "}"),
                        Some("(") => self.skip_group(j, "(", ")"),
                        Some("[") => self.skip_group(j, "[", "]"),
                        _ => j,
                    };
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                }
                (TokenKind::Ident, "fn") => {
                    let is_test_item = attrs_mark_test(&pending_attrs);
                    fn_cis.push(i);
                    let item = self.parse_fn(&mut i, pending_pub, &pending_attrs, &pending_doc);
                    if is_test_item {
                        if let Some((a, b)) = self.fn_line_span(&item) {
                            test_ranges.push((a, b));
                        }
                    }
                    fns.push(item);
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                }
                (TokenKind::Ident, "enum") => {
                    let name = self
                        .code_token(i + 1)
                        .map_or(String::new(), |t| t.text.clone());
                    enums.push(EnumItem {
                        name,
                        is_pub: pending_pub,
                        line: tok.line,
                        col: tok.col,
                        attrs: pending_attrs.clone(),
                        in_test: false, // filled in below from test_ranges
                    });
                    if attrs_mark_test(&pending_attrs) {
                        if let Some((a, b)) = self.brace_line_span(i) {
                            test_ranges.push((a, b));
                        }
                    }
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                    i += 1;
                }
                (TokenKind::Ident, "impl") => {
                    if attrs_mark_test(&pending_attrs) {
                        if let Some((a, b)) = self.brace_line_span(i) {
                            test_ranges.push((a, b));
                        }
                    }
                    if let Some(range) = self.impl_self_type(i) {
                        impl_ranges.push(range);
                    }
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                    // Fns inside the block are found by the ongoing walk.
                    i += 1;
                }
                (TokenKind::Ident, "use") => {
                    let end = self.parse_use(i + 1, &mut uses);
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                    i = end;
                }
                (TokenKind::Ident, "mod" | "struct" | "trait") => {
                    if attrs_mark_test(&pending_attrs) {
                        if let Some((a, b)) = self.brace_line_span(i) {
                            test_ranges.push((a, b));
                        }
                    }
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                    i += 1;
                }
                // Qualifiers that may precede `fn` keep the pending context.
                (TokenKind::Ident, "unsafe" | "async" | "extern") => i += 1,
                (TokenKind::Ident, "const") if matches!(self.code_token(i + 1), Some(t) if t.text == "fn") =>
                {
                    i += 1;
                }
                (TokenKind::Ident, "const" | "static" | "type" | "let") => {
                    // Statement-ish starters clear pending item context.
                    pending_attrs.clear();
                    pending_doc.clear();
                    pending_pub = false;
                    i += 1;
                }
                _ => {
                    pending_pub = false;
                    i += 1;
                }
            }
        }

        // Resolve `in_test` now that every region is known, and bind each
        // fn to the innermost `impl` block containing its `fn` keyword.
        for (f, &ci) in fns.iter_mut().zip(&fn_cis) {
            f.in_test = test_ranges.iter().any(|&(a, b)| (a..=b).contains(&f.line));
            f.owner = impl_ranges
                .iter()
                .filter(|&&(_, a, b)| (a..=b).contains(&ci))
                .min_by_key(|&&(_, a, b)| b - a)
                .map(|(ty, _, _)| ty.clone());
        }
        for e in &mut enums {
            e.in_test = test_ranges.iter().any(|&(a, b)| (a..=b).contains(&e.line));
        }
        self.fns = fns;
        self.enums = enums;
        self.uses = uses;
        self.test_ranges = test_ranges;
    }

    /// From the code-index of an `impl` keyword, the `Self` type name and
    /// the code-index range of the block body. For `impl Trait for Type`
    /// the type after `for` wins; generic arguments are skipped.
    fn impl_self_type(&self, at: usize) -> Option<(String, usize, usize)> {
        let mut k = at + 1;
        // Skip the generic-parameter list `impl<T: ..>`.
        if matches!(self.code_token(k), Some(t) if t.text == "<") {
            let mut depth = 0i32;
            while let Some(t) = self.code_token(k) {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" if !self.is_arrow_gt(k) => {
                        depth -= 1;
                        if depth <= 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Scan the type position(s) up to the body: the last ident seen at
        // angle-depth 0 before `{`/`where` names the type; a `for` resets
        // it so `impl Display for Power` yields `Power`.
        let mut name: Option<String> = None;
        let mut depth = 0i32;
        while let Some(t) = self.code_token(k) {
            match t.text.as_str() {
                "{" if depth == 0 => {
                    let end = self.skip_group(k, "{", "}");
                    return name.map(|n| (n, k, end.saturating_sub(1)));
                }
                ";" if depth == 0 => return None,
                "where" if depth == 0 => {
                    // Skip ahead to the body.
                    while let Some(t) = self.code_token(k) {
                        if t.text == "{" {
                            break;
                        }
                        if t.text == ";" {
                            return None;
                        }
                        k += 1;
                    }
                    continue;
                }
                "for" if depth == 0 => name = None,
                "<" => depth += 1,
                ">" if !self.is_arrow_gt(k) => depth -= 1,
                _ if t.kind == TokenKind::Ident && depth == 0 => {
                    name = Some(t.text.clone());
                }
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// Parses the use-tree starting after a `use` keyword at code-index
    /// `after`; appends flattened [`UseItem`]s and returns the code index
    /// one past the terminating `;`.
    fn parse_use(&self, after: usize, out: &mut Vec<UseItem>) -> usize {
        // Collect the statement's token texts up to the `;`.
        let mut texts: Vec<String> = Vec::new();
        let mut k = after;
        while let Some(t) = self.code_token(k) {
            if t.text == ";" {
                k += 1;
                break;
            }
            texts.push(t.text.clone());
            k += 1;
        }
        flatten_use_tree(&texts, &[], out);
        k
    }

    /// Flattens the attribute starting at the `[` code-index `open`;
    /// returns (text, code-index after the closing `]`).
    fn attr_text(&self, open: usize) -> (String, usize) {
        let close = self.skip_group(open, "[", "]");
        let mut text = String::new();
        for k in (open + 1)..close.saturating_sub(1) {
            if let Some(t) = self.code_token(k) {
                if !text.is_empty() && t.kind == TokenKind::Ident {
                    text.push(' ');
                }
                text.push_str(&t.text);
            }
        }
        (text, close)
    }

    /// Given code-index `open` pointing at `opener`, returns the code index
    /// one past its matching `closer`.
    pub(crate) fn skip_group(&self, open: usize, opener: &str, closer: &str) -> usize {
        let mut depth = 0usize;
        let mut k = open;
        while let Some(t) = self.code_token(k) {
            if t.text == opener {
                depth += 1;
            } else if t.text == closer {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        k
    }

    /// From the code-index of an item keyword, the line span of its braced
    /// body (used for test regions).
    fn brace_line_span(&self, from: usize) -> Option<(u32, u32)> {
        let mut k = from;
        while let Some(t) = self.code_token(k) {
            match t.text.as_str() {
                "{" => {
                    let start_line = self.code_token(from)?.line;
                    let end = self.skip_group(k, "{", "}");
                    let end_line = self
                        .code_token(end.saturating_sub(1))
                        .map_or(start_line, |t| t.line);
                    return Some((start_line, end_line));
                }
                ";" => return None,
                _ => k += 1,
            }
        }
        None
    }

    fn fn_line_span(&self, item: &FnItem) -> Option<(u32, u32)> {
        let (a, b) = item.body?;
        Some((
            item.line,
            self.code_token(b)
                .or_else(|| self.code_token(a))
                .map_or(item.line, |t| t.line),
        ))
    }

    /// Parses a fn item starting with `i` at the `fn` keyword; leaves `i`
    /// at the first token after the signature (body is *not* skipped, so
    /// nested items are scanned too).
    fn parse_fn(&self, i: &mut usize, is_pub: bool, attrs: &[String], doc: &str) -> FnItem {
        let fn_tok_line;
        let fn_tok_col;
        {
            let t = &self.tokens[self.code[*i]];
            fn_tok_line = t.line;
            fn_tok_col = t.col;
        }
        let mut k = *i + 1;
        let name = self.code_token(k).map_or(String::new(), |t| t.text.clone());
        k += 1;
        // Generics.
        if matches!(self.code_token(k), Some(t) if t.text == "<") {
            let mut depth = 0i32;
            while let Some(t) = self.code_token(k) {
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" if !self.is_arrow_gt(k) => {
                        depth -= 1;
                        if depth <= 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Parameters.
        let mut params = Vec::new();
        if matches!(self.code_token(k), Some(t) if t.text == "(") {
            let close = self.skip_group(k, "(", ")");
            params = self.parse_params(k + 1, close.saturating_sub(1));
            k = close;
        }
        // Return type.
        let mut ret = Vec::new();
        if matches!(self.code_token(k), Some(t) if t.text == "-")
            && matches!(self.code_token(k + 1), Some(t) if t.text == ">")
        {
            k += 2;
            while let Some(t) = self.code_token(k) {
                if t.text == "{" || t.text == ";" || t.text == "where" {
                    break;
                }
                ret.push(t.text.clone());
                k += 1;
            }
        }
        // `where` clause.
        while let Some(t) = self.code_token(k) {
            if t.text == "{" || t.text == ";" {
                break;
            }
            k += 1;
        }
        // Body span (not consumed).
        let body = match self.code_token(k) {
            Some(t) if t.text == "{" => Some((k, self.skip_group(k, "{", "}").saturating_sub(1))),
            _ => None,
        };
        *i = k + 1;
        FnItem {
            name,
            owner: None, // bound after the walk from the impl spans
            is_pub,
            line: fn_tok_line,
            col: fn_tok_col,
            attrs: attrs.to_vec(),
            doc: doc.to_string(),
            params,
            ret,
            body,
            in_test: false,
        }
    }

    /// Splits the code-token range `(from..to)` (inside the parens) into
    /// parameters at top-level commas.
    fn parse_params(&self, from: usize, to: usize) -> Vec<Param> {
        let mut params = Vec::new();
        let mut depth = 0i32;
        let mut start = from;
        let mut k = from;
        while k < to {
            let text = self.code_token(k).map_or("", |t| t.text.as_str());
            match text {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ">" if !self.is_arrow_gt(k) => depth -= 1,
                "," if depth == 0 => {
                    if let Some(p) = self.param_from_range(start, k) {
                        params.push(p);
                    }
                    start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        if start < to {
            if let Some(p) = self.param_from_range(start, to) {
                params.push(p);
            }
        }
        params
    }

    fn param_from_range(&self, from: usize, to: usize) -> Option<Param> {
        if from >= to {
            return None;
        }
        // Find the top-level `:` separating pattern from type.
        let mut colon = None;
        let mut depth = 0i32;
        for k in from..to {
            let t = self.code_token(k)?;
            match t.text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ">" if !self.is_arrow_gt(k) => depth -= 1,
                ":" if depth == 0 => {
                    colon = Some(k);
                    break;
                }
                _ => {}
            }
        }
        let line = self.code_token(from)?.line;
        match colon {
            Some(c) => {
                // Last ident of the pattern is the binding name
                // (`mut x: f64` -> `x`).
                let name = (from..c)
                    .rev()
                    .filter_map(|k| self.code_token(k))
                    .find(|t| t.kind == TokenKind::Ident && t.text != "mut")
                    .map_or("_".to_string(), |t| t.text.clone());
                let ty = (c + 1..to)
                    .filter_map(|k| self.code_token(k))
                    .map(|t| t.text.clone())
                    .collect();
                Some(Param { name, ty, line })
            }
            None => {
                // Receiver (`&mut self`, `self`) or bare type in a trait sig.
                let name = (from..to)
                    .filter_map(|k| self.code_token(k))
                    .rev()
                    .find(|t| t.kind == TokenKind::Ident)
                    .map_or("_".to_string(), |t| t.text.clone());
                Some(Param {
                    name,
                    ty: Vec::new(),
                    line,
                })
            }
        }
    }
}

/// Flattens one use-tree (the token texts between `use` and `;`, with `:`
/// separators still present) into [`UseItem`]s. `prefix` carries the path
/// accumulated by enclosing groups.
fn flatten_use_tree(tokens: &[String], prefix: &[String], out: &mut Vec<UseItem>) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        match tokens[i].as_str() {
            ":" => i += 1,
            "{" => {
                // Group: recurse into each top-level comma-separated item.
                let mut depth = 1usize;
                let mut item_start = i + 1;
                let mut j = i + 1;
                while j < tokens.len() {
                    match tokens[j].as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "," if depth == 1 => {
                            let mut p: Vec<String> = prefix.to_vec();
                            p.extend(segs.iter().cloned());
                            flatten_use_tree(&tokens[item_start..j], &p, out);
                            item_start = j + 1;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if item_start < j {
                    let mut p: Vec<String> = prefix.to_vec();
                    p.extend(segs.iter().cloned());
                    flatten_use_tree(&tokens[item_start..j], &p, out);
                }
                return;
            }
            "as" => {
                if let Some(alias) = tokens.get(i + 1) {
                    let mut full = prefix.to_vec();
                    full.extend(segs.iter().cloned());
                    if !full.is_empty() && alias != "_" {
                        out.push(UseItem {
                            alias: alias.clone(),
                            segs: full,
                        });
                    }
                }
                return;
            }
            "*" => return, // glob imports bind no single name
            t => {
                segs.push(t.to_string());
                i += 1;
            }
        }
    }
    let mut full = prefix.to_vec();
    full.extend(segs);
    // `use a::b::{self, c}`: the `self` leaf binds the parent module `b`.
    if full.last().is_some_and(|s| s == "self") {
        full.pop();
    }
    if let Some(last) = full.last().cloned() {
        out.push(UseItem {
            alias: last,
            segs: full,
        });
    }
}

/// The crate directory name for a workspace-relative path.
pub(crate) fn crate_name_of(path: &str) -> String {
    let norm = path.replace('\\', "/");
    let parts: Vec<&str> = norm.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_string(),
        _ => "suite".to_string(),
    }
}

fn newline_count(s: &str) -> u32 {
    u32::try_from(s.bytes().filter(|&b| b == b'\n').count()).unwrap_or(0)
}

/// Parses `ppatc-lint: allow(rule-a, rule-b)` out of a comment's text.
/// True for `///`, `//!`, `/** */`, `/*! */` comments. `////...` rulers
/// are ordinary comments, not docs.
fn is_doc_comment(text: &str) -> bool {
    (text.starts_with("///") && !text.starts_with("////"))
        || text.starts_with("//!")
        || (text.starts_with("/**") && !text.starts_with("/***"))
        || text.starts_with("/*!")
}

fn parse_allow_directive(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("ppatc-lint:")?;
    let rest = comment[at + "ppatc-lint:".len()..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        None
    } else {
        Some(rules)
    }
}

fn attrs_mark_test(attrs: &[String]) -> bool {
    attrs
        .iter()
        .any(|a| a == "test" || (a.starts_with("cfg") && a.contains("test") && !a.contains("not")))
}
