//! Inter-procedural panic-reachability over a name-based call graph.
//!
//! Each non-test fn in the analyzed file set is summarized once: its
//! direct panic sites (`panic!`-family macros, `.unwrap()`, `.expect()`)
//! and the names it calls. Edges resolve a called name to a workspace fn
//! only when exactly one non-test fn carries that name — ambiguous names
//! (`new`, `value`) produce no edge, which keeps the pass conservative.
//!
//! **PL009 `panic-reachable-from-try`** then fires for every `try_*`
//! function that can transitively reach a panic site while no function on
//! the path (the `try_*` itself included) documents a `# Panics` contract.
//! A documented fn absorbs the taint: callers delegating to it have an
//! explicit, reviewable contract to cite. Crates where panics are policy
//! ([`crate::rules`]' exemption list: `bench`, `suite`, `lint`) never
//! *report*, but their fns still participate as path interior.

use crate::ast::{Block, Expr, Stmt};
use crate::parser::parse_body;
use crate::rules::PANIC_MACROS;
use crate::source::SourceFile;

/// One direct panic site inside a fn body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What panics (`panic!`, `.unwrap()`, …).
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
}

/// The callgraph-relevant summary of one fn.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate directory name (`core`, `fab`, …).
    pub crate_name: String,
    /// The fn name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Column of the `fn` keyword.
    pub col: u32,
    /// `true` when the doc comment carries a `# Panics` section.
    pub has_panics_doc: bool,
    /// `true` when the fn takes a `self` receiver.
    pub has_self: bool,
    /// Direct panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Names this body calls, deduplicated; the flag is `true` for
    /// method-syntax calls (`x.f()`), which resolve only to fns with a
    /// `self` receiver.
    pub calls: Vec<(String, bool)>,
}

/// A PL009 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Path of the `try_*` fn.
    pub path: String,
    /// Line of the `try_*` fn.
    pub line: u32,
    /// Column of the `try_*` fn.
    pub col: u32,
    /// Human-readable description including a witness path.
    pub message: String,
}

/// Summarizes every non-test fn in `file` for the call-graph pass.
pub fn summarize(file: &SourceFile) -> Vec<FnSummary> {
    let mut out = Vec::new();
    for f in &file.fns {
        if f.in_test || file.in_test(f.line) {
            continue;
        }
        let Some(body) = f.body else { continue };
        let (block, _issues) = parse_body(file, body);
        let mut collector = Collector {
            panics: Vec::new(),
            calls: Vec::new(),
        };
        collector.walk_block(&block);
        collector.calls.sort();
        collector.calls.dedup();
        out.push(FnSummary {
            path: file.path.clone(),
            crate_name: file.crate_name.clone(),
            name: f.name.clone(),
            line: f.line,
            col: f.col,
            has_panics_doc: f.doc.contains("# Panics"),
            has_self: f.params.first().is_some_and(|p| p.name == "self"),
            panics: collector.panics,
            calls: collector.calls,
        });
    }
    out
}

struct Collector {
    panics: Vec<PanicSite>,
    calls: Vec<(String, bool)>,
}

impl Collector {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        self.walk(e);
                    }
                }
                Stmt::Expr { expr, .. } => self.walk(expr),
                Stmt::Item { .. } => {}
            }
        }
    }

    fn walk(&mut self, expr: &Expr) {
        match expr {
            Expr::Macro { name, span } => {
                let bare = name.rsplit("::").next().unwrap_or(name);
                if PANIC_MACROS.contains(&bare) {
                    self.panics.push(PanicSite {
                        what: format!("{bare}!"),
                        line: span.line,
                    });
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                if method == "unwrap" || method == "expect" {
                    self.panics.push(PanicSite {
                        what: format!(".{method}()"),
                        line: span.line,
                    });
                } else {
                    self.calls.push((method.clone(), true));
                }
                self.walk(recv);
                for a in args {
                    self.walk(a);
                }
            }
            Expr::Call {
                callee,
                args,
                span: _,
            } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        self.calls.push((last.clone(), false));
                    }
                } else {
                    self.walk(callee);
                }
                for a in args {
                    self.walk(a);
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.walk(expr)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk(lhs);
                self.walk(rhs);
            }
            Expr::Field { recv, .. } => self.walk(recv),
            Expr::Index { recv, index, .. } => {
                self.walk(recv);
                self.walk(index);
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    self.walk(e);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.walk(cond);
                self.walk_block(then);
                if let Some(e) = els {
                    self.walk(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk(scrutinee);
                for a in arms {
                    self.walk(a);
                }
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.walk(h);
                }
                self.walk_block(body);
            }
            Expr::Closure { body, .. } => self.walk(body),
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.walk(e);
                }
                if let Some(b) = base {
                    self.walk(b);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk(e);
                }
                if let Some(e) = hi {
                    self.walk(e);
                }
            }
            Expr::Jump { expr, .. } => {
                if let Some(e) = expr {
                    self.walk(e);
                }
            }
            Expr::Lit { .. } | Expr::Path { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// Crates whose `try_*` fns are not reported (panicking is policy there);
/// mirrors [`crate::rules`]' PL002 exemption.
const REPORT_EXEMPT_CRATES: &[&str] = &["bench", "suite", "lint"];

/// Runs PL009 over a set of fn summaries (one file or the whole
/// workspace). Returns one finding per tainted `try_*` fn.
pub fn check(summaries: &[FnSummary]) -> Vec<Reachability> {
    // Resolve a called name only when exactly one summarized fn bears it.
    // Method-syntax calls (`x.f()`) additionally require a `self` receiver
    // on the callee, so `.map(..)` never resolves to a free fn `map()`.
    let resolve = |name: &str, is_method: bool| -> Option<usize> {
        let mut found = None;
        for (i, s) in summaries.iter().enumerate() {
            if s.name == name && (!is_method || s.has_self) {
                if found.is_some() {
                    return None;
                }
                found = Some(i);
            }
        }
        found
    };
    let edges: Vec<Vec<usize>> = summaries
        .iter()
        .map(|s| {
            s.calls
                .iter()
                .filter_map(|(name, is_method)| resolve(name, *is_method))
                .collect()
        })
        .collect();

    // Fixpoint: `tainted[i]` when fn i has a direct panic site or calls an
    // *undocumented* tainted fn. A `# Panics` doc absorbs taint at that
    // node — callers inherit a documented contract, not a silent panic.
    let mut tainted: Vec<bool> = summaries.iter().map(|s| !s.panics.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..summaries.len() {
            if tainted[i] {
                continue;
            }
            if edges[i]
                .iter()
                .any(|&j| tainted[j] && !summaries[j].has_panics_doc)
            {
                tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        if !s.name.starts_with("try_")
            || s.has_panics_doc
            || !tainted[i]
            || REPORT_EXEMPT_CRATES.contains(&s.crate_name.as_str())
        {
            continue;
        }
        let witness = witness_path(i, summaries, &edges, &tainted);
        out.push(Reachability {
            path: s.path.clone(),
            line: s.line,
            col: s.col,
            message: format!(
                "`{}` returns Result but can panic: {}; add a `# Panics` \
                 section or handle the failure",
                s.name, witness
            ),
        });
    }
    out
}

/// Builds a human-readable witness `a → b → .unwrap() (file:line)` chain
/// from `start` to the nearest direct panic site.
fn witness_path(
    start: usize,
    summaries: &[FnSummary],
    edges: &[Vec<usize>],
    tainted: &[bool],
) -> String {
    // BFS through undocumented tainted nodes to a node with a direct site.
    let mut prev: Vec<Option<usize>> = vec![None; summaries.len()];
    let mut visited = vec![false; summaries.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    let mut hit = None;
    while let Some(i) = queue.pop_front() {
        if let Some(site) = summaries[i].panics.first() {
            hit = Some((i, site));
            break;
        }
        for &j in &edges[i] {
            if !visited[j] && tainted[j] && !summaries[j].has_panics_doc {
                visited[j] = true;
                prev[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    let Some((end, site)) = hit else {
        return "a transitive callee panics".to_string();
    };
    let mut chain = vec![end];
    while let Some(p) = prev[*chain.last().unwrap_or(&end)] {
        chain.push(p);
    }
    chain.reverse();
    let names: Vec<&str> = chain.iter().map(|&i| summaries[i].name.as_str()).collect();
    format!(
        "{} → {} ({}:{})",
        names.join(" → "),
        site.what,
        summaries[end].path,
        site.line
    )
}
