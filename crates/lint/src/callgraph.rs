//! Inter-procedural panic-reachability over the workspace call graph.
//!
//! Each non-test fn in the analyzed file set is summarized once: its
//! direct panic sites (`panic!`-family macros, `.unwrap()`, `.expect()`)
//! and the calls its body makes, with full path segments preserved
//! (`checkpoint::write_journal`, `Energy::from_joules`, `try_eval`). Call
//! edges are resolved by the workspace symbol table
//! ([`crate::symbols::SymbolTable`]), which understands free fns,
//! `Type::method` paths, `use`-aliased imports, and module-qualified
//! paths — ambiguous names (`new`, `value`) produce no edge, which keeps
//! the pass conservative.
//!
//! **PL009 `panic-reachable-from-try`** then fires for every `try_*`
//! function that can transitively reach a panic site while no function on
//! the path (the `try_*` itself included) documents a `# Panics` contract.
//! A documented fn absorbs the taint: callers delegating to it have an
//! explicit, reviewable contract to cite. Crates where panics are policy
//! ([`crate::rules`]' exemption list: `bench`, `suite`, `lint`) never
//! *report*, but their fns still participate as path interior — a witness
//! path may cross crate boundaries.

use crate::ast::{Block, Expr, Stmt};
use crate::concurrency::{self, ConcFacts};
use crate::rules::PANIC_MACROS;
use crate::source::{SourceFile, UseItem};

/// One call site recorded by the body walk: the path segments as written
/// (`["Energy", "from_joules"]`, `["try_eval"]`) and whether it used
/// method syntax (`x.f()`), which restricts resolution to `self`-receiver
/// fns.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct CallRef {
    /// Path segments of the callee, as written at the call site.
    pub segs: Vec<String>,
    /// `true` for method-syntax calls (`x.f()`).
    pub is_method: bool,
}

/// One direct panic site inside a fn body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// What panics (`panic!`, `.unwrap()`, …).
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
}

/// The callgraph-relevant summary of one fn.
#[derive(Clone, Debug)]
pub struct FnSummary {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Crate directory name (`core`, `fab`, …).
    pub crate_name: String,
    /// The fn name.
    pub name: String,
    /// `Self` type of the enclosing `impl` block, `None` for free fns.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Column of the `fn` keyword.
    pub col: u32,
    /// `true` when the doc comment carries a `# Panics` section.
    pub has_panics_doc: bool,
    /// `true` when the fn takes a `self` receiver.
    pub has_self: bool,
    /// Direct panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Calls this body makes, deduplicated.
    pub calls: Vec<CallRef>,
    /// The defining file's `use` imports (resolution context; identical
    /// for every fn of one file).
    pub uses: Vec<UseItem>,
    /// Concurrency-relevant facts (`static mut` touches, worker-closure
    /// calls) for the PL016 assembly pass.
    pub conc: ConcFacts,
}

/// A PL009 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct Reachability {
    /// Path of the `try_*` fn.
    pub path: String,
    /// Line of the `try_*` fn.
    pub line: u32,
    /// Column of the `try_*` fn.
    pub col: u32,
    /// Human-readable description including a witness path.
    pub message: String,
}

/// Summarizes the analyzable fns of `file` for the call-graph pass.
/// `bodies` holds the pre-parsed body of each non-test bodied fn as
/// `(index into file.fns, block)`; summaries come out aligned 1:1 with
/// it (bodiless fns — trait signatures — have no summary).
pub fn summarize(file: &SourceFile, bodies: &[(usize, Block)]) -> Vec<FnSummary> {
    let statics = concurrency::static_mut_names(file);
    let mut out = Vec::new();
    for &(fi, ref block) in bodies {
        let f = &file.fns[fi];
        let mut collector = Collector {
            panics: Vec::new(),
            calls: Vec::new(),
        };
        collector.walk_block(block);
        collector.calls.sort();
        collector.calls.dedup();
        out.push(FnSummary {
            path: file.path.clone(),
            crate_name: file.crate_name.clone(),
            name: f.name.clone(),
            owner: f.owner.clone(),
            line: f.line,
            col: f.col,
            has_panics_doc: f.doc.contains("# Panics"),
            has_self: f.params.first().is_some_and(|p| p.name == "self"),
            panics: collector.panics,
            calls: collector.calls,
            uses: file.uses.clone(),
            conc: concurrency::collect_facts(&statics, block),
        });
    }
    out
}

/// Selects the non-test bodied fns of `file`, in declaration order, as
/// `(index into file.fns)` — the shared filter behind [`summarize`] and
/// the dimensional engine's body list.
pub fn analyzable_fns(file: &SourceFile) -> Vec<usize> {
    file.fns
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.in_test && !file.in_test(f.line) && f.body.is_some())
        .map(|(i, _)| i)
        .collect()
}

struct Collector {
    panics: Vec<PanicSite>,
    calls: Vec<CallRef>,
}

impl Collector {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        self.walk(e);
                    }
                }
                Stmt::Expr { expr, .. } => self.walk(expr),
                Stmt::Item { .. } => {}
            }
        }
    }

    fn walk(&mut self, expr: &Expr) {
        match expr {
            Expr::Macro { name, span, .. } => {
                let bare = name.rsplit("::").next().unwrap_or(name);
                if PANIC_MACROS.contains(&bare) {
                    self.panics.push(PanicSite {
                        what: format!("{bare}!"),
                        line: span.line,
                    });
                }
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                if method == "unwrap" || method == "expect" {
                    self.panics.push(PanicSite {
                        what: format!(".{method}()"),
                        line: span.line,
                    });
                } else {
                    self.calls.push(CallRef {
                        segs: vec![method.clone()],
                        is_method: true,
                    });
                }
                self.walk(recv);
                for a in args {
                    self.walk(a);
                }
            }
            Expr::Call {
                callee,
                args,
                span: _,
            } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if !segs.is_empty() {
                        self.calls.push(CallRef {
                            segs: segs.clone(),
                            is_method: false,
                        });
                    }
                } else {
                    self.walk(callee);
                }
                for a in args {
                    self.walk(a);
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.walk(expr)
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk(lhs);
                self.walk(rhs);
            }
            Expr::Field { recv, .. } => self.walk(recv),
            Expr::Index { recv, index, .. } => {
                self.walk(recv);
                self.walk(index);
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    self.walk(e);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.walk(cond);
                self.walk_block(then);
                if let Some(e) = els {
                    self.walk(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk(scrutinee);
                for a in arms {
                    self.walk(a);
                }
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.walk(h);
                }
                self.walk_block(body);
            }
            Expr::Closure { body, .. } => self.walk(body),
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.walk(e);
                }
                if let Some(b) = base {
                    self.walk(b);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk(e);
                }
                if let Some(e) = hi {
                    self.walk(e);
                }
            }
            Expr::Jump { expr, .. } => {
                if let Some(e) = expr {
                    self.walk(e);
                }
            }
            Expr::Lit { .. } | Expr::Path { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// Crates whose `try_*` fns are not reported (panicking is policy there);
/// mirrors [`crate::rules`]' PL002 exemption.
const REPORT_EXEMPT_CRATES: &[&str] = &["bench", "suite", "lint"];

/// Runs PL009 over the workspace call graph: `edges[i]` lists the summary
/// indices fn `i` calls, as resolved by the symbol table. Returns one
/// finding per tainted `try_*` fn.
pub fn check(summaries: &[FnSummary], edges: &[Vec<usize>]) -> Vec<Reachability> {
    // Fixpoint: `tainted[i]` when fn i has a direct panic site or calls an
    // *undocumented* tainted fn. A `# Panics` doc absorbs taint at that
    // node — callers inherit a documented contract, not a silent panic.
    let mut tainted: Vec<bool> = summaries.iter().map(|s| !s.panics.is_empty()).collect();
    loop {
        let mut changed = false;
        for i in 0..summaries.len() {
            if tainted[i] {
                continue;
            }
            if edges[i]
                .iter()
                .any(|&j| tainted[j] && !summaries[j].has_panics_doc)
            {
                tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        if !s.name.starts_with("try_")
            || s.has_panics_doc
            || !tainted[i]
            || REPORT_EXEMPT_CRATES.contains(&s.crate_name.as_str())
        {
            continue;
        }
        let witness = witness_path(i, summaries, edges, &tainted);
        out.push(Reachability {
            path: s.path.clone(),
            line: s.line,
            col: s.col,
            message: format!(
                "`{}` returns Result but can panic: {}; add a `# Panics` \
                 section or handle the failure",
                s.name, witness
            ),
        });
    }
    out
}

/// Builds a human-readable witness `a → b → .unwrap() (file:line)` chain
/// from `start` to the nearest direct panic site. When the chain crosses a
/// crate boundary the hop is annotated with the callee's crate.
fn witness_path(
    start: usize,
    summaries: &[FnSummary],
    edges: &[Vec<usize>],
    tainted: &[bool],
) -> String {
    // BFS through undocumented tainted nodes to a node with a direct site.
    let mut prev: Vec<Option<usize>> = vec![None; summaries.len()];
    let mut visited = vec![false; summaries.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    let mut hit = None;
    while let Some(i) = queue.pop_front() {
        if let Some(site) = summaries[i].panics.first() {
            hit = Some((i, site));
            break;
        }
        for &j in &edges[i] {
            if !visited[j] && tainted[j] && !summaries[j].has_panics_doc {
                visited[j] = true;
                prev[j] = Some(i);
                queue.push_back(j);
            }
        }
    }
    let Some((end, site)) = hit else {
        return "a transitive callee panics".to_string();
    };
    let mut chain = vec![end];
    while let Some(p) = prev[*chain.last().unwrap_or(&end)] {
        chain.push(p);
    }
    chain.reverse();
    let mut names = Vec::with_capacity(chain.len());
    for (k, &i) in chain.iter().enumerate() {
        let s = &summaries[i];
        // Annotate hops that land in a different crate than the previous
        // node — the cross-crate part of the witness is the novel evidence.
        let crosses = k > 0 && summaries[chain[k - 1]].crate_name != s.crate_name;
        if crosses {
            names.push(format!("{} [{}]", s.name, s.crate_name));
        } else {
            names.push(s.name.clone());
        }
    }
    format!(
        "{} → {} ({}:{})",
        names.join(" → "),
        site.what,
        summaries[end].path,
        site.line
    )
}
