//! The expression/statement AST produced by [`crate::parser`] for fn
//! bodies.
//!
//! The tree is deliberately coarser than rustc's: patterns are flattened to
//! binding names, types to token strings, and control flow (`if`, `match`,
//! loops) keeps only the sub-expressions and blocks that a dataflow pass
//! can walk. Every node carries the line/column of its first token so rule
//! findings anchor at real source positions.

/// A source position: 1-based line and column of a node's first token.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column (bytes).
    pub col: u32,
}

impl Span {
    /// Builds a span.
    #[must_use]
    pub const fn at(line: u32, col: u32) -> Self {
        Self { line, col }
    }
}

/// A binary operator, including compound assignment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `%=`
    RemAssign,
    /// `&=`
    BitAndAssign,
    /// `|=`
    BitOrAssign,
    /// `^=`
    BitXorAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
}

impl BinOp {
    /// The operator's source spelling.
    #[must_use]
    pub const fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Assign => "=",
            BinOp::AddAssign => "+=",
            BinOp::SubAssign => "-=",
            BinOp::MulAssign => "*=",
            BinOp::DivAssign => "/=",
            BinOp::RemAssign => "%=",
            BinOp::BitAndAssign => "&=",
            BinOp::BitOrAssign => "|=",
            BinOp::BitXorAssign => "^=",
            BinOp::ShlAssign => "<<=",
            BinOp::ShrAssign => ">>=",
        }
    }

    /// `true` for `+`/`-`/`+=`/`-=`: operands must share dimension *and*
    /// scale.
    #[must_use]
    pub const fn is_additive(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::AddAssign | BinOp::SubAssign
        )
    }

    /// `true` for ordering/equality comparisons.
    #[must_use]
    pub const fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A prefix unary operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `*`
    Deref,
    /// `&` / `&mut`
    Ref,
}

/// A literal's coarse kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LitKind {
    /// Integer or float literal.
    Number,
    /// String or byte-string literal.
    Str,
    /// Char literal.
    Char,
    /// `true` / `false`.
    Bool,
}

/// One expression.
#[derive(Clone, Debug)]
pub enum Expr {
    /// A literal (`3.6e6`, `"grid"`, `'x'`, `true`).
    Lit {
        /// Kind of literal.
        kind: LitKind,
        /// Exact source text.
        text: String,
        /// Position.
        span: Span,
    },
    /// A (possibly qualified) path: `x`, `Energy::from_joules`,
    /// `self.x` is *not* a path (it is [`Expr::Field`]).
    Path {
        /// Path segments (`["Energy", "from_joules"]`); turbofish segments
        /// are dropped.
        segs: Vec<String>,
        /// Position.
        span: Span,
    },
    /// A prefix unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// A binary operation (including assignment).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Position of the operator token.
        span: Span,
    },
    /// A call `callee(args)`.
    Call {
        /// The callee expression (usually a path).
        callee: Box<Expr>,
        /// Arguments.
        args: Vec<Expr>,
        /// Position.
        span: Span,
    },
    /// A method call `recv.name(args)` (turbofish dropped).
    MethodCall {
        /// Receiver.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Position of the method name.
        span: Span,
    },
    /// A field access `recv.name` / tuple field `recv.0`.
    Field {
        /// Receiver.
        recv: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// Position.
        span: Span,
    },
    /// An index `recv[index]`.
    Index {
        /// Receiver.
        recv: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// A cast `expr as Ty`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type tokens.
        ty: Vec<String>,
        /// Position.
        span: Span,
    },
    /// The `?` operator.
    Try {
        /// Operand.
        expr: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// A parenthesized expression or tuple. One element without a trailing
    /// comma is a plain group; anything else is a tuple.
    Tuple {
        /// Elements.
        items: Vec<Expr>,
        /// `true` when this is a grouping `(e)` rather than a 1-tuple.
        group: bool,
        /// Position.
        span: Span,
    },
    /// An array literal `[a, b]` or repeat `[x; n]`.
    Array {
        /// Elements (for repeats: the element then the length).
        items: Vec<Expr>,
        /// Position.
        span: Span,
    },
    /// A block expression, including `unsafe {}` bodies.
    Block {
        /// The block.
        block: Block,
        /// Position.
        span: Span,
    },
    /// `if cond { .. } else ..` (`if let` keeps only the scrutinee).
    If {
        /// Condition (or `let`-scrutinee).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// Optional else-expression (block or nested if).
        els: Option<Box<Expr>>,
        /// Position.
        span: Span,
    },
    /// `match scrutinee { arms }`; each arm keeps guard and value exprs.
    Match {
        /// Scrutinee.
        scrutinee: Box<Expr>,
        /// Arm value expressions (guards folded in as extra entries).
        arms: Vec<Expr>,
        /// Position.
        span: Span,
    },
    /// A loop (`loop`/`while`/`for`); keeps the iterated/condition expr
    /// and the body.
    Loop {
        /// `for`-iterator or `while`-condition, when present.
        head: Option<Box<Expr>>,
        /// Body block.
        body: Block,
        /// Position.
        span: Span,
    },
    /// A closure; parameter patterns are flattened to names.
    Closure {
        /// Parameter names.
        params: Vec<String>,
        /// Body expression.
        body: Box<Expr>,
        /// Position.
        span: Span,
    },
    /// A struct literal `Path { field: expr, .. }`.
    Struct {
        /// The struct path segments.
        path: Vec<String>,
        /// `(field name, value)` pairs; shorthand fields reference a path.
        fields: Vec<(String, Expr)>,
        /// Optional `..base` expression.
        base: Option<Box<Expr>>,
        /// Position.
        span: Span,
    },
    /// A range `a..b` / `a..=b` / `..b` / `a..`.
    Range {
        /// Start, when present.
        lo: Option<Box<Expr>>,
        /// End, when present.
        hi: Option<Box<Expr>>,
        /// Position.
        span: Span,
    },
    /// `return expr?` / `break expr?` / `continue`.
    Jump {
        /// `"return"`, `"break"`, or `"continue"`.
        keyword: &'static str,
        /// Carried value, when present.
        expr: Option<Box<Expr>>,
        /// Position.
        span: Span,
    },
    /// A macro invocation `name!(..)`; the token soup inside is dropped,
    /// except for `assert!`/`debug_assert!`, whose condition argument is
    /// kept for guard refinement in the interval pass.
    Macro {
        /// Macro path (`format`, `vec`, `ppatc_units :: x`).
        name: String,
        /// The parsed condition of an `assert!`-family invocation.
        cond: Option<Box<Expr>>,
        /// Position.
        span: Span,
    },
    /// A construct the parser does not model; produced only alongside a
    /// recorded [`crate::parser::ParseIssue`].
    Unknown {
        /// Position.
        span: Span,
    },
}

impl Expr {
    /// The node's source position.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Lit { span, .. }
            | Expr::Path { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Call { span, .. }
            | Expr::MethodCall { span, .. }
            | Expr::Field { span, .. }
            | Expr::Index { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Try { span, .. }
            | Expr::Tuple { span, .. }
            | Expr::Array { span, .. }
            | Expr::Block { span, .. }
            | Expr::If { span, .. }
            | Expr::Match { span, .. }
            | Expr::Loop { span, .. }
            | Expr::Closure { span, .. }
            | Expr::Struct { span, .. }
            | Expr::Range { span, .. }
            | Expr::Jump { span, .. }
            | Expr::Macro { span, .. }
            | Expr::Unknown { span } => *span,
        }
    }
}

/// One statement in a block.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `let pat(: ty)? = init (else block)?;` — the pattern is flattened to
    /// the bound names.
    Let {
        /// Names bound by the pattern (one for plain bindings, several for
        /// tuple/struct destructuring).
        names: Vec<String>,
        /// Type-annotation tokens, when present.
        ty: Option<Vec<String>>,
        /// Initializer, when present.
        init: Option<Expr>,
        /// Position of the `let`.
        span: Span,
    },
    /// An expression statement (with or without trailing `;`).
    Expr {
        /// The expression.
        expr: Expr,
        /// `true` when a `;` follows (the value is dropped).
        semi: bool,
    },
    /// A nested item (`fn`, `const`, `use`, ...) — skipped, not modelled
    /// (nested fns get their own [`crate::source::FnItem`]).
    Item {
        /// Leading keyword of the skipped item.
        keyword: String,
        /// Position.
        span: Span,
    },
}

/// A `{ ... }` block.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// The statements, in order. The final statement being a non-`semi`
    /// [`Stmt::Expr`] makes it the block's value.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// The block's tail expression (its value), when present.
    #[must_use]
    pub fn tail(&self) -> Option<&Expr> {
        match self.stmts.last() {
            Some(Stmt::Expr { expr, semi: false }) => Some(expr),
            _ => None,
        }
    }
}

/// Renders the AST as a compact s-expression, used by the golden snapshot
/// tests. Literals keep their text; spans are omitted so snapshots stay
/// stable under reformatting.
#[must_use]
pub fn sexp(expr: &Expr) -> String {
    match expr {
        Expr::Lit { text, .. } => format!("(lit {text})"),
        Expr::Path { segs, .. } => format!("(path {})", segs.join("::")),
        Expr::Unary { op, expr, .. } => {
            let op = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::Deref => "*",
                UnOp::Ref => "&",
            };
            format!("(unary {op} {})", sexp(expr))
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {} {})", op.symbol(), sexp(lhs), sexp(rhs))
        }
        Expr::Call { callee, args, .. } => format!("(call {}{})", sexp(callee), sexp_args(args)),
        Expr::MethodCall {
            recv, method, args, ..
        } => format!("(method {} .{method}{})", sexp(recv), sexp_args(args)),
        Expr::Field { recv, name, .. } => format!("(field {} .{name})", sexp(recv)),
        Expr::Index { recv, index, .. } => format!("(index {} {})", sexp(recv), sexp(index)),
        Expr::Cast { expr, ty, .. } => format!("(cast {} {})", sexp(expr), ty.join("")),
        Expr::Try { expr, .. } => format!("(try {})", sexp(expr)),
        Expr::Tuple { items, group, .. } => {
            if *group && items.len() == 1 {
                format!("(group {})", sexp(&items[0]))
            } else {
                format!("(tuple{})", sexp_args(items))
            }
        }
        Expr::Array { items, .. } => format!("(array{})", sexp_args(items)),
        Expr::Block { block, .. } => format!("(block{})", sexp_block(block)),
        Expr::If {
            cond, then, els, ..
        } => {
            let els = els
                .as_ref()
                .map_or(String::new(), |e| format!(" else {}", sexp(e)));
            format!("(if {} then{}{els})", sexp(cond), sexp_block(then))
        }
        Expr::Match {
            scrutinee, arms, ..
        } => format!("(match {}{})", sexp(scrutinee), sexp_args(arms)),
        Expr::Loop { head, body, .. } => {
            let head = head
                .as_ref()
                .map_or(String::new(), |h| format!(" {}", sexp(h)));
            format!("(loop{head}{})", sexp_block(body))
        }
        Expr::Closure { params, body, .. } => {
            format!("(closure |{}| {})", params.join(","), sexp(body))
        }
        Expr::Struct {
            path, fields, base, ..
        } => {
            let mut s = format!("(struct {}", path.join("::"));
            for (name, value) in fields {
                s.push_str(&format!(" {name}:{}", sexp(value)));
            }
            if let Some(b) = base {
                s.push_str(&format!(" ..{}", sexp(b)));
            }
            s.push(')');
            s
        }
        Expr::Range { lo, hi, .. } => {
            let lo = lo.as_ref().map_or(String::from("_"), |e| sexp(e));
            let hi = hi.as_ref().map_or(String::from("_"), |e| sexp(e));
            format!("(range {lo} {hi})")
        }
        Expr::Jump { keyword, expr, .. } => {
            let e = expr
                .as_ref()
                .map_or(String::new(), |e| format!(" {}", sexp(e)));
            format!("({keyword}{e})")
        }
        Expr::Macro { name, .. } => format!("(macro {name}!)"),
        Expr::Unknown { .. } => "(unknown)".to_string(),
    }
}

fn sexp_args(args: &[Expr]) -> String {
    let mut s = String::new();
    for a in args {
        s.push(' ');
        s.push_str(&sexp(a));
    }
    s
}

/// Renders a block's statements for snapshots.
#[must_use]
pub fn sexp_block(block: &Block) -> String {
    let mut s = String::new();
    for stmt in &block.stmts {
        s.push(' ');
        match stmt {
            Stmt::Let {
                names, ty, init, ..
            } => {
                s.push_str(&format!("(let {}", names.join(",")));
                if let Some(ty) = ty {
                    s.push_str(&format!(" :{}", ty.join("")));
                }
                if let Some(init) = init {
                    s.push_str(&format!(" = {}", sexp(init)));
                }
                s.push(')');
            }
            Stmt::Expr { expr, semi } => {
                s.push_str(&sexp(expr));
                if *semi {
                    s.push(';');
                }
            }
            Stmt::Item { keyword, .. } => s.push_str(&format!("(item {keyword})")),
        }
    }
    s
}
