//! `ppatc-lint` — a dependency-free static-analysis pass for the PPAtC
//! workspace.
//!
//! The model stack's correctness hinges on dimensional discipline: Eq. 2's
//! `C_embodied = (MPA + GPA + CI_fab·EPA)·Area` silently produces garbage
//! when a gCO₂e/kWh value meets a pJ value as bare `f64`s. The `ppatc-units`
//! newtypes prevent that at the arithmetic layer; this linter enforces it at
//! the *API* layer, alongside the workspace's panic-free invariants that
//! clippy alone cannot see (doc-test bodies, undocumented panic contracts,
//! missing `#[must_use]`, non-`#[non_exhaustive]` error enums).
//!
//! Pipeline: [`lexer`] (tokens, comment/raw-string aware) → [`source`]
//! (per-file model: items, test regions, suppressions) → [`parser`] (an
//! expression/statement AST for fn bodies) → [`dims`] (dimensional
//! dataflow seeded from the `ppatc-units` registry: PL006/PL007) +
//! [`callgraph`] (panic reachability: PL009) → [`rules`] (the PL001–PL009
//! catalog) → [`diag`] (stable codes, human/JSON rendering). Files are
//! analyzed in parallel (`--jobs`); the cross-file stage is serial and
//! deterministic.
//!
//! Run it over the workspace with `cargo run -p ppatc-lint`; suppress a
//! finding locally with a `// ppatc-lint: allow(rule-name)` comment on the
//! offending line or the line above it.

#![warn(missing_docs)]

pub mod ast;
pub mod callgraph;
pub mod diag;
pub mod dims;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};

use source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// A fatal linter error (I/O, bad workspace root). Rule findings are
/// [`Diagnostic`]s, never errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum LintError {
    /// The workspace root does not look like a Cargo workspace.
    NotAWorkspace(PathBuf),
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
}

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintError::NotAWorkspace(p) => {
                write!(
                    f,
                    "{} does not contain a [workspace] Cargo.toml",
                    p.display()
                )
            }
            LintError::Io(p, e) => write!(f, "failed to read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Findings silenced by `ppatc-lint: allow(...)` comments.
    pub suppressed: usize,
}

impl Report {
    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when the lint run should fail the build: any deny finding, or
    /// any finding at all under `deny_warnings`.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.deny_count() > 0 || (deny_warnings && !self.diagnostics.is_empty())
    }
}

/// The per-file stage of the pipeline: parse, per-file rules, call-graph
/// summaries. Pure function of one file — this is the unit of parallelism.
struct FileAnalysis {
    file: SourceFile,
    /// Per-file rule findings, pre-suppression.
    found: Vec<Diagnostic>,
    /// Call-graph summaries of this file's fns.
    summaries: Vec<callgraph::FnSummary>,
}

fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let file = SourceFile::parse(path, src);
    let mut found = Vec::new();
    for rule in rules::all() {
        rule.check(&file, &mut found);
    }
    let summaries = callgraph::summarize(&file);
    FileAnalysis {
        file,
        found,
        summaries,
    }
}

/// The cross-file stage: PL009 over the union call graph, then PL008 from
/// the directives left unused by every other rule, then suppression
/// filtering and the final deterministic sort.
fn assemble(mut analyses: Vec<FileAnalysis>) -> Report {
    let mut summaries = Vec::new();
    for a in &mut analyses {
        summaries.append(&mut a.summaries);
    }
    for r in callgraph::check(&summaries) {
        if let Some(a) = analyses.iter_mut().find(|a| a.file.path == r.path) {
            a.found.push(rules::panic_reachable_diag(
                &r.path, r.line, r.col, r.message,
            ));
        }
    }

    let known_rules: Vec<&'static str> = rules::all().iter().map(|r| r.name).collect();
    let mut report = Report::default();
    for a in &mut analyses {
        report.files += 1;
        // A directive is "used" when any finding it names lands in its
        // line window — including findings it will then suppress.
        let mut used = vec![false; a.file.allow_directives.len()];
        for d in &a.found {
            for (i, dir) in a.file.allow_directives.iter().enumerate() {
                if dir.rules.iter().any(|r| r == d.rule || r == "all")
                    && (dir.first..=dir.last).contains(&d.line)
                {
                    used[i] = true;
                }
            }
        }
        for (i, dir) in a.file.allow_directives.iter().enumerate() {
            if used[i] {
                continue;
            }
            let unknown: Vec<&str> = dir
                .rules
                .iter()
                .filter(|r| r.as_str() != "all" && !known_rules.contains(&r.as_str()))
                .map(String::as_str)
                .collect();
            let message = if unknown.is_empty() {
                format!(
                    "allow({}) suppresses nothing here; remove the directive or \
                     narrow it to the finding it was written for",
                    dir.rules.join(", ")
                )
            } else {
                format!(
                    "allow({}) names unknown rule{} `{}`; see --list-rules",
                    dir.rules.join(", "),
                    if unknown.len() == 1 { "" } else { "s" },
                    unknown.join("`, `")
                )
            };
            a.found.push(rules::unused_allow_diag(
                &a.file.path,
                dir.line,
                dir.col,
                message,
            ));
        }
        for d in a.found.drain(..) {
            if a.file.is_suppressed(d.rule, d.line) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d);
            }
        }
    }
    report.diagnostics.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.code.cmp(b.code))
    });
    report
}

/// Lints one in-memory source file. `path` should be workspace-relative
/// (it selects per-crate rule scoping and labels diagnostics). The file is
/// treated as a whole program: the PL009 call graph spans only its fns.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    assemble(vec![analyze_file(path, src)]).diagnostics
}

/// Lints every library source file in the workspace rooted at `root`:
/// `crates/*/src/**/*.rs` plus the root `src/`. Integration tests,
/// benches, and examples are out of scope — the rules govern library code.
///
/// Runs with one worker per available core; see [`lint_workspace_jobs`].
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    lint_workspace_jobs(root, default_jobs())
}

/// The default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// [`lint_workspace`] with an explicit worker count. Files are analyzed
/// in parallel with `std::thread::scope`; the cross-file stage (PL008,
/// PL009, sorting) is serial, so the report — and its `--json` rendering —
/// is byte-identical for every `jobs` value.
pub fn lint_workspace_jobs(root: &Path, jobs: usize) -> Result<Report, LintError> {
    let manifest = root.join("Cargo.toml");
    let is_workspace = fs::read_to_string(&manifest)
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false);
    if !is_workspace {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }

    let mut sources: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut sources)?;
        }
    }
    collect_rs(&root.join("src"), &mut sources)?;

    let mut inputs: Vec<(String, String)> = Vec::with_capacity(sources.len());
    for path in &sources {
        let src = fs::read_to_string(path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, src));
    }

    let jobs = jobs.max(1).min(inputs.len().max(1));
    let analyses: Vec<FileAnalysis> = if jobs <= 1 {
        inputs.iter().map(|(p, s)| analyze_file(p, s)).collect()
    } else {
        // Work-stealing over a shared index; each slot is written exactly
        // once, so the merged order equals the serial order.
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Mutex;
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<FileAnalysis>>> =
            inputs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((p, s)) = inputs.get(i) else { break };
                    let analysis = analyze_file(p, s);
                    if let Ok(mut slot) = slots[i].lock() {
                        *slot = Some(analysis);
                    }
                });
            }
        });
        slots
            .into_iter()
            .filter_map(|m| m.into_inner().ok().flatten())
            .collect()
    };
    Ok(assemble(analyses))
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
