//! `ppatc-lint` — a dependency-free static-analysis pass for the PPAtC
//! workspace.
//!
//! The model stack's correctness hinges on dimensional discipline: Eq. 2's
//! `C_embodied = (MPA + GPA + CI_fab·EPA)·Area` silently produces garbage
//! when a gCO₂e/kWh value meets a pJ value as bare `f64`s. The `ppatc-units`
//! newtypes prevent that at the arithmetic layer; this linter enforces it at
//! the *API* layer, alongside the workspace's panic-free invariants that
//! clippy alone cannot see (doc-test bodies, undocumented panic contracts,
//! missing `#[must_use]`, non-`#[non_exhaustive]` error enums).
//!
//! Pipeline: [`lexer`] (tokens, comment/raw-string aware) → [`source`]
//! (per-file model: items, test regions, suppressions) → [`rules`] (the
//! PL001–PL005 catalog) → [`diag`] (stable codes, human/JSON rendering).
//!
//! Run it over the workspace with `cargo run -p ppatc-lint`; suppress a
//! finding locally with a `// ppatc-lint: allow(rule-name)` comment on the
//! offending line or the line above it.

#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod source;

pub use diag::{Diagnostic, Severity};

use source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// A fatal linter error (I/O, bad workspace root). Rule findings are
/// [`Diagnostic`]s, never errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum LintError {
    /// The workspace root does not look like a Cargo workspace.
    NotAWorkspace(PathBuf),
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
}

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintError::NotAWorkspace(p) => {
                write!(
                    f,
                    "{} does not contain a [workspace] Cargo.toml",
                    p.display()
                )
            }
            LintError::Io(p, e) => write!(f, "failed to read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Findings silenced by `ppatc-lint: allow(...)` comments.
    pub suppressed: usize,
}

impl Report {
    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when the lint run should fail the build: any deny finding, or
    /// any finding at all under `deny_warnings`.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.deny_count() > 0 || (deny_warnings && !self.diagnostics.is_empty())
    }
}

/// Lints one in-memory source file. `path` should be workspace-relative
/// (it selects per-crate rule scoping and labels diagnostics).
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let mut report = Report::default();
    lint_into(path, src, &mut report);
    report.diagnostics
}

fn lint_into(path: &str, src: &str, report: &mut Report) {
    let file = SourceFile::parse(path, src);
    let mut found = Vec::new();
    for rule in rules::all() {
        rule.check(&file, &mut found);
    }
    report.files += 1;
    for d in found {
        if file.is_suppressed(d.rule, d.line) {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }
}

/// Lints every library source file in the workspace rooted at `root`:
/// `crates/*/src/**/*.rs` plus the root `src/`. Integration tests,
/// benches, and examples are out of scope — the rules govern library code.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    let manifest = root.join("Cargo.toml");
    let is_workspace = fs::read_to_string(&manifest)
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false);
    if !is_workspace {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }

    let mut sources: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut sources)?;
        }
    }
    collect_rs(&root.join("src"), &mut sources)?;

    let mut report = Report::default();
    for path in &sources {
        let src = fs::read_to_string(path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        lint_into(&rel, &src, &mut report);
    }
    report.diagnostics.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    Ok(report)
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
