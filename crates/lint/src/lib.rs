//! `ppatc-lint` — a dependency-free static-analysis pass for the PPAtC
//! workspace.
//!
//! The model stack's correctness hinges on dimensional discipline: Eq. 2's
//! `C_embodied = (MPA + GPA + CI_fab·EPA)·Area` silently produces garbage
//! when a gCO₂e/kWh value meets a pJ value as bare `f64`s. The `ppatc-units`
//! newtypes prevent that at the arithmetic layer; this linter enforces it at
//! the *API* layer, alongside the workspace's panic-free and determinism
//! invariants that clippy alone cannot see (doc-test bodies, undocumented
//! panic contracts, missing `#[must_use]`, non-`#[non_exhaustive]` error
//! enums, hash-order escapes, scheduler-dependent float reductions).
//!
//! Pipeline: [`lexer`] (tokens, comment/raw-string aware) → [`source`]
//! (per-file model: items, test regions, suppressions, `use` imports) →
//! [`parser`] (an expression/statement AST for fn bodies, parsed once per
//! fn) → per-file rules (PL001–PL005 token rules, [`determinism`]'s
//! PL010/PL012, [`concurrency`]'s PL017 unwind boundaries) +
//! [`callgraph`] summaries → the serial cross-file stage: [`symbols`]
//! (workspace symbol table and call-graph edges), [`summaries`]
//! (interprocedural dimensional fixed point emitting PL006/PL007/PL011
//! through [`dims`], then the [`vals`] interval fixed point emitting
//! PL013/PL014/PL015), [`callgraph`] panic reachability (PL009 with
//! cross-crate witness paths), [`concurrency`] shared-state escapes over
//! the same graph (PL016), PL008 from the directives left
//! unused — then suppression filtering and a total sort. Files are
//! analyzed in parallel (`--jobs`); the cross-file stage is serial and
//! deterministic, so the report is byte-identical at any worker count.
//!
//! An incremental [`cache`] (CLI default; `--no-cache` opts out) skips the
//! per-file stage for files whose content and interprocedural neighborhood
//! are unchanged.
//!
//! Run it over the workspace with `cargo run -p ppatc-lint`; suppress a
//! finding locally with a `// ppatc-lint: allow(rule-name)` comment on the
//! offending line or the line above it.

#![warn(missing_docs)]

pub mod ast;
pub mod cache;
pub mod callgraph;
pub mod concurrency;
pub mod determinism;
pub mod diag;
pub mod dims;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod summaries;
pub mod symbols;
pub mod vals;

pub use diag::{Diagnostic, Severity};

use source::SourceFile;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};

/// A fatal linter error (I/O, bad workspace root). Rule findings are
/// [`Diagnostic`]s, never errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum LintError {
    /// The workspace root does not look like a Cargo workspace.
    NotAWorkspace(PathBuf),
    /// Reading a file or directory failed.
    Io(PathBuf, std::io::Error),
}

impl core::fmt::Display for LintError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LintError::NotAWorkspace(p) => {
                write!(
                    f,
                    "{} does not contain a [workspace] Cargo.toml",
                    p.display()
                )
            }
            LintError::Io(p, e) => write!(f, "failed to read {}: {e}", p.display()),
        }
    }
}

impl std::error::Error for LintError {}

/// The outcome of linting a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// All unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of files scanned.
    pub files: usize,
    /// Findings silenced by `ppatc-lint: allow(...)` comments.
    pub suppressed: usize,
    /// Number of files served from the incremental cache (0 when the
    /// cache is disabled or cold).
    pub cache_hits: usize,
}

impl Report {
    /// Number of deny-severity findings.
    pub fn deny_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count()
    }

    /// Number of warn-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when the lint run should fail the build: any deny finding, or
    /// any finding at all under `deny_warnings`.
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.deny_count() > 0 || (deny_warnings && !self.diagnostics.is_empty())
    }
}

/// The parse products of one freshly analyzed file, kept for the
/// interprocedural stage.
pub(crate) struct FreshFile {
    /// The scanned file model.
    pub(crate) file: SourceFile,
    /// `(index into file.fns, parsed body)` for every analyzable fn, in
    /// declaration order — aligned 1:1 with the file's summaries.
    pub(crate) bodies: Vec<(usize, ast::Block)>,
}

/// The per-file stage of the pipeline: parse, per-file rules, call-graph
/// summaries. Pure function of one file — this is the unit of parallelism
/// and of incremental caching. Cache-restored files carry `fresh: None`
/// and trusted `cached_dims` instead of a parsed body.
pub(crate) struct FileAnalysis {
    /// Workspace-relative path.
    pub(crate) path: String,
    /// FNV-1a hash of the file's source text.
    pub(crate) content_hash: u64,
    /// Findings so far, pre-suppression. Per-file rules at construction;
    /// the cross-file stage appends PL006/PL007/PL009/PL011 here.
    pub(crate) found: Vec<Diagnostic>,
    /// Call-graph summaries of this file's fns (moved out at assembly).
    pub(crate) summaries: Vec<callgraph::FnSummary>,
    /// The suppression directives as written.
    pub(crate) allow_directives: Vec<source::AllowDirective>,
    /// Per-rule suppression line windows.
    pub(crate) suppressions: Vec<(String, u32, u32)>,
    /// Parse products, `None` for cache-restored files.
    pub(crate) fresh: Option<FreshFile>,
    /// Trusted dimensional summaries, `Some` only for cache-restored
    /// files (aligned with `summaries`).
    pub(crate) cached_dims: Option<Vec<summaries::FnDim>>,
}

pub(crate) fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let file = SourceFile::parse(path, src);
    let mut found = Vec::new();
    for rule in rules::all() {
        rule.check(&file, &mut found);
    }
    // Parse each analyzable body exactly once; every downstream pass
    // (determinism, call-graph summaries, the dimensional engine) walks
    // these same blocks.
    let bodies: Vec<(usize, ast::Block)> = callgraph::analyzable_fns(&file)
        .into_iter()
        .filter_map(|fi| {
            let span = file.fns[fi].body?;
            Some((fi, parser::parse_body(&file, span).0))
        })
        .collect();
    for f in determinism::check_file(&file, &bodies) {
        found.push(rules::det_finding_diag(&file.path, f));
    }
    for f in concurrency::check_file(&bodies) {
        found.push(rules::conc_finding_diag(&file.path, f));
    }
    let summaries = callgraph::summarize(&file, &bodies);
    FileAnalysis {
        path: file.path.clone(),
        content_hash: cache::fnv1a(src.as_bytes()),
        found,
        summaries,
        allow_directives: file.allow_directives.clone(),
        suppressions: file.suppressions.clone(),
        fresh: Some(FreshFile { file, bodies }),
        cached_dims: None,
    }
}

/// Everything the cross-file stage produces: the report, plus the
/// artifacts the cache layer persists for the next run.
pub(crate) struct Assembled {
    pub(crate) report: Report,
    /// One cache entry per input file, in input order.
    pub(crate) entries: Vec<cache::Entry>,
    /// Hash of the workspace symbol shape (see [`cache::symbol_shape`]).
    pub(crate) shape: u64,
}

fn is_suppressed(supps: &[(String, u32, u32)], rule: &str, line: u32) -> bool {
    supps
        .iter()
        .any(|(r, a, b)| (r == rule || r == "all") && (*a..=*b).contains(&line))
}

/// The cross-file stage: the workspace symbol table, the interprocedural
/// dimensional fixed point (PL006/PL007/PL011), PL009 over the union call
/// graph, then PL008 from the directives left unused by every other rule,
/// then suppression filtering and the final deterministic sort.
#[allow(clippy::too_many_lines)]
fn assemble(mut analyses: Vec<FileAnalysis>) -> Assembled {
    // Merge the per-file summaries into one workspace-indexed list,
    // remembering each file's slice.
    let mut all_sums = Vec::new();
    let mut counts = Vec::with_capacity(analyses.len());
    let mut owner_of: Vec<usize> = Vec::new();
    for (ai, a) in analyses.iter_mut().enumerate() {
        counts.push(a.summaries.len());
        owner_of.extend(std::iter::repeat_n(ai, a.summaries.len()));
        all_sums.append(&mut a.summaries);
    }
    let table = symbols::SymbolTable::build(&all_sums);
    let edges = table.edges();
    let shape = cache::symbol_shape(&all_sums);

    // The dimensional fixed point. Fresh files contribute parsed bodies;
    // cache-restored files contribute their trusted summaries as fixed
    // inputs.
    let mut bodies: Vec<Option<summaries::FnBody>> = Vec::with_capacity(all_sums.len());
    let mut fixed: Vec<Option<summaries::FnDim>> = Vec::with_capacity(all_sums.len());
    for a in &analyses {
        if let Some(fr) = &a.fresh {
            for (fi, block) in &fr.bodies {
                bodies.push(Some(summaries::FnBody {
                    item: &fr.file.fns[*fi],
                    block,
                }));
                fixed.push(None);
            }
        } else if let Some(cd) = &a.cached_dims {
            for d in cd {
                bodies.push(None);
                fixed.push(Some(d.clone()));
            }
        }
    }
    debug_assert_eq!(bodies.len(), all_sums.len());
    let engine = summaries::Engine::new(&all_sums, &table, bodies, fixed);
    engine.solve();
    let mut global: Vec<Diagnostic> = Vec::new();
    for (i, sum) in all_sums.iter().enumerate() {
        for f in engine.check(i) {
            global.push(rules::dims_finding_diag(&sum.path, f));
        }
        // PL013/PL014/PL015 from the interval pass: empty for
        // cache-restored fns (no body), whose findings ride in from the
        // cached per-file snapshot instead.
        for f in engine.check_ranges(i) {
            global.push(rules::range_finding_diag(&sum.path, f));
        }
    }
    let dims = engine.into_dims();

    // PL009 over the full workspace graph (recomputed every run — the
    // witness path depends on transitive callees, so it is never cached).
    for r in callgraph::check(&all_sums, &edges) {
        global.push(rules::panic_reachable_diag(
            &r.path, r.line, r.col, r.message,
        ));
    }
    // PL016 over the same graph: the per-fn ConcFacts are cached, but the
    // escape verdict depends on transitive callees, so it is recomputed
    // every run (and excluded from the cache snapshot below).
    for (i, f) in concurrency::check(&all_sums, &table, &edges) {
        global.push(rules::conc_finding_diag(&all_sums[i].path, f));
    }
    drop(table);

    let by_path: HashMap<&str, usize> = analyses
        .iter()
        .enumerate()
        .map(|(ai, a)| (a.path.as_str(), ai))
        .collect();
    let dest: Vec<Option<usize>> = global
        .iter()
        .map(|d| by_path.get(d.path.as_str()).copied())
        .collect();
    for (d, ai) in global.into_iter().zip(dest) {
        if let Some(ai) = ai {
            analyses[ai].found.push(d);
        }
    }

    // File-level dependency neighborhoods for cache invalidation: a file's
    // interprocedural findings depend on its callees' summaries *and* on
    // its callers' call-site evidence, so the edge set is symmetrized.
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); analyses.len()];
    for (i, es) in edges.iter().enumerate() {
        for &j in es {
            let (ai, aj) = (owner_of[i], owner_of[j]);
            if ai != aj {
                deps[ai].insert(aj);
                deps[aj].insert(ai);
            }
        }
    }
    let dep_paths: Vec<Vec<String>> = deps
        .iter()
        .map(|s| s.iter().map(|&aj| analyses[aj].path.clone()).collect())
        .collect();

    let known_rules: Vec<&'static str> = rules::all().iter().map(|r| r.name).collect();
    let mut report = Report::default();
    let mut entries = Vec::with_capacity(analyses.len());
    let mut sums_iter = all_sums.into_iter();
    let mut dims_iter = dims.into_iter();
    for (ai, a) in analyses.iter_mut().enumerate() {
        report.files += 1;
        if a.fresh.is_none() {
            report.cache_hits += 1;
        }

        // PL008: a directive is "used" when any finding it names lands in
        // its line window — including findings it will then suppress.
        let mut used = vec![false; a.allow_directives.len()];
        for d in &a.found {
            for (i, dir) in a.allow_directives.iter().enumerate() {
                if dir.rules.iter().any(|r| r == d.rule || r == "all")
                    && (dir.first..=dir.last).contains(&d.line)
                {
                    used[i] = true;
                }
            }
        }
        let mut pl008: Vec<(usize, Diagnostic)> = Vec::new();
        for (i, dir) in a.allow_directives.iter().enumerate() {
            if used[i] {
                continue;
            }
            let unknown: Vec<&str> = dir
                .rules
                .iter()
                .filter(|r| r.as_str() != "all" && !known_rules.contains(&r.as_str()))
                .map(String::as_str)
                .collect();
            let message = if unknown.is_empty() {
                format!(
                    "allow({}) suppresses nothing here; remove the directive or \
                     narrow it to the finding it was written for",
                    dir.rules.join(", ")
                )
            } else {
                format!(
                    "allow({}) names unknown rule{} `{}`; see --list-rules",
                    dir.rules.join(", "),
                    if unknown.len() == 1 { "" } else { "s" },
                    unknown.join("`, `")
                )
            };
            pl008.push((
                i,
                rules::unused_allow_diag(&a.path, dir.line, dir.col, message),
            ));
        }

        // Cache snapshot: per-file findings pre-suppression, minus the
        // always-recomputed assembly rules (PL008 lives in `pl008`;
        // PL009 and PL016 depend on other files' bodies).
        let entry_found: Vec<Diagnostic> = a
            .found
            .iter()
            .filter(|d| d.code != "PL009" && d.code != "PL016")
            .cloned()
            .collect();
        let fsums: Vec<callgraph::FnSummary> = sums_iter.by_ref().take(counts[ai]).collect();
        let fdims: Vec<summaries::FnDim> = dims_iter.by_ref().take(counts[ai]).collect();
        entries.push(cache::Entry {
            path: a.path.clone(),
            content_hash: a.content_hash,
            deps: dep_paths[ai].clone(),
            found: entry_found,
            summaries: fsums,
            dims: fdims,
            allow_directives: a.allow_directives.clone(),
            suppressions: a.suppressions.clone(),
        });

        for d in a.found.drain(..) {
            if is_suppressed(&a.suppressions, d.rule, d.line) {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d);
            }
        }
        // A PL008 finding about directive `i` must not be silenced by
        // directive `i` itself (an unused `allow(all)` would otherwise
        // swallow its own report); only *other* directives can.
        for (i, d) in pl008 {
            let silenced = a.allow_directives.iter().enumerate().any(|(j, dir)| {
                j != i
                    && dir.rules.iter().any(|r| r == d.rule || r == "all")
                    && (dir.first..=dir.last).contains(&d.line)
            });
            if silenced {
                report.suppressed += 1;
            } else {
                report.diagnostics.push(d);
            }
        }
    }
    report.diagnostics.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
            .then(a.code.cmp(b.code))
    });
    Assembled {
        report,
        entries,
        shape,
    }
}

/// Lints one in-memory source file. `path` should be workspace-relative
/// (it selects per-crate rule scoping and labels diagnostics). The file is
/// treated as a whole program: the PL009 call graph and the dimensional
/// summaries span only its fns. Never touches the incremental cache.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    assemble(vec![analyze_file(path, src)]).report.diagnostics
}

/// Lints every library source file in the workspace rooted at `root`:
/// `crates/*/src/**/*.rs` plus the root `src/`. Integration tests,
/// benches, and examples are out of scope — the rules govern library code.
///
/// Runs with one worker per available core; see [`lint_workspace_jobs`].
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    lint_workspace_jobs(root, default_jobs())
}

/// The default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// [`lint_workspace`] with an explicit worker count and the incremental
/// cache disabled. Files are analyzed in parallel with
/// `std::thread::scope`; the cross-file stage is serial, so the report —
/// and its `--json` rendering — is byte-identical for every `jobs` value.
pub fn lint_workspace_jobs(root: &Path, jobs: usize) -> Result<Report, LintError> {
    lint_workspace_cached(root, jobs, false)
}

/// [`lint_workspace_jobs`] with explicit control over the incremental
/// cache (`target/ppatc-lint.cache` under `root`). With `use_cache`, files
/// whose content hash and interprocedural neighborhood are unchanged skip
/// the per-file stage entirely; the cross-file stage always reruns, so a
/// warm report is byte-identical to a cold one.
pub fn lint_workspace_cached(
    root: &Path,
    jobs: usize,
    use_cache: bool,
) -> Result<Report, LintError> {
    let manifest = root.join("Cargo.toml");
    let is_workspace = fs::read_to_string(&manifest)
        .map(|s| s.contains("[workspace]"))
        .unwrap_or(false);
    if !is_workspace {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }

    let mut sources: Vec<PathBuf> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let entries =
            fs::read_dir(&crates_dir).map_err(|e| LintError::Io(crates_dir.clone(), e))?;
        let mut crate_dirs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut sources)?;
        }
    }
    collect_rs(&root.join("src"), &mut sources)?;

    let mut inputs: Vec<(String, String)> = Vec::with_capacity(sources.len());
    for path in &sources {
        let src = fs::read_to_string(path).map_err(|e| LintError::Io(path.clone(), e))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        inputs.push((rel, src));
    }

    // Partition inputs into cache hits and files needing fresh analysis.
    let cached = if use_cache { cache::load(root) } else { None };
    let mut hits: Vec<Option<cache::Entry>> = inputs.iter().map(|_| None).collect();
    if let Some(mut c) = cached {
        let mut by_path: HashMap<String, cache::Entry> =
            c.entries.drain(..).map(|e| (e.path.clone(), e)).collect();
        for (i, (p, src)) in inputs.iter().enumerate() {
            if let Some(e) = by_path.remove(p) {
                if e.content_hash == cache::fnv1a(src.as_bytes()) {
                    hits[i] = Some(e);
                }
            }
        }
        // Transitive invalidation: a hit survives only while every file in
        // its interprocedural neighborhood is itself a hit — a changed
        // callee (or caller) changes this file's inferred summaries.
        loop {
            let live: HashSet<String> = hits.iter().flatten().map(|e| e.path.clone()).collect();
            let mut dropped = false;
            for slot in &mut hits {
                if let Some(e) = slot {
                    if e.deps.iter().any(|d| !live.contains(d)) {
                        *slot = None;
                        dropped = true;
                    }
                }
            }
            if !dropped {
                break;
            }
        }
        // Symbol-shape gate: name resolution is global, so any change to
        // the workspace's set of fn signatures (add/remove/rename/move)
        // voids every hit. Verified after fresh analysis below.
        let fresh_needed: Vec<usize> = (0..inputs.len()).filter(|&i| hits[i].is_none()).collect();
        let fresh = analyze_parallel(&inputs, &fresh_needed, jobs);
        let mut fresh_iter = fresh.into_iter();
        let mut analyses: Vec<FileAnalysis> = Vec::with_capacity(inputs.len());
        for (i, _) in inputs.iter().enumerate() {
            match hits[i].take() {
                Some(e) => analyses.push(cache::to_analysis(e)),
                None => {
                    analyses.push(fresh_iter.next().expect("fresh analysis per miss"));
                }
            }
        }
        let new_shape = cache::symbol_shape_iter(analyses.iter().flat_map(|a| a.summaries.iter()));
        if analyses.iter().any(|a| a.fresh.is_none()) && new_shape != c.shape {
            // Shape drifted: redo everything fresh for full precision.
            let all: Vec<usize> = (0..inputs.len()).collect();
            let analyses = analyze_parallel(&inputs, &all, jobs);
            let assembled = assemble(analyses);
            let _ = cache::store(root, assembled.shape, &assembled.entries);
            return Ok(assembled.report);
        }
        let assembled = assemble(analyses);
        let _ = cache::store(root, assembled.shape, &assembled.entries);
        return Ok(assembled.report);
    }

    let all: Vec<usize> = (0..inputs.len()).collect();
    let analyses = analyze_parallel(&inputs, &all, jobs);
    let assembled = assemble(analyses);
    if use_cache {
        let _ = cache::store(root, assembled.shape, &assembled.entries);
    }
    Ok(assembled.report)
}

/// Runs the per-file stage over `inputs[which]` with `jobs` workers,
/// returning analyses in `which` order. Work-stealing over a shared index;
/// each slot is written exactly once, so the merged order equals the
/// serial order.
fn analyze_parallel(
    inputs: &[(String, String)],
    which: &[usize],
    jobs: usize,
) -> Vec<FileAnalysis> {
    let jobs = jobs.max(1).min(which.len().max(1));
    if jobs <= 1 {
        return which
            .iter()
            .map(|&i| analyze_file(&inputs[i].0, &inputs[i].1))
            .collect();
    }
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<FileAnalysis>>> = which.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let k = next.fetch_add(1, Ordering::Relaxed);
                let Some(&i) = which.get(k) else { break };
                let analysis = analyze_file(&inputs[i].0, &inputs[i].1);
                if let Ok(mut slot) = slots[k].lock() {
                    *slot = Some(analysis);
                }
            });
        }
    });
    slots
        .into_iter()
        .filter_map(|m| m.into_inner().ok().flatten())
        .collect()
}

/// Recursively collects `.rs` files under `dir` (no-op when absent).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(s) = fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
