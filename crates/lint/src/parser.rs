//! A hand-rolled recursive-descent expression parser over the
//! [`crate::lexer`] token stream.
//!
//! [`parse_body`] turns one fn body (a code-token range produced by the
//! [`crate::source`] scanner) into an [`crate::ast`] tree. The parser
//! follows Rust's expression grammar closely enough for dataflow analysis:
//! full operator precedence, method chains with turbofish, `as` casts,
//! closures, `if`/`match`/loops, struct literals (with the
//! no-struct-literal restriction in condition position), ranges, and
//! labelled blocks. Patterns are flattened to their binding names and
//! macro bodies are treated as opaque.
//!
//! The parser never panics and always terminates: a construct it cannot
//! model becomes an [`Expr::Unknown`] node plus a recorded [`ParseIssue`],
//! and the workspace-parse property test keeps the issue count at zero for
//! the real tree.

use crate::ast::{BinOp, Block, Expr, LitKind, Span, Stmt, UnOp};
use crate::lexer::TokenKind;
use crate::source::SourceFile;

/// A construct the parser had to skip or fold to [`Expr::Unknown`].
#[derive(Clone, Debug)]
pub struct ParseIssue {
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// What the parser could not model.
    pub message: String,
}

/// Parses the body of a fn item. `body` is the code-index range of the
/// `{`..`}` pair as recorded in [`crate::source::FnItem::body`]. Returns
/// the block plus any constructs the parser could not model.
#[must_use]
pub fn parse_body(file: &SourceFile, body: (usize, usize)) -> (Block, Vec<ParseIssue>) {
    let (open, close) = body;
    let mut parser = Parser {
        file,
        pos: open + 1,
        end: close,
        no_struct: false,
        issues: Vec::new(),
    };
    let block = parser.block_stmts();
    (block, parser.issues)
}

/// Keywords that begin a nested item when seen in statement position.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "impl",
    "trait",
    "mod",
    "use",
    "type",
    "static",
    "macro_rules",
];

/// Keywords that can never be a path segment in expression position.
const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "let", "return", "break", "continue", "move",
    "unsafe", "async", "as", "in", "where",
];

struct Parser<'a> {
    file: &'a SourceFile,
    /// Current position, in code-index space.
    pos: usize,
    /// One past the last code index of the region being parsed.
    end: usize,
    /// `true` in condition/scrutinee position, where `Path {` starts a
    /// block, not a struct literal.
    no_struct: bool,
    issues: Vec<ParseIssue>,
}

impl<'a> Parser<'a> {
    // -- token helpers ----------------------------------------------------

    fn text(&self, ahead: usize) -> &str {
        let i = self.pos + ahead;
        if i >= self.end {
            return "";
        }
        self.file.code_token(i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, ahead: usize) -> Option<TokenKind> {
        let i = self.pos + ahead;
        if i >= self.end {
            return None;
        }
        self.file.code_token(i).map(|t| t.kind)
    }

    fn span(&self, ahead: usize) -> Span {
        self.file
            .code_token(self.pos + ahead)
            .map_or(Span::default(), |t| Span::at(t.line, t.col))
    }

    /// `true` when the tokens at `pos + a` and `pos + a + 1` touch in the
    /// source (so `=` `=` is `==` but `= =` is not).
    fn adjacent(&self, a: usize) -> bool {
        let (Some(t1), Some(t2)) = (
            self.file.code_token(self.pos + a),
            self.file.code_token(self.pos + a + 1),
        ) else {
            return false;
        };
        self.pos + a + 1 < self.end
            && t1.line == t2.line
            && t2.col == t1.col + u32::try_from(t1.text.len()).unwrap_or(1)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.end
    }

    fn bump(&mut self) {
        self.pos += 1;
    }

    fn issue(&mut self, message: impl Into<String>) {
        let span = self.span(0);
        self.issues.push(ParseIssue {
            line: span.line,
            col: span.col,
            message: message.into(),
        });
    }

    /// Consumes the group opening at the current position (`(`/`[`/`{`),
    /// leaving `pos` one past the closer.
    fn skip_group(&mut self) {
        let (opener, closer) = match self.text(0) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => {
                self.bump();
                return;
            }
        };
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.text(0);
            if t == opener {
                depth += 1;
            } else if t == closer {
                depth -= 1;
                if depth == 0 {
                    self.bump();
                    return;
                }
            }
            self.bump();
        }
    }

    // -- blocks and statements -------------------------------------------

    /// Parses statements up to (not past) `self.end`.
    fn block_stmts(&mut self) -> Block {
        let mut stmts = Vec::new();
        while !self.at_end() {
            let before = self.pos;
            if self.text(0) == ";" {
                self.bump();
                continue;
            }
            if let Some(stmt) = self.stmt() {
                stmts.push(stmt);
            }
            if self.pos == before {
                // Defensive: never loop without progress.
                self.issue(format!("cannot parse statement at `{}`", self.text(0)));
                self.bump();
            }
        }
        Block { stmts }
    }

    /// Parses a braced block whose `{` is at the current position.
    fn block(&mut self) -> Block {
        if self.text(0) != "{" {
            self.issue(format!("expected `{{`, found `{}`", self.text(0)));
            return Block::default();
        }
        let close = self.file.skip_group(self.pos, "{", "}");
        let close = close.min(self.end).saturating_sub(1); // index of `}`
        let mut inner = Parser {
            file: self.file,
            pos: self.pos + 1,
            end: close.max(self.pos + 1),
            no_struct: false,
            issues: Vec::new(),
        };
        let block = inner.block_stmts();
        self.issues.append(&mut inner.issues);
        self.pos = close + 1;
        block
    }

    fn stmt(&mut self) -> Option<Stmt> {
        // Leading outer attributes on statements.
        while self.text(0) == "#" && self.text(1) == "[" {
            self.bump();
            self.skip_group();
        }
        if self.at_end() {
            return None;
        }
        let span = self.span(0);
        let head = self.text(0).to_string();

        if head == "let" {
            return Some(self.let_stmt(span));
        }
        if ITEM_KEYWORDS.contains(&head.as_str())
            || (head == "const" && self.kind(1) == Some(TokenKind::Ident) && self.text(1) != "_")
            || (head == "pub")
        {
            self.skip_item();
            return Some(Stmt::Item {
                keyword: head,
                span,
            });
        }

        // Block-like expressions in statement position terminate without
        // `;` and never continue into a binary operator.
        let expr = if is_block_like(&head) || head == "{" {
            self.expr_block_like()
        } else {
            self.expr(0)
        };
        let semi = self.text(0) == ";";
        if semi {
            self.bump();
        }
        Some(Stmt::Expr { expr, semi })
    }

    fn let_stmt(&mut self, span: Span) -> Stmt {
        self.bump(); // let
        let names = self.pattern_names(&[":", "=", ";"]);
        let ty = if self.text(0) == ":" {
            self.bump();
            Some(self.type_tokens(&["=", ";"]))
        } else {
            None
        };
        let init = if self.text(0) == "=" {
            self.bump();
            Some(self.expr(0))
        } else {
            None
        };
        // `let ... else { diverge }`.
        if self.text(0) == "else" {
            self.bump();
            let _ = self.block();
        }
        if self.text(0) == ";" {
            self.bump();
        }
        Stmt::Let {
            names,
            ty,
            init,
            span,
        }
    }

    /// Consumes a nested item (already positioned at its keyword).
    fn skip_item(&mut self) {
        while !self.at_end() {
            match self.text(0) {
                "{" => {
                    self.skip_group();
                    return;
                }
                ";" => {
                    self.bump();
                    return;
                }
                "=" if self.text(1) != "=" => {
                    // `const X: T = expr;` — skip to the `;` at depth 0.
                    while !self.at_end() && self.text(0) != ";" {
                        match self.text(0) {
                            "(" | "[" | "{" => self.skip_group(),
                            _ => self.bump(),
                        }
                    }
                }
                "(" | "[" => self.skip_group(),
                _ => self.bump(),
            }
        }
    }

    /// Flattens a pattern into its binding names, consuming tokens until a
    /// top-level occurrence of one of `stops` (left unconsumed).
    fn pattern_names(&mut self, stops: &[&str]) -> Vec<String> {
        let mut names = Vec::new();
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.text(0);
            if depth == 0 && stops.contains(&t) {
                break;
            }
            // `in` ends a for-loop pattern; `=` `>` ends a match pattern.
            if depth == 0 && (t == "in" || (t == "=" && self.text(1) == ">" && self.adjacent(0))) {
                break;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                _ => {
                    if self.kind(0) == Some(TokenKind::Ident)
                        && !matches!(t, "mut" | "ref" | "box")
                        && self.text(1) != "::"
                        && !(self.text(1) == ":" && self.text(2) == ":")
                        // An ident directly followed by `(`/`{`/`:` is a
                        // path or field label, not a binding.
                        && !matches!(self.text(1), "(" | "{")
                        && !(depth > 0 && self.text(1) == ":")
                    {
                        names.push(t.to_string());
                    }
                }
            }
            self.bump();
        }
        names
    }

    /// Collects type tokens until a top-level occurrence of one of `stops`.
    fn type_tokens(&mut self, stops: &[&str]) -> Vec<String> {
        let mut out = Vec::new();
        let mut angle = 0i32;
        let mut depth = 0usize;
        while !self.at_end() {
            let t = self.text(0);
            if depth == 0 && angle <= 0 && stops.contains(&t) {
                break;
            }
            match t {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                "<" => angle += 1,
                ">" if out.last().map(String::as_str) != Some("-") => angle -= 1,
                _ => {}
            }
            out.push(t.to_string());
            self.bump();
        }
        out
    }

    // -- expressions ------------------------------------------------------

    /// Parses an expression at the given minimum binding power.
    fn expr(&mut self, min_bp: u8) -> Expr {
        let mut lhs = self.unary();
        while let Some((op, bp, width)) = self.peek_binop() {
            if bp < min_bp {
                break;
            }
            let span = self.span(0);
            for _ in 0..width {
                self.bump();
            }
            // Assignment is right-associative; everything else left.
            let next_bp = if matches!(
                op,
                BinOp::Assign
                    | BinOp::AddAssign
                    | BinOp::SubAssign
                    | BinOp::MulAssign
                    | BinOp::DivAssign
                    | BinOp::RemAssign
                    | BinOp::BitAndAssign
                    | BinOp::BitOrAssign
                    | BinOp::BitXorAssign
                    | BinOp::ShlAssign
                    | BinOp::ShrAssign
            ) {
                bp
            } else {
                bp + 1
            };
            let rhs = self.expr(next_bp);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        // Range operator: lowest precedence short of assignment.
        if min_bp <= 2 && self.text(0) == "." && self.text(1) == "." && self.adjacent(0) {
            let span = self.span(0);
            self.bump();
            self.bump();
            if self.text(0) == "=" {
                self.bump();
            }
            let hi = if self.starts_expr() {
                Some(Box::new(self.expr(3)))
            } else {
                None
            };
            lhs = Expr::Range {
                lo: Some(Box::new(lhs)),
                hi,
                span,
            };
        }
        lhs
    }

    /// Binding powers: higher binds tighter. Returns (op, power, token count).
    fn peek_binop(&mut self) -> Option<(BinOp, u8, usize)> {
        let t0 = self.text(0);
        let t1 = if self.adjacent(0) { self.text(1) } else { "" };
        let t2 = if self.adjacent(0) && self.adjacent(1) {
            self.text(2)
        } else {
            ""
        };
        Some(match (t0, t1, t2) {
            ("=", ">", _) => return None, // match arm arrow
            ("<", "<", "=") => (BinOp::ShlAssign, 1, 3),
            (">", ">", "=") => (BinOp::ShrAssign, 1, 3),
            ("&", "=", _) => (BinOp::BitAndAssign, 1, 2),
            ("|", "=", _) => (BinOp::BitOrAssign, 1, 2),
            ("^", "=", _) => (BinOp::BitXorAssign, 1, 2),
            ("=", "=", _) => (BinOp::Eq, 5, 2),
            ("!", "=", _) => (BinOp::Ne, 5, 2),
            ("<", "=", _) => (BinOp::Le, 5, 2),
            (">", "=", _) => (BinOp::Ge, 5, 2),
            ("&", "&", _) => (BinOp::And, 4, 2),
            ("|", "|", _) => (BinOp::Or, 3, 2),
            ("<", "<", _) => (BinOp::Shl, 9, 2),
            (">", ">", _) => (BinOp::Shr, 9, 2),
            ("+", "=", _) => (BinOp::AddAssign, 1, 2),
            ("-", "=", _) => (BinOp::SubAssign, 1, 2),
            ("*", "=", _) => (BinOp::MulAssign, 1, 2),
            ("/", "=", _) => (BinOp::DivAssign, 1, 2),
            ("%", "=", _) => (BinOp::RemAssign, 1, 2),
            ("=", _, _) => (BinOp::Assign, 1, 1),
            ("+", _, _) => (BinOp::Add, 10, 1),
            ("-", _, _) => (BinOp::Sub, 10, 1),
            ("*", _, _) => (BinOp::Mul, 11, 1),
            ("/", _, _) => (BinOp::Div, 11, 1),
            ("%", _, _) => (BinOp::Rem, 11, 1),
            ("<", _, _) => (BinOp::Lt, 5, 1),
            (">", _, _) => (BinOp::Gt, 5, 1),
            ("&", _, _) => (BinOp::BitAnd, 8, 1),
            ("^", _, _) => (BinOp::BitXor, 7, 1),
            ("|", _, _) => (BinOp::BitOr, 6, 1),
            _ => return None,
        })
    }

    /// `true` when the current token can begin an expression (used to
    /// decide whether a range has an upper bound).
    fn starts_expr(&self) -> bool {
        if self.at_end() {
            return false;
        }
        match self.kind(0) {
            Some(TokenKind::Number | TokenKind::Str | TokenKind::Char) => true,
            Some(TokenKind::Ident) => !matches!(self.text(0), "in" | "else" | "as" | "where"),
            Some(TokenKind::Lifetime) => true,
            _ => matches!(self.text(0), "(" | "[" | "{" | "-" | "!" | "*" | "&" | "|"),
        }
    }

    fn unary(&mut self) -> Expr {
        let span = self.span(0);
        let op = match self.text(0) {
            "-" => Some(UnOp::Neg),
            "!" => Some(UnOp::Not),
            "*" => Some(UnOp::Deref),
            "&" => Some(UnOp::Ref),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            if op == UnOp::Ref && self.text(0) == "mut" {
                self.bump();
            }
            let expr = self.unary();
            return Expr::Unary {
                op,
                expr: Box::new(expr),
                span,
            };
        }
        // Leading `..`/`..=` range.
        if self.text(0) == "." && self.text(1) == "." && self.adjacent(0) {
            self.bump();
            self.bump();
            if self.text(0) == "=" {
                self.bump();
            }
            let hi = if self.starts_expr() {
                Some(Box::new(self.expr(3)))
            } else {
                None
            };
            return Expr::Range { lo: None, hi, span };
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Expr {
        let mut expr = self.primary();
        loop {
            match self.text(0) {
                "." => {
                    // Not a range (`..`).
                    if self.text(1) == "." && self.adjacent(0) {
                        break;
                    }
                    let span = self.span(1);
                    self.bump();
                    expr = self.postfix_dot(expr, span);
                }
                "?" => {
                    let span = self.span(0);
                    self.bump();
                    expr = Expr::Try {
                        expr: Box::new(expr),
                        span,
                    };
                }
                "(" => {
                    let span = self.span(0);
                    let args = self.comma_exprs("(", ")");
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        span,
                    };
                }
                "[" => {
                    let span = self.span(0);
                    let mut items = self.comma_exprs("[", "]");
                    let index = items.pop().unwrap_or(Expr::Unknown { span });
                    expr = Expr::Index {
                        recv: Box::new(expr),
                        index: Box::new(index),
                        span,
                    };
                }
                "as" => {
                    let span = self.span(0);
                    self.bump();
                    let ty = self.cast_type();
                    expr = Expr::Cast {
                        expr: Box::new(expr),
                        ty,
                        span,
                    };
                }
                _ => break,
            }
        }
        expr
    }

    /// Everything after `recv.`: field, tuple index, method call, `await`.
    fn postfix_dot(&mut self, recv: Expr, span: Span) -> Expr {
        match self.kind(0) {
            Some(TokenKind::Number) => {
                // Tuple index; the lexer may fuse `0.1` into one number.
                let text = self.text(0).to_string();
                self.bump();
                let mut e = recv;
                for part in text.split('.') {
                    e = Expr::Field {
                        recv: Box::new(e),
                        name: part.to_string(),
                        span,
                    };
                }
                e
            }
            Some(TokenKind::Ident) => {
                let name = self.text(0).to_string();
                self.bump();
                // Optional turbofish between name and `(`.
                if self.text(0) == ":" && self.text(1) == ":" && self.text(2) == "<" {
                    self.bump();
                    self.bump();
                    self.skip_angles();
                }
                if self.text(0) == "(" {
                    let args = self.comma_exprs("(", ")");
                    Expr::MethodCall {
                        recv: Box::new(recv),
                        method: name,
                        args,
                        span,
                    }
                } else {
                    Expr::Field {
                        recv: Box::new(recv),
                        name,
                        span,
                    }
                }
            }
            _ => {
                self.issue(format!(
                    "expected field or method after `.`: `{}`",
                    self.text(0)
                ));
                Expr::Unknown { span }
            }
        }
    }

    /// Consumes `<` .. `>` generic arguments starting at `<`.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_minus = false;
        while !self.at_end() {
            let t = self.text(0);
            match t {
                "<" => depth += 1,
                ">" if !prev_minus => {
                    depth -= 1;
                    if depth <= 0 {
                        self.bump();
                        return;
                    }
                }
                "(" | "[" => {
                    self.skip_group();
                    prev_minus = false;
                    continue;
                }
                _ => {}
            }
            prev_minus = t == "-";
            self.bump();
        }
    }

    /// Parses a comma-separated expression list inside `opener`..`closer`,
    /// consuming both delimiters.
    fn comma_exprs(&mut self, opener: &str, closer: &str) -> Vec<Expr> {
        debug_assert_eq!(self.text(0), opener);
        let close = self
            .file
            .skip_group(self.pos, opener, closer)
            .min(self.end)
            .saturating_sub(1);
        self.bump(); // opener
        let mut items = Vec::new();
        let saved_no_struct = self.no_struct;
        self.no_struct = false;
        while self.pos < close {
            let before = self.pos;
            // Array repeats `[x; n]` show up as `;`-separated items.
            items.push(self.expr(0));
            if self.text(0) == "," || self.text(0) == ";" {
                self.bump();
            }
            if self.pos == before {
                self.issue(format!("cannot parse list element at `{}`", self.text(0)));
                self.bump();
            }
        }
        self.no_struct = saved_no_struct;
        self.pos = close + 1;
        items
    }

    /// Parses a block-like expression (`if`, `match`, loops, `unsafe`,
    /// plain blocks) that, in statement position, ends at its brace.
    fn expr_block_like(&mut self) -> Expr {
        let span = self.span(0);
        match self.text(0) {
            "if" => self.if_expr(span),
            "match" => self.match_expr(span),
            "loop" => {
                self.bump();
                let body = self.block();
                Expr::Loop {
                    head: None,
                    body,
                    span,
                }
            }
            "while" => {
                self.bump();
                let head = self.cond_expr();
                let body = self.block();
                Expr::Loop {
                    head: Some(Box::new(head)),
                    body,
                    span,
                }
            }
            "for" => {
                self.bump();
                let _bindings = self.pattern_names(&["in"]);
                if self.text(0) == "in" {
                    self.bump();
                }
                let head = self.cond_expr();
                let body = self.block();
                Expr::Loop {
                    head: Some(Box::new(head)),
                    body,
                    span,
                }
            }
            "unsafe" | "async" => {
                self.bump();
                if self.text(0) == "move" {
                    self.bump();
                }
                self.expr_block_like()
            }
            "{" => {
                let block = self.block();
                Expr::Block { block, span }
            }
            other => {
                self.issue(format!("expected block-like expression, found `{other}`"));
                self.bump();
                Expr::Unknown { span }
            }
        }
    }

    /// Parses a condition/scrutinee with struct literals disabled;
    /// `if let` / `while let` keep only the scrutinee.
    fn cond_expr(&mut self) -> Expr {
        if self.text(0) == "let" {
            self.bump();
            let _bindings = self.pattern_names(&["="]);
            if self.text(0) == "=" {
                self.bump();
            }
        }
        let saved = self.no_struct;
        self.no_struct = true;
        let e = self.expr(2);
        self.no_struct = saved;
        e
    }

    fn if_expr(&mut self, span: Span) -> Expr {
        self.bump(); // if
        let cond = self.cond_expr();
        let then = self.block();
        let els = if self.text(0) == "else" {
            self.bump();
            let espan = self.span(0);
            Some(Box::new(if self.text(0) == "if" {
                self.if_expr(espan)
            } else {
                let block = self.block();
                Expr::Block { block, span: espan }
            }))
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
            span,
        }
    }

    fn match_expr(&mut self, span: Span) -> Expr {
        self.bump(); // match
        let scrutinee = self.cond_expr();
        let mut arms = Vec::new();
        if self.text(0) != "{" {
            self.issue("expected `{` after match scrutinee");
            return Expr::Match {
                scrutinee: Box::new(scrutinee),
                arms,
                span,
            };
        }
        let close = self
            .file
            .skip_group(self.pos, "{", "}")
            .min(self.end)
            .saturating_sub(1);
        self.bump(); // {
        while self.pos < close {
            let before = self.pos;
            // Pattern (and optional guard) up to `=>`.
            let mut depth = 0usize;
            let mut guard = None;
            while self.pos < close {
                let t = self.text(0);
                if depth == 0 && t == "=" && self.text(1) == ">" && self.adjacent(0) {
                    break;
                }
                if depth == 0 && t == "if" {
                    self.bump();
                    guard = Some(self.cond_expr());
                    continue;
                }
                match t {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    _ => {}
                }
                self.bump();
            }
            if self.text(0) == "=" && self.text(1) == ">" {
                self.bump();
                self.bump();
            }
            if let Some(g) = guard {
                arms.push(g);
            }
            if self.pos < close {
                let head = self.text(0).to_string();
                let value = if is_block_like(&head) || head == "{" {
                    self.expr_block_like()
                } else {
                    self.expr(0)
                };
                arms.push(value);
            }
            if self.text(0) == "," {
                self.bump();
            }
            if self.pos == before {
                self.issue(format!("cannot parse match arm at `{}`", self.text(0)));
                self.bump();
            }
        }
        self.pos = close + 1;
        Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
            span,
        }
    }

    fn closure_expr(&mut self, span: Span) -> Expr {
        if self.text(0) == "move" {
            self.bump();
        }
        let mut params = Vec::new();
        if self.text(0) == "|" && self.text(1) == "|" && self.adjacent(0) {
            self.bump();
            self.bump();
        } else {
            self.bump(); // opening |
            let mut depth = 0usize;
            while !self.at_end() {
                let t = self.text(0);
                if depth == 0 && t == "|" {
                    self.bump();
                    break;
                }
                match t {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth = depth.saturating_sub(1),
                    ":" if depth == 0 => {
                        // Skip an explicit type annotation up to `,` or `|`.
                        self.bump();
                        let mut tdepth = 0usize;
                        while !self.at_end() {
                            let t = self.text(0);
                            if tdepth == 0 && (t == "," || t == "|") {
                                break;
                            }
                            match t {
                                "(" | "[" | "{" | "<" => tdepth += 1,
                                ")" | "]" | "}" | ">" => tdepth = tdepth.saturating_sub(1),
                                _ => {}
                            }
                            self.bump();
                        }
                        continue;
                    }
                    _ => {
                        if self.kind(0) == Some(TokenKind::Ident)
                            && !matches!(t, "mut" | "ref")
                            && depth == 0
                        {
                            params.push(t.to_string());
                        }
                    }
                }
                self.bump();
            }
        }
        // Optional return type `-> Ty` before a braced body.
        if self.text(0) == "-" && self.text(1) == ">" {
            self.bump();
            self.bump();
            let _ty = self.type_tokens(&["{"]);
        }
        let body = self.expr(0);
        Expr::Closure {
            params,
            body: Box::new(body),
            span,
        }
    }

    fn primary(&mut self) -> Expr {
        let span = self.span(0);
        if self.at_end() {
            self.issues.push(ParseIssue {
                line: span.line,
                col: span.col,
                message: "unexpected end of body".to_string(),
            });
            return Expr::Unknown { span };
        }
        match self.kind(0) {
            Some(TokenKind::Number) => {
                let text = self.text(0).to_string();
                self.bump();
                Expr::Lit {
                    kind: LitKind::Number,
                    text,
                    span,
                }
            }
            Some(TokenKind::Str) => {
                let text = self.text(0).to_string();
                self.bump();
                Expr::Lit {
                    kind: LitKind::Str,
                    text,
                    span,
                }
            }
            Some(TokenKind::Char) => {
                let text = self.text(0).to_string();
                self.bump();
                Expr::Lit {
                    kind: LitKind::Char,
                    text,
                    span,
                }
            }
            Some(TokenKind::Lifetime) => {
                // A loop label `'outer: loop { .. }`.
                self.bump();
                if self.text(0) == ":" {
                    self.bump();
                }
                if is_block_like(self.text(0)) || self.text(0) == "{" {
                    self.expr_block_like()
                } else {
                    self.issue("label not followed by a loop or block");
                    Expr::Unknown { span }
                }
            }
            Some(TokenKind::Ident)
                if self.text(0) == "b"
                    && self.adjacent(0)
                    && matches!(self.kind(1), Some(TokenKind::Char | TokenKind::Str)) =>
            {
                // Byte literal `b'\n'` / byte string `b"..."`: the lexer
                // splits the prefix off; fuse it back into one literal.
                let kind = if matches!(self.kind(1), Some(TokenKind::Char)) {
                    LitKind::Char
                } else {
                    LitKind::Str
                };
                let text = format!("b{}", self.text(1));
                self.bump();
                self.bump();
                Expr::Lit { kind, text, span }
            }
            Some(TokenKind::Ident) => self.primary_ident(span),
            Some(TokenKind::Punct) => match self.text(0) {
                "(" => {
                    let before_trailing_comma = {
                        // Distinguish `(e)` from `(e,)`: peek the token
                        // before the closer.
                        let close = self.file.skip_group(self.pos, "(", ")").min(self.end);
                        self.file
                            .code_token(close.saturating_sub(2))
                            .is_some_and(|t| t.text == ",")
                    };
                    let items = self.comma_exprs("(", ")");
                    let group = items.len() == 1 && !before_trailing_comma;
                    Expr::Tuple { items, group, span }
                }
                "[" => {
                    let items = self.comma_exprs("[", "]");
                    Expr::Array { items, span }
                }
                "{" => {
                    let block = self.block();
                    Expr::Block { block, span }
                }
                "|" => self.closure_expr(span),
                _ => {
                    self.issue(format!("unexpected token `{}`", self.text(0)));
                    self.bump();
                    Expr::Unknown { span }
                }
            },
            _ => {
                self.issue(format!("unexpected token `{}`", self.text(0)));
                self.bump();
                Expr::Unknown { span }
            }
        }
    }

    /// A primary starting with an identifier: keyword expressions, paths,
    /// macro calls, struct literals.
    fn primary_ident(&mut self, span: Span) -> Expr {
        let head = self.text(0).to_string();
        match head.as_str() {
            "true" | "false" => {
                self.bump();
                Expr::Lit {
                    kind: LitKind::Bool,
                    text: head,
                    span,
                }
            }
            "move" => self.closure_expr(span),
            "return" | "break" | "continue" => {
                self.bump();
                let keyword = match head.as_str() {
                    "return" => "return",
                    "break" => "break",
                    _ => "continue",
                };
                // `break 'label` labels.
                if self.kind(0) == Some(TokenKind::Lifetime) {
                    self.bump();
                }
                let expr = if keyword != "continue"
                    && self.starts_expr()
                    && !matches!(self.text(0), "{")
                {
                    Some(Box::new(self.expr(0)))
                } else {
                    None
                };
                Expr::Jump {
                    keyword,
                    expr,
                    span,
                }
            }
            _ if is_block_like(&head) => self.expr_block_like(),
            _ if EXPR_KEYWORDS.contains(&head.as_str()) => {
                self.issue(format!("keyword `{head}` in expression position"));
                self.bump();
                Expr::Unknown { span }
            }
            _ => {
                // A path: segments joined by `::`, with optional turbofish.
                let mut segs = vec![head];
                self.bump();
                loop {
                    if self.text(0) == ":" && self.text(1) == ":" && self.adjacent(0) {
                        if self.text(2) == "<" {
                            self.bump();
                            self.bump();
                            self.skip_angles();
                            continue;
                        }
                        if self.kind(2) == Some(TokenKind::Ident) {
                            segs.push(self.text(2).to_string());
                            self.bump();
                            self.bump();
                            self.bump();
                            continue;
                        }
                    }
                    break;
                }
                // Macro invocation `path!(..)` / `path![..]` / `path!{..}`.
                if self.text(0) == "!" && matches!(self.text(1), "(" | "[" | "{") {
                    self.bump();
                    // `assert!`/`debug_assert!` guarantee their condition
                    // holds downstream, so keep it as a parsed expression
                    // for guard refinement; everything else stays soup.
                    let last = segs.last().map_or("", String::as_str);
                    let cond = if matches!(last, "assert" | "debug_assert") && self.text(0) == "(" {
                        let saved_no_struct = self.no_struct;
                        self.no_struct = false;
                        self.bump(); // `(`
                        let c = self.expr(0);
                        self.no_struct = saved_no_struct;
                        // Skip the message arguments up to the matching `)`.
                        let mut depth = 1usize;
                        while !self.at_end() && depth > 0 {
                            match self.text(0) {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                _ => {}
                            }
                            self.bump();
                        }
                        Some(Box::new(c))
                    } else {
                        self.skip_group();
                        None
                    };
                    return Expr::Macro {
                        name: segs.join("::"),
                        cond,
                        span,
                    };
                }
                // Struct literal `Path { .. }` (disabled in cond position).
                if self.text(0) == "{" && !self.no_struct {
                    return self.struct_literal(segs, span);
                }
                Expr::Path { segs, span }
            }
        }
    }

    fn struct_literal(&mut self, path: Vec<String>, span: Span) -> Expr {
        let close = self
            .file
            .skip_group(self.pos, "{", "}")
            .min(self.end)
            .saturating_sub(1);
        self.bump(); // {
        let mut fields = Vec::new();
        let mut base = None;
        let saved = self.no_struct;
        self.no_struct = false;
        while self.pos < close {
            let before = self.pos;
            if self.text(0) == "." && self.text(1) == "." && self.adjacent(0) {
                self.bump();
                self.bump();
                base = Some(Box::new(self.expr(0)));
            } else if self.kind(0) == Some(TokenKind::Ident) {
                let name = self.text(0).to_string();
                let fspan = self.span(0);
                self.bump();
                if self.text(0) == ":" && !(self.text(1) == ":" && self.adjacent(0)) {
                    self.bump();
                    let value = self.expr(0);
                    fields.push((name, value));
                } else {
                    // Shorthand `Point { x, y }`.
                    fields.push((
                        name.clone(),
                        Expr::Path {
                            segs: vec![name],
                            span: fspan,
                        },
                    ));
                }
            }
            if self.text(0) == "," {
                self.bump();
            }
            if self.pos == before {
                self.issue(format!("cannot parse struct field at `{}`", self.text(0)));
                self.bump();
            }
        }
        self.no_struct = saved;
        self.pos = close + 1;
        Expr::Struct {
            path,
            fields,
            base,
            span,
        }
    }

    /// Collects the target type of an `as` cast (simple types only:
    /// optionally `*const`/`*mut`/`&`, then a path with generics).
    fn cast_type(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        if self.text(0) == "*" || self.text(0) == "&" {
            out.push(self.text(0).to_string());
            self.bump();
            if matches!(self.text(0), "const" | "mut") {
                out.push(self.text(0).to_string());
                self.bump();
            }
        }
        while self.kind(0) == Some(TokenKind::Ident) {
            out.push(self.text(0).to_string());
            self.bump();
            if self.text(0) == ":" && self.text(1) == ":" && self.adjacent(0) {
                out.push("::".to_string());
                self.bump();
                self.bump();
                continue;
            }
            if self.text(0) == "<" {
                let start = self.pos;
                self.skip_angles();
                for k in start..self.pos {
                    if let Some(t) = self.file.code_token(k) {
                        out.push(t.text.clone());
                    }
                }
            }
            break;
        }
        out
    }
}

/// `true` for keywords that begin block-like expressions.
fn is_block_like(word: &str) -> bool {
    matches!(
        word,
        "if" | "match" | "loop" | "while" | "for" | "unsafe" | "async"
    )
}
