//! Diagnostics: stable codes, severities, and human/JSON rendering.

use core::fmt;

/// How severe a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Advisory: reported, but exits 0 unless `--deny-warnings` is set.
    Warn,
    /// Violation of a workspace invariant: always a non-zero exit.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

/// One finding from a rule.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable diagnostic code (`PL001`...).
    pub code: &'static str,
    /// The rule's kebab-case name (used in suppression comments).
    pub rule: &'static str,
    /// Effective severity.
    pub severity: Severity,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic in the compact human format used by the CLI:
    /// `path:line:col: deny[PL002/panic-in-lib]: message`.
    pub fn human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}/{}]: {}",
            self.path, self.line, self.col, self.severity, self.code, self.rule, self.message
        )
    }

    /// Renders the diagnostic as a JSON object.
    pub fn json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.code,
            self.rule,
            self.severity,
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}
