//! Determinism rules PL010 and PL012: hash-order escapes and cross-thread
//! float accumulation.
//!
//! The workspace's load-bearing invariant is byte-identical results at
//! any worker count, across cache hits, and after kill-and-resume. Two
//! mechanical ways to lose it are:
//!
//! * **PL010 `hash-order-escape`** — `std`'s `HashMap`/`HashSet` iterate
//!   in a randomized order (SipHash keyed per process). Iterating one
//!   into any *ordered* sink — pushing to a `Vec`, building a `String`,
//!   `write!`/`format!` output, an accumulator — bakes that order into
//!   the result. A `sort` between the iteration and the sink, or a
//!   `BTreeMap`/`BTreeSet` collection, restores determinism.
//! * **PL012 `float-reduction-order`** — float addition is not
//!   associative, so accumulating `f64`s across thread or channel
//!   boundaries in arrival order (`*total.lock() += x` inside a spawned
//!   closure, `sum += v` in a receiver drain loop) makes the low bits a
//!   function of scheduling. The blessed idiom is `par_map_indexed`:
//!   reduce per-chunk, send `(index, partial)`, merge in index order —
//!   fns whose name contains `par_map_indexed` are exempt.
//!
//! Both rules are syntactic over-approximations tuned for zero false
//! positives on the real workspace: variable states are tracked only
//! through simple `let` bindings and method chains, struct fields are
//! never tracked, and unknown constructs widen to "not hashed".

use crate::ast::{BinOp, Block, Expr, Stmt};
use crate::source::SourceFile;
use std::collections::{HashMap, HashSet};

/// A PL010/PL012 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct DetFinding {
    /// `"PL010"` or `"PL012"`.
    pub code: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// What the tracker knows about a local variable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VState {
    /// A `HashMap`/`HashSet` value.
    Hashed,
    /// An iterator (chain) derived from a hashed container.
    UnorderedIter,
    /// A float accumulator (`let mut sum = 0.0`).
    FloatAcc,
}

/// Checks every pre-parsed non-test fn body of `file`.
pub fn check_file(file: &SourceFile, bodies: &[(usize, Block)]) -> Vec<DetFinding> {
    let mut out = Vec::new();
    for &(fi, ref block) in bodies {
        let f = &file.fns[fi];
        let mut w = Walker {
            env: HashMap::new(),
            sorted: HashSet::new(),
            candidates: Vec::new(),
            exempt_reduction: f.name.contains("par_map_indexed"),
            out: &mut out,
        };
        // Hash-typed parameters participate from the start.
        for p in &f.params {
            if p.ty.iter().any(|t| t == "HashMap" || t == "HashSet") {
                w.env.insert(p.name.clone(), VState::Hashed);
            }
        }
        w.walk_block(block, Ctx::default());
        // A tail-position collect of an unordered iterator escapes through
        // the return value when the fn returns an ordered container.
        if let Some(Stmt::Expr { expr, semi: false }) = block.stmts.last() {
            if w.is_unordered_collect(expr) && f.ret.iter().any(|t| t == "Vec" || t == "String") {
                let span = expr.span();
                w.out.push(DetFinding {
                    code: "PL010",
                    line: span.line,
                    col: span.col,
                    message: "returning a collect() of a HashMap/HashSet iterator as an \
                              ordered container bakes randomized hash order into the \
                              result; sort before returning or collect into a BTree \
                              container"
                        .to_string(),
                });
            }
        }
        w.flush_candidates();
    }
    out
}

/// Walk context: which enclosing constructs taint the current position.
#[derive(Clone, Copy, Default)]
struct Ctx {
    /// Inside the body of a loop over a hashed container's iterator.
    in_unordered_loop: bool,
    /// Inside a closure passed to a `spawn` call.
    in_spawn: bool,
    /// Inside the body of a loop draining a channel receiver.
    in_receiver_loop: bool,
}

struct Walker<'a> {
    env: HashMap<String, VState>,
    /// Variables later passed through a `.sort*()` call.
    sorted: HashSet<String>,
    /// Deferred PL010 candidates: `collect()`s of unordered iterators
    /// bound to ordered (or unannotated) locals, cancelled by a later
    /// sort of the same variable.
    candidates: Vec<(String, u32, u32)>,
    exempt_reduction: bool,
    out: &'a mut Vec<DetFinding>,
}

impl Walker<'_> {
    fn flush_candidates(&mut self) {
        let sorted = std::mem::take(&mut self.sorted);
        for (name, line, col) in std::mem::take(&mut self.candidates) {
            if sorted.contains(&name) {
                continue;
            }
            self.out.push(DetFinding {
                code: "PL010",
                line,
                col,
                message: format!(
                    "`{name}` collects a HashMap/HashSet iterator into an ordered \
                     container and is never sorted; its element order is randomized \
                     per process — sort it or collect into a BTree container"
                ),
            });
        }
    }

    /// The tracked state of an expression, through references, simple
    /// paths, constructor calls, and iterator chains.
    fn state_of(&self, e: &Expr) -> Option<VState> {
        match e {
            Expr::Path { segs, .. } if segs.len() == 1 => self.env.get(&segs[0]).copied(),
            Expr::Unary { expr, .. } => self.state_of(expr),
            Expr::Tuple { items, group, .. } if *group && items.len() == 1 => {
                self.state_of(&items[0])
            }
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() >= 2 {
                        let (ty, ctor) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
                        if (ty == "HashMap" || ty == "HashSet")
                            && matches!(
                                ctor.as_str(),
                                "new" | "with_capacity" | "from" | "from_iter" | "default"
                            )
                        {
                            return Some(VState::Hashed);
                        }
                    }
                }
                None
            }
            Expr::MethodCall { recv, method, .. } => match self.state_of(recv)? {
                VState::Hashed => matches!(
                    method.as_str(),
                    "iter"
                        | "iter_mut"
                        | "keys"
                        | "values"
                        | "values_mut"
                        | "into_iter"
                        | "into_keys"
                        | "into_values"
                        | "drain"
                )
                .then_some(VState::UnorderedIter),
                VState::UnorderedIter => matches!(
                    method.as_str(),
                    "map"
                        | "filter"
                        | "filter_map"
                        | "flat_map"
                        | "flatten"
                        | "enumerate"
                        | "zip"
                        | "chain"
                        | "take"
                        | "take_while"
                        | "skip"
                        | "skip_while"
                        | "step_by"
                        | "cloned"
                        | "copied"
                        | "inspect"
                        | "peekable"
                        | "fuse"
                        | "by_ref"
                )
                .then_some(VState::UnorderedIter),
                VState::FloatAcc => None,
            },
            _ => None,
        }
    }

    /// `expr` is `<unordered iterator>.collect()`.
    fn is_unordered_collect(&self, e: &Expr) -> bool {
        matches!(e, Expr::MethodCall { recv, method, .. }
            if method == "collect" && self.state_of(recv) == Some(VState::UnorderedIter))
    }

    fn walk_block(&mut self, block: &Block, ctx: Ctx) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    if let Some(e) = init {
                        self.walk(e, ctx);
                    }
                    if names.len() != 1 {
                        for n in names {
                            self.env.remove(n);
                        }
                        continue;
                    }
                    let name = &names[0];
                    self.env.remove(name);
                    let ann = |t: &str| ty.iter().flatten().any(|s| s == t);
                    if ann("HashMap") || ann("HashSet") {
                        self.env.insert(name.clone(), VState::Hashed);
                        continue;
                    }
                    if ann("BTreeMap") || ann("BTreeSet") {
                        continue; // ordered by construction
                    }
                    if let Some(e) = init {
                        if self.is_unordered_collect(e) {
                            // collect() into an ordered/unannotated local:
                            // deferred finding, cancelled by a later sort.
                            let span = e.span();
                            self.candidates.push((name.clone(), span.line, span.col));
                            continue;
                        }
                        if let Some(st) = self.state_of(e) {
                            self.env.insert(name.clone(), st);
                            continue;
                        }
                        if let Expr::Lit { text, .. } = e {
                            if text.contains('.') || text.ends_with("f64") || text.ends_with("f32")
                            {
                                self.env.insert(name.clone(), VState::FloatAcc);
                            }
                        }
                    }
                }
                Stmt::Expr { expr, .. } => self.walk(expr, ctx),
                Stmt::Item { .. } => {}
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk(&mut self, expr: &Expr, ctx: Ctx) {
        match expr {
            Expr::Loop { head, body, .. } => {
                let mut inner = ctx;
                if let Some(h) = head {
                    self.walk(h, ctx);
                    if matches!(
                        self.state_of(h),
                        Some(VState::Hashed | VState::UnorderedIter)
                    ) {
                        inner.in_unordered_loop = true;
                    }
                    if mentions_receiver(h) {
                        inner.in_receiver_loop = true;
                    }
                }
                self.walk_block(body, inner);
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                // `v.sort()` / `v.sort_by(..)` cancels a deferred
                // candidate on `v`.
                if method.starts_with("sort") {
                    if let Expr::Path { segs, .. } = recv.as_ref() {
                        if segs.len() == 1 {
                            self.sorted.insert(segs[0].clone());
                        }
                    }
                }
                if method == "spawn" {
                    self.walk(recv, ctx);
                    let mut inner = ctx;
                    inner.in_spawn = true;
                    for a in args {
                        self.walk(a, inner);
                    }
                    return;
                }
                if ctx.in_unordered_loop
                    && matches!(method.as_str(), "push" | "push_str" | "append" | "extend")
                    && self.state_of(recv) != Some(VState::Hashed)
                {
                    self.out.push(DetFinding {
                        code: "PL010",
                        line: span.line,
                        col: span.col,
                        message: format!(
                            "`.{method}(..)` inside a loop over a HashMap/HashSet \
                             records randomized iteration order in an ordered \
                             container; iterate a sorted snapshot or a BTree \
                             container instead"
                        ),
                    });
                }
                self.walk(recv, ctx);
                for a in args {
                    self.walk(a, ctx);
                }
            }
            Expr::Call { callee, args, .. } => {
                let is_spawn = matches!(callee.as_ref(), Expr::Path { segs, .. }
                    if segs.last().is_some_and(|s| s == "spawn"));
                let mut inner = ctx;
                if is_spawn {
                    inner.in_spawn = true;
                } else {
                    self.walk(callee, ctx);
                }
                for a in args {
                    self.walk(a, inner);
                }
            }
            Expr::Macro { name, span, .. } => {
                let bare = name.rsplit("::").next().unwrap_or(name);
                if ctx.in_unordered_loop
                    && matches!(
                        bare,
                        "write"
                            | "writeln"
                            | "print"
                            | "println"
                            | "eprint"
                            | "eprintln"
                            | "format"
                    )
                {
                    self.out.push(DetFinding {
                        code: "PL010",
                        line: span.line,
                        col: span.col,
                        message: format!(
                            "`{bare}!` inside a loop over a HashMap/HashSet emits \
                             randomized iteration order; iterate a sorted snapshot \
                             or a BTree container instead"
                        ),
                    });
                }
            }
            Expr::Binary { op, lhs, rhs, span } => {
                let compound = matches!(
                    op,
                    BinOp::AddAssign | BinOp::SubAssign | BinOp::MulAssign | BinOp::DivAssign
                );
                if compound && ctx.in_unordered_loop {
                    self.out.push(DetFinding {
                        code: "PL010",
                        line: span.line,
                        col: span.col,
                        message: format!(
                            "`{}` accumulates in randomized HashMap/HashSet iteration \
                             order; float accumulation is order-sensitive — iterate a \
                             sorted snapshot instead",
                            op.symbol()
                        ),
                    });
                }
                if compound && !self.exempt_reduction {
                    let through_lock = contains_lock(lhs);
                    let float_acc = matches!(lhs.as_ref(), Expr::Path { segs, .. }
                        if segs.len() == 1 && self.env.get(&segs[0]) == Some(&VState::FloatAcc));
                    if (ctx.in_spawn && through_lock)
                        || (ctx.in_receiver_loop && (float_acc || through_lock))
                    {
                        self.out.push(DetFinding {
                            code: "PL012",
                            line: span.line,
                            col: span.col,
                            message: format!(
                                "`{}` accumulates floats in thread/channel arrival \
                                 order, which is scheduler-dependent; reduce \
                                 per-chunk and merge in index order (the \
                                 par_map_indexed idiom)",
                                op.symbol()
                            ),
                        });
                    }
                }
                self.walk(lhs, ctx);
                self.walk(rhs, ctx);
            }
            Expr::Closure { body, .. } => self.walk(body, ctx),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.walk(expr, ctx)
            }
            Expr::Field { recv, .. } => self.walk(recv, ctx),
            Expr::Index { recv, index, .. } => {
                self.walk(recv, ctx);
                self.walk(index, ctx);
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    self.walk(e, ctx);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block, ctx),
            Expr::If {
                cond, then, els, ..
            } => {
                self.walk(cond, ctx);
                self.walk_block(then, ctx);
                if let Some(e) = els {
                    self.walk(e, ctx);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk(scrutinee, ctx);
                for a in arms {
                    self.walk(a, ctx);
                }
            }
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.walk(e, ctx);
                }
                if let Some(b) = base {
                    self.walk(b, ctx);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk(e, ctx);
                }
                if let Some(e) = hi {
                    self.walk(e, ctx);
                }
            }
            Expr::Jump { expr, .. } => {
                if let Some(e) = expr {
                    self.walk(e, ctx);
                }
            }
            Expr::Lit { .. } | Expr::Path { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// The subtree contains a `.lock()` call — shared mutable state guarded
/// by a mutex.
fn contains_lock(e: &Expr) -> bool {
    match e {
        Expr::MethodCall { recv, method, .. } => method == "lock" || contains_lock(recv),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
            contains_lock(expr)
        }
        Expr::Field { recv, .. } => contains_lock(recv),
        Expr::Index { recv, index, .. } => contains_lock(recv) || contains_lock(index),
        _ => false,
    }
}

/// The loop head mentions a channel receiver by conventional name.
fn mentions_receiver(e: &Expr) -> bool {
    match e {
        Expr::Path { segs, .. } => segs
            .last()
            .is_some_and(|s| s == "rx" || s == "receiver" || s.ends_with("_rx")),
        Expr::Field { recv, name, .. } => {
            name == "rx" || name == "receiver" || name.ends_with("_rx") || mentions_receiver(recv)
        }
        Expr::MethodCall { recv, .. } => mentions_receiver(recv),
        Expr::Unary { expr, .. } => mentions_receiver(expr),
        Expr::Tuple { items, .. } => items.iter().any(mentions_receiver),
        _ => false,
    }
}
