//! Inferred per-fn dimensional summaries and the interprocedural
//! fixed point.
//!
//! Every analyzable fn gets a [`FnDim`]: one abstract value per parameter
//! and one for the return value. Parameters are seeded from the signature
//! (quantity types, unit-suffixed `f64` names, `Instant`/`SystemTime`);
//! unseeded parameters are widened from *call-site evidence* — when every
//! resolved call site passes the same dimension, the callee's body is
//! checked under that unit. Return values are the join of each body's
//! tail and `return` expressions, evaluated under [`crate::dims`] with
//! this engine as the call oracle, so units flow through call chains of
//! any depth and across crate boundaries.
//!
//! The engine iterates to a fixed point (Jacobi style, bounded rounds,
//! fixed fn order — the result is deterministic even if a pathological
//! cycle fails to converge). Findings are only emitted by the final
//! [`Engine::check`] pass; iteration rounds discard them, so a finding is
//! always phrased against the *converged* summaries.
//!
//! Summaries of files restored from the incremental cache participate as
//! fixed inputs: their `FnDim`s are trusted verbatim and never
//! re-inferred (the cache layer re-analyzes a file whenever the
//! fingerprint of its callees' summaries changes).

use crate::ast::Block;
use crate::callgraph::{CallRef, FnSummary};
use crate::dims::{self, Finding, FindingKind, Val};
use crate::source::FnItem;
use crate::vals::{self, Range, RangeFinding};
use ppatc_units::registry::{spec_of, DimVec};
use std::cell::RefCell;
use std::collections::HashMap;

/// Maximum Jacobi rounds before the engine settles for the current state.
const MAX_ROUNDS: usize = 8;

/// Maximum rounds for the interval pass (return ranges propagate along
/// call chains one level per round; workspace chains are shallow).
const RANGE_ROUNDS: usize = 4;

/// A serializable abstract value (the owned mirror of [`dims`]' `Val`,
/// without literal payloads — summaries describe units, not magnitudes).
#[derive(Clone, Debug, PartialEq, Default)]
pub enum AbsVal {
    /// Nothing is known.
    #[default]
    Unknown,
    /// A dimensionless numeric.
    Number,
    /// A bare `f64` carrying a dimension.
    Raw {
        /// Dimension vector of the value.
        dim: DimVec,
        /// Scale to the canonical unit, when exactly tracked.
        scale: Option<f64>,
    },
    /// A `ppatc-units` newtype, by type name.
    Typed(String),
    /// A wall-clock-derived value.
    Wall,
}

impl AbsVal {
    /// Abstracts a dataflow value (literal payloads dropped).
    pub(crate) fn from_val(v: Val) -> Self {
        match v {
            Val::Unknown => AbsVal::Unknown,
            Val::Number(_) => AbsVal::Number,
            Val::Raw { dim, scale } => AbsVal::Raw { dim, scale },
            Val::Typed(name) => AbsVal::Typed(name.to_string()),
            Val::Wall => AbsVal::Wall,
        }
    }

    /// Concretizes back into the dataflow lattice.
    pub(crate) fn to_val(&self) -> Val {
        match self {
            AbsVal::Unknown => Val::Unknown,
            AbsVal::Number => Val::Number(None),
            AbsVal::Raw { dim, scale } => Val::raw(*dim, *scale),
            AbsVal::Typed(name) => spec_of(name).map_or(Val::Unknown, |s| Val::Typed(s.type_name)),
            AbsVal::Wall => Val::Wall,
        }
    }

    fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal::from_val(dims::join(self.to_val(), other.to_val()))
    }
}

/// The inferred dimensional summary of one fn: one value per parameter
/// (the `self` receiver included, at index 0, when present) and the
/// return value.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FnDim {
    /// Per-parameter abstract values, in declaration order.
    pub params: Vec<AbsVal>,
    /// The abstract return value.
    pub ret: AbsVal,
    /// The inferred numeric range of the return value (the interval
    /// pass's interprocedural summary; [`Range::TOP`] when unknown).
    pub ret_range: Range,
}

/// The body of one analyzable fn, borrowed from the per-file stage.
pub(crate) struct FnBody<'a> {
    /// The fn item (parameter names/types, owner).
    pub item: &'a FnItem,
    /// Its parsed body.
    pub block: &'a Block,
}

/// The fixed-point engine. Indexing is shared with the workspace summary
/// list: `bodies[i]`/`fixed[i]` describe `summaries[i]`.
pub(crate) struct Engine<'a> {
    summaries: &'a [FnSummary],
    table: &'a crate::symbols::SymbolTable<'a>,
    /// Parsed bodies for freshly analyzed fns; `None` for fns restored
    /// from cache (and for bodiless trait signatures).
    bodies: Vec<Option<FnBody<'a>>>,
    /// Current summary iterate.
    dims: RefCell<Vec<FnDim>>,
    /// Call-site evidence per fn parameter: `None` = no site seen,
    /// `Some(Unknown)` = conflicting sites (poisoned).
    evidence: RefCell<Vec<Vec<Option<AbsVal>>>>,
    /// Parameter positions pinned by the signature (never widened from
    /// evidence; the `self` receiver is always pinned).
    sig_seeded: Vec<Vec<bool>>,
}

impl<'a> Engine<'a> {
    /// Builds the engine. `fixed[i]` supplies the trusted summary for a
    /// cache-restored fn; such fns participate in resolution but are
    /// never re-inferred.
    pub fn new(
        summaries: &'a [FnSummary],
        table: &'a crate::symbols::SymbolTable<'a>,
        bodies: Vec<Option<FnBody<'a>>>,
        fixed: Vec<Option<FnDim>>,
    ) -> Self {
        let mut dims = Vec::with_capacity(summaries.len());
        let mut sig_seeded = Vec::with_capacity(summaries.len());
        for (i, s) in summaries.iter().enumerate() {
            if let Some(fd) = &fixed[i] {
                sig_seeded.push(vec![true; fd.params.len()]);
                dims.push(fd.clone());
                continue;
            }
            let Some(body) = &bodies[i] else {
                sig_seeded.push(Vec::new());
                dims.push(FnDim::default());
                continue;
            };
            let seed = dims::seed_params(body.item);
            let mut params = Vec::with_capacity(body.item.params.len());
            let mut pinned = Vec::with_capacity(body.item.params.len());
            for p in &body.item.params {
                if p.name == "self" {
                    // A receiver on a registry type is itself a quantity.
                    let v = s
                        .owner
                        .as_deref()
                        .filter(|o| spec_of(o).is_some())
                        .map_or(AbsVal::Unknown, |o| AbsVal::Typed(o.to_string()));
                    params.push(v);
                    pinned.push(true);
                } else if let Some(v) = seed.get(&p.name) {
                    params.push(AbsVal::from_val(*v));
                    pinned.push(true);
                } else {
                    params.push(AbsVal::Unknown);
                    pinned.push(false);
                }
            }
            sig_seeded.push(pinned);
            dims.push(FnDim {
                params,
                ret: AbsVal::Unknown,
                ret_range: Range::TOP,
            });
        }
        let evidence = dims.iter().map(|d| vec![None; d.params.len()]).collect();
        Self {
            summaries,
            table,
            bodies,
            dims: RefCell::new(dims),
            evidence: RefCell::new(evidence),
            sig_seeded,
        }
    }

    /// The parameter environment for evaluating fn `i`'s body.
    fn env_of(&self, i: usize) -> HashMap<String, Val> {
        let mut env = HashMap::new();
        let Some(body) = &self.bodies[i] else {
            return env;
        };
        let dims = self.dims.borrow();
        for (p, av) in body.item.params.iter().zip(&dims[i].params) {
            if p.name == "self" || p.name == "_" {
                continue;
            }
            let v = av.to_val();
            if v != Val::Unknown {
                env.insert(p.name.clone(), v);
            }
        }
        env
    }

    /// Runs the Jacobi iteration to (bounded) convergence.
    pub fn solve(&self) {
        for _ in 0..MAX_ROUNDS {
            for row in self.evidence.borrow_mut().iter_mut() {
                row.fill(None);
            }
            let mut changed = false;
            let mut scratch = Vec::new();
            for i in 0..self.summaries.len() {
                let Some(body) = &self.bodies[i] else {
                    continue;
                };
                scratch.clear();
                let oracle = Oracle {
                    engine: self,
                    caller: i,
                    collect: true,
                };
                let ret = dims::eval_fn(self.env_of(i), body.block, Some(&oracle), &mut scratch);
                let ret = AbsVal::from_val(ret);
                let mut dims = self.dims.borrow_mut();
                if dims[i].ret != ret {
                    dims[i].ret = ret;
                    changed = true;
                }
            }
            // Adopt unanimous call-site evidence for signature-unseeded
            // parameters of inferable fns.
            let evidence = self.evidence.borrow();
            let mut dims = self.dims.borrow_mut();
            for (i, row) in evidence.iter().enumerate() {
                if self.bodies[i].is_none() {
                    continue;
                }
                for (p, cell) in row.iter().enumerate() {
                    if self.sig_seeded[i].get(p).copied().unwrap_or(true) {
                        continue;
                    }
                    let adopted = match cell {
                        Some(v @ (AbsVal::Raw { .. } | AbsVal::Typed(_) | AbsVal::Wall)) => {
                            v.clone()
                        }
                        _ => AbsVal::Unknown,
                    };
                    if dims[i].params[p] != adopted {
                        dims[i].params[p] = adopted;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Interval rounds: propagate return ranges along resolved call
        // chains (findings discarded; the final check pass reports
        // against the converged ranges).
        let mut scratch = Vec::new();
        for _ in 0..RANGE_ROUNDS {
            let mut changed = false;
            for i in 0..self.summaries.len() {
                let Some(body) = &self.bodies[i] else {
                    continue;
                };
                scratch.clear();
                let oracle = RangeOracle {
                    engine: self,
                    caller: i,
                };
                let ret = vals::eval_fn(
                    vals::seed_params(body.item),
                    body.block,
                    Some(&oracle),
                    &mut scratch,
                );
                let mut dims = self.dims.borrow_mut();
                if dims[i].ret_range != ret {
                    dims[i].ret_range = ret;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// The final interval pass over one fn: evaluates its body with the
    /// converged range summaries, emitting PL013/PL014/PL015 findings.
    pub fn check_ranges(&self, i: usize) -> Vec<RangeFinding> {
        let mut out = Vec::new();
        if let Some(body) = &self.bodies[i] {
            let oracle = RangeOracle {
                engine: self,
                caller: i,
            };
            vals::eval_fn(
                vals::seed_params(body.item),
                body.block,
                Some(&oracle),
                &mut out,
            );
        }
        out
    }

    /// The final pass over one fn: evaluates its body with the converged
    /// summaries, emitting PL006/PL007/PL011 findings (intra-procedural
    /// and call-site alike).
    pub fn check(&self, i: usize) -> Vec<Finding> {
        let mut out = Vec::new();
        if let Some(body) = &self.bodies[i] {
            let oracle = Oracle {
                engine: self,
                caller: i,
                collect: false,
            };
            dims::eval_fn(self.env_of(i), body.block, Some(&oracle), &mut out);
        }
        out
    }

    /// The converged summaries, aligned with the workspace summary list.
    pub fn into_dims(self) -> Vec<FnDim> {
        self.dims.into_inner()
    }
}

/// The per-caller [`dims::Inter`] adapter.
struct Oracle<'e, 'a> {
    engine: &'e Engine<'a>,
    caller: usize,
    /// Whether to accumulate call-site evidence (iteration rounds only —
    /// the final check pass must not mutate engine state).
    collect: bool,
}

impl dims::Inter for Oracle<'_, '_> {
    fn call(
        &self,
        segs: &[String],
        is_method: bool,
        args: &[Val],
        line: u32,
        col: u32,
        out: &mut Vec<Finding>,
    ) -> Val {
        let call = CallRef {
            segs: segs.to_vec(),
            is_method,
        };
        let Some(j) = self.engine.table.resolve(self.caller, &call) else {
            return Val::Unknown;
        };
        let callee = &self.engine.summaries[j];
        let offset = usize::from(callee.has_self);
        let (params, ret) = {
            let dims = self.engine.dims.borrow();
            let d = &dims[j];
            let params: Vec<AbsVal> = d.params.iter().skip(offset).cloned().collect();
            (params, d.ret.clone())
        };
        for (n, (arg, param)) in args.iter().zip(&params).enumerate() {
            check_arg(
                callee,
                self.caller_crate(),
                n + 1,
                *arg,
                param,
                line,
                col,
                out,
            );
        }
        if self.collect && self.engine.bodies[j].is_some() {
            let mut evidence = self.engine.evidence.borrow_mut();
            for (n, arg) in args.iter().enumerate() {
                if let Some(cell) = evidence[j].get_mut(offset + n) {
                    let incoming = AbsVal::from_val(*arg);
                    *cell = Some(match cell.take() {
                        None => incoming,
                        Some(prev) => prev.join(&incoming),
                    });
                }
            }
        }
        ret.to_val()
    }
}

impl Oracle<'_, '_> {
    fn caller_crate(&self) -> &str {
        &self.engine.summaries[self.caller].crate_name
    }
}

/// The per-caller [`vals::Inter`] adapter: resolves a call to the
/// callee's current return-range iterate. Registry constructor paths are
/// left to [`vals`]' own transfer functions; everything unresolved stays
/// top.
struct RangeOracle<'e, 'a> {
    engine: &'e Engine<'a>,
    caller: usize,
}

impl vals::Inter for RangeOracle<'_, '_> {
    fn ret_range(&self, segs: &[String], is_method: bool) -> Range {
        let call = CallRef {
            segs: segs.to_vec(),
            is_method,
        };
        let Some(j) = self.engine.table.resolve(self.caller, &call) else {
            return Range::TOP;
        };
        self.engine.dims.borrow()[j].ret_range
    }
}

/// Checks one argument against the callee's inferred parameter unit.
/// Mirrors the intra-procedural `check_same_unit` gating: both sides must
/// carry a known, non-trivial dimension before anything fires, and scale
/// mismatches fire only between two *named* units.
#[allow(clippy::too_many_arguments)]
fn check_arg(
    callee: &FnSummary,
    caller_crate: &str,
    n: usize,
    arg: Val,
    param: &AbsVal,
    line: u32,
    col: u32,
    out: &mut Vec<Finding>,
) {
    let pv = param.to_val();
    let (Some(want), Some(got)) = (pv.dim(), arg.dim()) else {
        return;
    };
    if want.is_none() || got.is_none() {
        return;
    }
    let place = if callee.crate_name == caller_crate {
        String::new()
    } else {
        format!(" (defined in {})", callee.path)
    };
    if want != got {
        out.push(Finding {
            kind: FindingKind::DimensionMismatch,
            line,
            col,
            message: format!(
                "`{}` expects {} for argument {n}, but this call passes {}{place}",
                callee.name,
                dims::dim_name(want),
                dims::dim_name(got),
            ),
        });
        return;
    }
    if let (Val::Raw { scale: Some(a), .. }, Val::Raw { scale: Some(b), .. }) = (pv, arg) {
        if !dims::close(a, b) {
            if let (Some(ua), Some(ub)) = (dims::known_factor(want, a), dims::known_factor(want, b))
            {
                out.push(Finding {
                    kind: FindingKind::DimensionMismatch,
                    line,
                    col,
                    message: format!(
                        "`{}` argument {n} is inferred in {ua}, but this call passes \
                         {ub}{place}",
                        callee.name,
                    ),
                });
            }
        }
    }
}
