//! Dimensional dataflow over fn bodies.
//!
//! The pass evaluates each non-test fn body on an abstract value lattice:
//!
//! * `Typed(T)` — a `ppatc-units` newtype (`Energy`, `CarbonIntensity`, …),
//! * `Raw { dim, scale }` — a bare `f64` known to carry a physical
//!   dimension, with `scale` the factor to the canonical base unit when it
//!   can still be tracked exactly (`canonical = raw · scale`),
//! * `Number` — a dimensionless numeric, with its literal value when known,
//! * `Wall` — a value derived from the wall clock (`Instant::now()`,
//!   `SystemTime::now()`, and arithmetic over their readings),
//! * `Unknown` — everything else.
//!
//! Evaluation is no longer purely intra-procedural: an optional [`Inter`]
//! oracle (implemented by [`crate::summaries`]' fixed-point engine)
//! resolves workspace calls to inferred per-fn summaries, so a unit fault
//! that crosses a `fn` signature — or a crate boundary — is checked at
//! the call site and the callee's inferred return unit flows back into
//! the caller's body.
//!
//! Values are seeded from three sources, all derived from
//! [`ppatc_units::registry`] so no unit factor is ever duplicated here:
//! typed constructor/accessor calls (`Energy::from_picojoules`,
//! `.as_square_millimeters()`), quantity-typed parameters, and
//! unit-suffixed identifiers (`area_mm2`, `delay_ns`, `grid_g_per_kwh`).
//!
//! Three findings come out:
//!
//! * **PL006 `dimension-mismatch`** — `+`, `-`, or a comparison whose
//!   operands have different dimensions (J vs s), or the same dimension at
//!   provably different scales (pJ vs J); also a registry constructor fed a
//!   raw value of the wrong dimension.
//! * **PL007 `unit-cast-roundtrip`** — a registry constructor fed a raw
//!   value of the *right* dimension but a provably different scale, e.g.
//!   `Energy::from_joules(e.as_picojoules())`.
//! * **PL011 `wall-clock-in-result`** — a registry constructor fed a
//!   wall-clock-derived value: computed results must be a pure function
//!   of inputs (the workspace's byte-identical-replay invariant), so
//!   `Instant`/`SystemTime` readings may gate deadlines and telemetry but
//!   never become part of a quantity.
//!
//! Multiplying or dividing by a literal rescales the tracked factor
//! exactly, so `Energy::from_joules(e.as_picojoules() * 1e-12)` is clean;
//! any arithmetic the tracker cannot model widens `scale` to unknown and
//! both rules stay silent — the pass is deliberately silent-by-default to
//! keep zero false positives on the real workspace.

use crate::ast::{BinOp, Block, Expr, LitKind, Stmt};
use crate::source::FnItem;
use ppatc_units::registry::{spec_of, DimVec, MethodRole, REGISTRY, TYPED_CONVERSIONS};
use std::collections::HashMap;

/// Relative tolerance for comparing unit scales.
const SCALE_TOL: f64 = 1e-9;

/// A PL006/PL007 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Which rule the finding belongs to.
    pub kind: FindingKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// The dimensional-dataflow rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FindingKind {
    /// PL006: operands of different dimension (or provably different scale)
    /// meet in `+`/`-`/comparison, or a constructor gets the wrong dimension.
    DimensionMismatch,
    /// PL007: a constructor gets the right dimension at the wrong scale.
    UnitCastRoundtrip,
    /// PL011: a constructor gets a wall-clock-derived value.
    WallClockInResult,
}

/// An abstract value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Val {
    /// Nothing is known.
    Unknown,
    /// A dimensionless numeric; the payload is its value when it is a
    /// literal (used to track exact rescaling).
    Number(Option<f64>),
    /// A bare `f64` carrying a dimension; `canonical = raw · scale` when
    /// `scale` is known.
    Raw {
        /// Dimension vector of the value.
        dim: DimVec,
        /// Scale to the canonical unit, when still exactly tracked.
        scale: Option<f64>,
    },
    /// A `ppatc-units` newtype, by type name.
    Typed(&'static str),
    /// A wall-clock reading or arithmetic derived from one.
    Wall,
}

impl Val {
    pub(crate) fn raw(dim: DimVec, scale: Option<f64>) -> Self {
        if dim.is_none() {
            // A dimensionless ratio is just a number; dropping the scale
            // avoids nonsense findings on `(a_mm2 / b_m2) < 0.5`.
            Val::Number(None)
        } else {
            Val::Raw { dim, scale }
        }
    }

    /// The value's dimension, when known.
    pub(crate) fn dim(&self) -> Option<DimVec> {
        match self {
            Val::Raw { dim, .. } => Some(*dim),
            Val::Typed(name) => spec_of(name).map(|s| s.dim),
            Val::Number(_) => Some(DimVec::NONE),
            Val::Unknown | Val::Wall => None,
        }
    }
}

/// The summary join: the most specific value both sides agree on;
/// `Unknown` absorbs, so a summary never claims more than every path
/// proves.
pub(crate) fn join(a: Val, b: Val) -> Val {
    if a == b {
        return a;
    }
    match (a, b) {
        (Val::Number(_), Val::Number(_)) => Val::Number(None),
        (Val::Raw { dim: d1, scale: s1 }, Val::Raw { dim: d2, scale: s2 }) if d1 == d2 => {
            Val::Raw {
                dim: d1,
                scale: s1.zip(s2).filter(|&(x, y)| close(x, y)).map(|(x, _)| x),
            }
        }
        _ => Val::Unknown,
    }
}

/// The interprocedural oracle: resolves a call made inside a fn body to
/// an inferred callee summary, checks the arguments against the callee's
/// inferred parameter units (emitting call-site findings into `out`), and
/// returns the callee's inferred return value. Implemented by
/// [`crate::summaries`]' fixed-point engine; `None` keeps the evaluation
/// purely intra-procedural (tests, fixtures).
pub(crate) trait Inter {
    /// `segs(args)` for path calls, `recv.segs[0](args)` when `is_method`.
    fn call(
        &self,
        segs: &[String],
        is_method: bool,
        args: &[Val],
        line: u32,
        col: u32,
        out: &mut Vec<Finding>,
    ) -> Val;
}

/// Evaluates one fn body, appending findings to `out` and returning the
/// fn's abstract return value (the join of the tail expression and every
/// `return` expression). `seed` is the parameter environment — see
/// [`seed_params`] — possibly widened with call-site evidence by the
/// fixed-point engine.
pub(crate) fn eval_fn(
    seed: HashMap<String, Val>,
    block: &Block,
    inter: Option<&dyn Inter>,
    out: &mut Vec<Finding>,
) -> Val {
    let mut cx = Checker {
        env: seed,
        rets: Vec::new(),
        inter,
        out,
    };
    let tail = cx.eval_block(block);
    cx.rets.into_iter().fold(tail, join)
}

/// Seeds the environment from fn parameters: quantity-typed params become
/// `Typed`, `f64` params with a unit-suffixed name become `Raw`, and
/// `Instant`/`SystemTime` params become `Wall`.
pub(crate) fn seed_params(f: &FnItem) -> HashMap<String, Val> {
    let mut env = HashMap::new();
    for p in &f.params {
        if p.name == "self" || p.name == "_" {
            continue;
        }
        let ty_name =
            p.ty.iter()
                .rev()
                .find(|t| t.chars().next().is_some_and(char::is_uppercase) && spec_of(t).is_some());
        if let Some(name) = ty_name {
            if let Some(spec) = spec_of(name) {
                env.insert(p.name.clone(), Val::Typed(spec.type_name));
                continue;
            }
        }
        if p.ty.iter().any(|t| t == "Instant" || t == "SystemTime") {
            env.insert(p.name.clone(), Val::Wall);
            continue;
        }
        if p.ty.iter().any(|t| t == "f64" || t == "f32") {
            if let Some(val) = suffix_val(&p.name) {
                env.insert(p.name.clone(), val);
            }
        }
    }
    env
}

/// Resolves a unit-suffixed identifier (`area_mm2`, `from_seconds`' word
/// `seconds`, `grid_g_per_kwh`) to a seeded `Raw` value.
///
/// Matching is longest-suffix-wins over words derived from the registry's
/// method names plus a short abbreviation table. Identifiers containing
/// uppercase letters (constants, type names) and un-matched `_per_`
/// ratios are never seeded.
fn suffix_val(ident: &str) -> Option<Val> {
    if ident.chars().any(char::is_uppercase) {
        return None;
    }
    let mut best: Option<(&str, DimVec, f64)> = None;
    let mut consider = |word: &'static str, dim: DimVec, factor: f64| {
        let matches = ident == word
            || (ident.len() > word.len() + 1
                && ident.ends_with(word)
                && ident.as_bytes()[ident.len() - word.len() - 1] == b'_');
        if matches && best.is_none_or(|(w, _, _)| word.len() > w.len()) {
            best = Some((word, dim, factor));
        }
    };
    for spec in REGISTRY {
        for m in spec.methods {
            let word = m
                .name
                .strip_prefix("from_")
                .or_else(|| m.name.strip_prefix("as_"))
                .unwrap_or(m.name);
            consider(word, spec.dim, m.factor);
        }
    }
    for &(word, dim, factor) in ABBREVIATIONS {
        consider(word, dim, factor);
    }
    let (word, dim, factor) = best?;
    // `joules_per_op`-style ratios: only the compound words from the
    // registry (`g_per_kwh`, …) may contain `per`.
    if ident.contains("_per_") && !word.contains("_per_") {
        return None;
    }
    Some(Val::raw(dim, Some(factor)))
}

const DIM_ENERGY: DimVec = DimVec::of(1, 0, 0, 0, 0, 0);
const DIM_TIME: DimVec = DimVec::of(0, 1, 0, 0, 0, 0);
const DIM_FREQ: DimVec = DimVec::of(0, -1, 0, 0, 0, 0);
const DIM_LENGTH: DimVec = DimVec::of(0, 0, 1, 0, 0, 0);
const DIM_AREA: DimVec = DimVec::of(0, 0, 2, 0, 0, 0);
const DIM_CARBON: DimVec = DimVec::of(0, 0, 0, 1, 0, 0);
const DIM_POWER: DimVec = DimVec::of(1, -1, 0, 0, 0, 0);

/// Short unit suffixes that do not appear verbatim as registry method
/// words. Deliberately conservative: one- and two-letter suffixes that are
/// ambiguous in ordinary code (`_s`, `_m`, `_g`, `_mw`) are absent.
const ABBREVIATIONS: &[(&str, DimVec, f64)] = &[
    ("pj", DIM_ENERGY, 1e-12),
    ("fj", DIM_ENERGY, 1e-15),
    ("kwh", DIM_ENERGY, 3.6e6),
    ("ns", DIM_TIME, 1e-9),
    ("ps", DIM_TIME, 1e-12),
    ("ms", DIM_TIME, 1e-3),
    ("hz", DIM_FREQ, 1.0),
    ("khz", DIM_FREQ, 1e3),
    ("mhz", DIM_FREQ, 1e6),
    ("ghz", DIM_FREQ, 1e9),
    ("mm", DIM_LENGTH, 1e-3),
    ("um", DIM_LENGTH, 1e-6),
    ("nm", DIM_LENGTH, 1e-9),
    ("m2", DIM_AREA, 1.0),
    ("cm2", DIM_AREA, 1e-4),
    ("mm2", DIM_AREA, 1e-6),
    ("um2", DIM_AREA, 1e-12),
    ("gco2e", DIM_CARBON, 1.0),
    ("kgco2e", DIM_CARBON, 1e3),
    ("uw", DIM_POWER, 1e-6),
    ("nw", DIM_POWER, 1e-9),
];

/// Renders a dimension for diagnostics: a registry symbol when one type
/// has exactly this dimension, else a composed `J·s^-1` form.
pub(crate) fn dim_name(dim: DimVec) -> String {
    if dim.is_none() {
        return "dimensionless".to_string();
    }
    if let Some(spec) = REGISTRY.iter().find(|s| s.dim == dim) {
        return spec.symbol.to_string();
    }
    let parts: [(&str, i8); 6] = [
        ("J", dim.energy),
        ("s", dim.time),
        ("m", dim.length),
        ("gCO₂e", dim.carbon),
        ("C", dim.charge),
        ("USD", dim.currency),
    ];
    let mut out = String::new();
    for (sym, exp) in parts {
        if exp == 0 {
            continue;
        }
        if !out.is_empty() {
            out.push('·');
        }
        out.push_str(sym);
        if exp != 1 {
            out.push('^');
            out.push_str(&exp.to_string());
        }
    }
    out
}

/// The unit spelling of `scale` when it is a *known* factor of `dim` —
/// a registry constructor/accessor factor or an abbreviation-table entry.
///
/// This is the false-positive gate for scale checks: code multiplies
/// quantities by arbitrary engineering factors (`vdd * 0.9` guardbands,
/// Elmore's `0.5`) all the time, and those products are *new* quantities,
/// not unit conversions. Only a scale that lands exactly on a named unit
/// (pJ, mm², ns, …) is evidence of a forgotten conversion.
pub(crate) fn known_factor(dim: DimVec, scale: f64) -> Option<String> {
    for spec in REGISTRY {
        if spec.dim != dim {
            continue;
        }
        for m in spec.methods {
            if close(m.factor, scale) {
                return Some(m.unit.to_string());
            }
        }
    }
    for &(word, d, factor) in ABBREVIATIONS {
        if d == dim && close(factor, scale) {
            return Some(word.to_string());
        }
    }
    None
}

pub(crate) fn close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    scale > 0.0 && (a - b).abs() <= SCALE_TOL * scale
}

/// Parses a numeric literal's value (underscores stripped, type suffix
/// dropped, hex/octal/binary handled). `None` when unparseable.
pub(crate) fn literal_value(text: &str) -> Option<f64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    for (prefix, radix) in [("0x", 16), ("0o", 8), ("0b", 2)] {
        if let Some(rest) = t.strip_prefix(prefix) {
            let digits: String = rest.chars().take_while(|c| c.is_digit(radix)).collect();
            #[allow(clippy::cast_precision_loss)]
            return u64::from_str_radix(&digits, radix).ok().map(|v| v as f64);
        }
    }
    // Take the leading float syntax, dropping any type suffix (`f64`,
    // `u32`, `usize`). An `e` counts only when an exponent follows it.
    let bytes = t.as_bytes();
    let mut end = 0usize;
    while end < bytes.len() {
        let c = bytes[end];
        let ok = c.is_ascii_digit()
            || c == b'.'
            || (matches!(c, b'e' | b'E')
                && bytes
                    .get(end + 1)
                    .is_some_and(|&n| n.is_ascii_digit() || n == b'+' || n == b'-'))
            || (matches!(c, b'+' | b'-') && end > 0 && matches!(bytes[end - 1], b'e' | b'E'));
        if !ok {
            break;
        }
        end += 1;
    }
    t[..end].parse::<f64>().ok()
}

struct Checker<'a> {
    env: HashMap<String, Val>,
    /// Values of `return` expressions seen so far.
    rets: Vec<Val>,
    /// The interprocedural oracle, when running under the summary engine.
    inter: Option<&'a dyn Inter>,
    out: &'a mut Vec<Finding>,
}

impl Checker<'_> {
    fn finding(&mut self, kind: FindingKind, line: u32, col: u32, message: String) {
        self.out.push(Finding {
            kind,
            line,
            col,
            message,
        });
    }

    fn eval_block(&mut self, block: &Block) -> Val {
        let mut last = Val::Unknown;
        for (i, stmt) in block.stmts.iter().enumerate() {
            match stmt {
                Stmt::Let {
                    names, ty, init, ..
                } => {
                    let mut val = match init {
                        Some(e) => self.eval(e),
                        None => Val::Unknown,
                    };
                    if names.len() == 1 {
                        let name = &names[0];
                        // An explicit quantity type annotation wins.
                        if let Some(t) = ty
                            .as_ref()
                            .and_then(|ts| ts.iter().rev().find(|t| spec_of(t).is_some()))
                        {
                            if let Some(spec) = spec_of(t) {
                                val = Val::Typed(spec.type_name);
                            }
                        }
                        if val == Val::Unknown {
                            val = suffix_val(name).unwrap_or(Val::Unknown);
                        }
                        self.env.insert(name.clone(), val);
                    } else {
                        for name in names {
                            self.env.insert(name.clone(), Val::Unknown);
                        }
                    }
                    last = Val::Unknown;
                }
                Stmt::Expr { expr, semi } => {
                    let v = self.eval(expr);
                    last = if *semi || i + 1 != block.stmts.len() {
                        Val::Unknown
                    } else {
                        v
                    };
                }
                Stmt::Item { .. } => last = Val::Unknown,
            }
        }
        last
    }

    #[allow(clippy::too_many_lines)]
    fn eval(&mut self, expr: &Expr) -> Val {
        match expr {
            Expr::Lit { kind, text, .. } => match kind {
                LitKind::Number => Val::Number(literal_value(text)),
                _ => Val::Unknown,
            },
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    let name = &segs[0];
                    if let Some(v) = self.env.get(name) {
                        *v
                    } else {
                        suffix_val(name).unwrap_or(Val::Unknown)
                    }
                } else {
                    Val::Unknown
                }
            }
            Expr::Unary { expr, .. } => self.eval(expr),
            Expr::Binary { op, lhs, rhs, span } => {
                let lv = self.eval(lhs);
                let rv = self.eval(rhs);
                self.binary(*op, lv, rv, span.line, span.col)
            }
            Expr::Call { callee, args, span } => {
                let arg_vals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() >= 2 {
                        let (ty, method) = (&segs[segs.len() - 2], &segs[segs.len() - 1]);
                        if (ty == "Instant" || ty == "SystemTime") && method == "now" {
                            return Val::Wall;
                        }
                        if spec_of(ty).is_some() {
                            return self.typed_call(ty, method, &arg_vals, span.line, span.col);
                        }
                    }
                    if let Some(inter) = self.inter {
                        return inter.call(segs, false, &arg_vals, span.line, span.col, self.out);
                    }
                }
                Val::Unknown
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                let rval = self.eval(recv);
                let arg_vals: Vec<Val> = args.iter().map(|a| self.eval(a)).collect();
                let direct = self.method_call(rval, method);
                if direct == Val::Unknown {
                    if let Some(inter) = self.inter {
                        return inter.call(
                            std::slice::from_ref(method),
                            true,
                            &arg_vals,
                            span.line,
                            span.col,
                            self.out,
                        );
                    }
                }
                direct
            }
            Expr::Field { recv, name, .. } => {
                self.eval(recv);
                suffix_val(name).unwrap_or(Val::Unknown)
            }
            Expr::Index { recv, index, .. } => {
                self.eval(recv);
                self.eval(index);
                Val::Unknown
            }
            Expr::Cast { expr, .. } => self.eval(expr),
            Expr::Try { expr, .. } => {
                self.eval(expr);
                Val::Unknown
            }
            Expr::Tuple { items, group, .. } => {
                let vals: Vec<Val> = items.iter().map(|e| self.eval(e)).collect();
                if *group && vals.len() == 1 {
                    vals[0]
                } else {
                    Val::Unknown
                }
            }
            Expr::Array { items, .. } => {
                for e in items {
                    self.eval(e);
                }
                Val::Unknown
            }
            Expr::Block { block, .. } => self.eval_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.eval(cond);
                let tv = self.eval_block(then);
                let ev = els.as_ref().map(|e| self.eval(e));
                match ev {
                    Some(ev) if ev == tv => tv,
                    _ => Val::Unknown,
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.eval(scrutinee);
                for a in arms {
                    self.eval(a);
                }
                Val::Unknown
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.eval(h);
                }
                self.eval_block(body);
                Val::Unknown
            }
            Expr::Closure { params, body, .. } => {
                for p in params {
                    self.env.insert(p.clone(), Val::Unknown);
                }
                self.eval(body);
                Val::Unknown
            }
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.eval(e);
                }
                if let Some(b) = base {
                    self.eval(b);
                }
                Val::Unknown
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.eval(e);
                }
                if let Some(e) = hi {
                    self.eval(e);
                }
                Val::Unknown
            }
            Expr::Jump { keyword, expr, .. } => {
                let v = expr.as_ref().map_or(Val::Unknown, |e| self.eval(e));
                if *keyword == "return" {
                    self.rets.push(v);
                }
                Val::Unknown
            }
            Expr::Macro { .. } | Expr::Unknown { .. } => Val::Unknown,
        }
    }

    /// `Type::method(args)` — registry constructors and macro-provided
    /// canonical constructors.
    fn typed_call(&mut self, ty: &str, method: &str, args: &[Val], line: u32, col: u32) -> Val {
        let Some(spec) = spec_of(ty) else {
            return Val::Unknown;
        };
        // PL011: a wall-clock-derived value becoming part of a quantity
        // breaks the pure-function-of-inputs replay invariant.
        if args.contains(&Val::Wall) {
            self.finding(
                FindingKind::WallClockInResult,
                line,
                col,
                format!(
                    "{ty}::{method} is fed a wall-clock-derived value; computed \
                     results must be a pure function of inputs — keep \
                     Instant/SystemTime readings in deadlines and telemetry, \
                     not in quantities"
                ),
            );
            return Val::Typed(spec.type_name);
        }
        let ctor = spec
            .methods
            .iter()
            .find(|m| m.name == method && m.role == MethodRole::Constructor)
            .map(|m| (m.factor, m.unit))
            .or_else(|| (method == "new").then_some((1.0, spec.symbol)));
        if let Some((factor, unit)) = ctor {
            if let Some(&Val::Raw { dim, scale }) = args.first() {
                if dim != spec.dim {
                    self.finding(
                        FindingKind::DimensionMismatch,
                        line,
                        col,
                        format!(
                            "{ty}::{method} expects a value in {unit} ({}), but the \
                             argument carries {}",
                            dim_name(spec.dim),
                            dim_name(dim),
                        ),
                    );
                } else if let Some(s) = scale.filter(|&s| !close(s, factor)) {
                    // Fire only when the stray scale is itself a named
                    // unit: that is the signature of a roundtrip through
                    // the wrong accessor, not of deliberate scaling.
                    if let Some(stray) = known_factor(dim, s) {
                        self.finding(
                            FindingKind::UnitCastRoundtrip,
                            line,
                            col,
                            format!(
                                "{ty}::{method} expects {unit} but the argument is scaled \
                                 in {stray}; convert explicitly or use the matching \
                                 constructor"
                            ),
                        );
                    }
                }
            }
            return Val::Typed(spec.type_name);
        }
        if matches!(method, "zero" | "min" | "max" | "clamp" | "abs") {
            return Val::Typed(spec.type_name);
        }
        Val::Unknown
    }

    /// `recv.method(..)` — registry accessors, typed conversions, and
    /// value-preserving f64 helpers.
    fn method_call(&mut self, recv: Val, method: &str) -> Val {
        match recv {
            Val::Typed(ty) => {
                let Some(spec) = spec_of(ty) else {
                    return Val::Unknown;
                };
                if let Some(m) = spec
                    .methods
                    .iter()
                    .find(|m| m.name == method && m.role == MethodRole::Accessor)
                {
                    return Val::raw(spec.dim, Some(m.factor));
                }
                if method == "value" {
                    return Val::raw(spec.dim, Some(1.0));
                }
                if let Some(&(_, _, result)) = TYPED_CONVERSIONS
                    .iter()
                    .find(|&&(t, m, _)| t == ty && m == method)
                {
                    return Val::Typed(result);
                }
                if matches!(method, "abs" | "clamp" | "min" | "max") {
                    return Val::Typed(ty);
                }
                Val::Unknown
            }
            Val::Raw { dim, scale } => {
                // f64 helpers that keep the value's unit meaning.
                if matches!(
                    method,
                    "abs" | "floor" | "ceil" | "round" | "clamp" | "min" | "max"
                ) {
                    Val::raw(dim, scale)
                } else {
                    Val::Unknown
                }
            }
            Val::Wall => {
                // Clock readings stay tainted through the Instant/Duration
                // API surface and value-preserving f64 helpers.
                if matches!(
                    method,
                    "elapsed"
                        | "duration_since"
                        | "saturating_duration_since"
                        | "checked_duration_since"
                        | "as_secs"
                        | "as_secs_f64"
                        | "as_secs_f32"
                        | "as_millis"
                        | "as_micros"
                        | "as_nanos"
                        | "subsec_nanos"
                        | "subsec_micros"
                        | "subsec_millis"
                        | "unwrap"
                        | "expect"
                        | "unwrap_or"
                        | "unwrap_or_default"
                        | "abs"
                        | "floor"
                        | "ceil"
                        | "round"
                        | "clamp"
                        | "min"
                        | "max"
                ) {
                    Val::Wall
                } else {
                    Val::Unknown
                }
            }
            Val::Number(_) | Val::Unknown => {
                // The receiver type is unknown, but accessor names are
                // unique across the registry, so a bare `.as_picojoules()`
                // still pins the result.
                for spec in REGISTRY {
                    if let Some(m) = spec
                        .methods
                        .iter()
                        .find(|m| m.name == method && m.role == MethodRole::Accessor)
                    {
                        return Val::raw(spec.dim, Some(m.factor));
                    }
                }
                if let Some(&(_, _, result)) =
                    TYPED_CONVERSIONS.iter().find(|&&(_, m, _)| m == method)
                {
                    return Val::Typed(result);
                }
                Val::Unknown
            }
        }
    }

    /// Binary-operator transfer function; emits PL006 on additive and
    /// comparison operators whose operands provably disagree.
    fn binary(&mut self, op: BinOp, lv: Val, rv: Val, line: u32, col: u32) -> Val {
        use BinOp::{
            Add, AddAssign, Div, DivAssign, Mul, MulAssign, Rem, RemAssign, Sub, SubAssign,
        };
        match op {
            Mul | MulAssign => self.mul(lv, rv),
            Div | DivAssign | Rem | RemAssign => self.div(lv, rv),
            Add | Sub | AddAssign | SubAssign => {
                self.check_same_unit(op, lv, rv, line, col);
                // The sum keeps whatever the more specific side knows.
                match (lv, rv) {
                    (Val::Unknown, v) | (v, Val::Unknown) => v,
                    (Val::Number(_), v) | (v, Val::Number(_)) => v,
                    (l, _) => l,
                }
            }
            _ if op.is_comparison() => {
                self.check_same_unit(op, lv, rv, line, col);
                Val::Unknown
            }
            BinOp::Assign => Val::Unknown,
            _ => Val::Unknown,
        }
    }

    fn mul(&mut self, lv: Val, rv: Val) -> Val {
        match (lv, rv) {
            // Wall-clock taint survives scaling by numbers and raws; a
            // typed quantity in the product widens (conservative).
            (Val::Wall, Val::Typed(_)) | (Val::Typed(_), Val::Wall) => Val::Unknown,
            (Val::Wall, _) | (_, Val::Wall) => Val::Wall,
            (Val::Number(a), Val::Number(b)) => Val::Number(a.zip(b).map(|(a, b)| a * b)),
            (Val::Raw { dim, scale }, Val::Number(k))
            | (Val::Number(k), Val::Raw { dim, scale }) => {
                // r2 = r·k ⇒ canonical = r2 · (s/k).
                Val::raw(dim, scale.zip(k).map(|(s, k)| s / k))
            }
            (Val::Raw { dim: d1, scale: s1 }, Val::Raw { dim: d2, scale: s2 }) => {
                Val::raw(d1.mul(d2), s1.zip(s2).map(|(a, b)| a * b))
            }
            (Val::Typed(a), Val::Typed(b)) => product_type(a, b).map_or(Val::Unknown, Val::Typed),
            (Val::Typed(t), Val::Number(_)) | (Val::Number(_), Val::Typed(t)) => Val::Typed(t),
            (Val::Typed(t), Val::Raw { dim, .. }) | (Val::Raw { dim, .. }, Val::Typed(t)) => {
                // Quantity · dimensioned raw: the raw side acts as f64 in
                // the type system but carries dimension for us; widen.
                let _ = (t, dim);
                Val::Unknown
            }
            _ => Val::Unknown,
        }
    }

    fn div(&mut self, lv: Val, rv: Val) -> Val {
        match (lv, rv) {
            (Val::Wall, Val::Typed(_)) | (Val::Typed(_), Val::Wall) => Val::Unknown,
            (Val::Wall, _) | (_, Val::Wall) => Val::Wall,
            (Val::Number(a), Val::Number(b)) => Val::Number(a.zip(b).map(|(a, b)| a / b)),
            (Val::Raw { dim, scale }, Val::Number(k)) => {
                // r2 = r/k ⇒ canonical = r2 · (s·k).
                Val::raw(dim, scale.zip(k).map(|(s, k)| s * k))
            }
            (Val::Number(_), Val::Raw { dim, scale }) => {
                // k/r inverts the dimension; canonical' = r2 · (1/s).
                Val::raw(DimVec::NONE.div(dim), scale.map(|s| 1.0 / s))
            }
            (Val::Raw { dim: d1, scale: s1 }, Val::Raw { dim: d2, scale: s2 }) => {
                Val::raw(d1.div(d2), s1.zip(s2).map(|(a, b)| a / b))
            }
            (Val::Typed(a), Val::Typed(b)) if a == b => Val::Number(None),
            (Val::Typed(a), Val::Typed(b)) => quotient_type(a, b).map_or(Val::Unknown, Val::Typed),
            (Val::Typed(t), Val::Number(_)) => Val::Typed(t),
            _ => Val::Unknown,
        }
    }

    /// PL006: additive/comparison operands must agree in dimension, and —
    /// when both scales are exactly tracked — in scale.
    fn check_same_unit(&mut self, op: BinOp, lv: Val, rv: Val, line: u32, col: u32) {
        let (Some(ld), Some(rd)) = (lv.dim(), rv.dim()) else {
            return;
        };
        // A bare literal against a dimensioned value (`x_mm2 > 0.0`) is
        // conventional; only flag when *both* sides carry a dimension.
        if ld.is_none() || rd.is_none() {
            return;
        }
        if ld != rd {
            self.finding(
                FindingKind::DimensionMismatch,
                line,
                col,
                format!(
                    "`{}` mixes {} with {}",
                    op.symbol(),
                    dim_name(ld),
                    dim_name(rd)
                ),
            );
            return;
        }
        if let (Val::Raw { scale: Some(a), .. }, Val::Raw { scale: Some(b), .. }) = (lv, rv) {
            if !close(a, b) {
                // Same gate as PL007: both scales must be *named* units
                // before a mismatch is evidence of mixed spellings rather
                // than deliberate engineering factors.
                if let (Some(ua), Some(ub)) = (known_factor(ld, a), known_factor(ld, b)) {
                    self.finding(
                        FindingKind::DimensionMismatch,
                        line,
                        col,
                        format!(
                            "`{}` mixes {} values at different scales ({ua} vs {ub})",
                            op.symbol(),
                            dim_name(ld),
                        ),
                    );
                }
            }
        }
    }
}

/// `A · B = C` lookup over the registry's product table, commuted.
fn product_type(a: &str, b: &str) -> Option<&'static str> {
    ppatc_units::registry::PRODUCTS
        .iter()
        .find(|&&(x, y, _)| (x == a && y == b) || (x == b && y == a))
        .map(|&(_, _, c)| c)
}

/// `A / B = C` lookup over the registry's quotient table.
fn quotient_type(a: &str, b: &str) -> Option<&'static str> {
    ppatc_units::registry::QUOTIENTS
        .iter()
        .find(|&&(x, y, _)| x == a && y == b)
        .map(|&(_, _, c)| c)
}
