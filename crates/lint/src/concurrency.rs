//! Concurrency-safety rules over worker closures and unwind boundaries.
//!
//! The workspace's parallel layers (`std::thread::scope` pools,
//! [`ppatc::eval`]'s `par_map_indexed` family) promise byte-identical
//! results for any worker count; that promise dies the moment a worker
//! closure reaches non-atomic shared mutable state. Two rules enforce it:
//!
//! * **PL016 `shared-state-escape`** (deny) — a worker closure (an
//!   argument of `.spawn(..)`, `thread::spawn`, or the
//!   `par_map_indexed`/`try_par_map_indexed`/`try_par_map_journaled`
//!   entry points) touches a `static mut`, either directly or through
//!   any chain of calls resolved by the workspace symbol table — the
//!   cross-crate call graph built for PL009 is reused, so a helper in
//!   another crate that mutates its own `static mut` taints every worker
//!   that calls it.
//! * **PL017 `unwind-boundary`** (warn) — a closure passed directly to
//!   `catch_unwind` mutates state captured from the enclosing scope
//!   without an `AssertUnwindSafe` acknowledgment. A panic in the middle
//!   of such a mutation leaves the captured value half-updated while the
//!   program continues; wrapping in `AssertUnwindSafe` is the explicit,
//!   reviewable claim that the state is poison-tolerant.
//!
//! Facts are collected per fn during the per-file stage (and cached with
//! the other summaries); the PL016 verdict is recomputed at assembly
//! time from those facts, because it depends on other files' bodies.

use crate::ast::{BinOp, Block, Expr, Stmt, UnOp};
use crate::callgraph::{CallRef, FnSummary};
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// A PL016/PL017 finding, before it is bound to a `Rule`.
#[derive(Clone, Debug)]
pub struct ConcFinding {
    /// Which rule the finding belongs to.
    pub kind: ConcKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description.
    pub message: String,
}

/// The concurrency rules.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConcKind {
    /// PL016: shared mutable state reachable from a worker closure.
    SharedStateEscape,
    /// PL017: a `catch_unwind` closure mutating captured state.
    UnwindBoundary,
}

/// One touch of a `static mut`, as recorded in a fn's facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharedSite {
    /// The `static mut`'s name.
    pub name: String,
    /// 1-based line of the touch.
    pub line: u32,
    /// 1-based column of the touch.
    pub col: u32,
}

/// One call made from inside a worker closure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerCall {
    /// The callee, as written.
    pub call: CallRef,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
}

/// The concurrency-relevant facts of one fn body, carried on
/// [`FnSummary`] and serialized with the incremental cache.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ConcFacts {
    /// `static mut` touches anywhere in the body (taint source for the
    /// cross-crate fixpoint).
    pub shared: Vec<SharedSite>,
    /// `static mut` touches lexically inside worker closures.
    pub worker_shared: Vec<SharedSite>,
    /// Calls made lexically inside worker closures.
    pub worker_calls: Vec<WorkerCall>,
}

/// Entry points whose closure arguments run on other threads.
const WORKER_ENTRY_FNS: &[&str] = &[
    "spawn",
    "par_map_indexed",
    "try_par_map_indexed",
    "try_par_map_journaled",
];

/// Method receivers mutated by these names count as state mutation for
/// PL017 (the conservative everyday set; reads stay silent).
const MUTATING_METHODS: &[&str] = &[
    "push",
    "push_str",
    "pop",
    "insert",
    "remove",
    "clear",
    "extend",
    "truncate",
    "sort",
    "sort_by",
    "sort_unstable",
    "take",
    "replace",
    "get_or_insert",
    "get_or_insert_with",
    "set",
    "swap",
];

/// The names declared `static mut` in `file` (token-level scan: bodies
/// only see uses, the declarations are items).
pub(crate) fn static_mut_names(file: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for w in file.code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if a.kind == TokenKind::Ident
            && a.text == "static"
            && b.text == "mut"
            && c.kind == TokenKind::Ident
        {
            out.push(c.text.clone());
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Collects one fn body's [`ConcFacts`]. `statics` is the file's
/// `static mut` name set from [`static_mut_names`].
pub(crate) fn collect_facts(statics: &[String], block: &Block) -> ConcFacts {
    let mut cx = FactWalker {
        statics,
        worker_depth: 0,
        facts: ConcFacts::default(),
    };
    cx.walk_block(block);
    cx.facts
        .worker_calls
        .sort_by(|a, b| (a.line, a.col, &a.call.segs).cmp(&(b.line, b.col, &b.call.segs)));
    cx.facts.worker_calls.dedup();
    cx.facts
}

struct FactWalker<'a> {
    statics: &'a [String],
    /// Lexical depth of worker closures around the current node.
    worker_depth: usize,
    facts: ConcFacts,
}

impl FactWalker<'_> {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        self.walk(e);
                    }
                }
                Stmt::Expr { expr, .. } => self.walk(expr),
                Stmt::Item { .. } => {}
            }
        }
    }

    fn touch(&mut self, segs: &[String], line: u32, col: u32) {
        let Some(last) = segs.last() else {
            return;
        };
        if !self.statics.iter().any(|s| s == last) {
            return;
        }
        let site = SharedSite {
            name: last.clone(),
            line,
            col,
        };
        if self.worker_depth > 0 && !self.facts.worker_shared.contains(&site) {
            self.facts.worker_shared.push(site.clone());
        }
        if !self.facts.shared.contains(&site) {
            self.facts.shared.push(site);
        }
    }

    fn record_call(&mut self, call: CallRef, line: u32, col: u32) {
        if self.worker_depth > 0 {
            self.facts.worker_calls.push(WorkerCall { call, line, col });
        }
    }

    /// Walks a call's arguments, treating closure arguments as worker
    /// bodies when the callee is a worker entry point.
    fn walk_args(&mut self, is_worker_entry: bool, args: &[Expr]) {
        for a in args {
            let enters = is_worker_entry && matches!(a, Expr::Closure { .. });
            if enters {
                self.worker_depth += 1;
            }
            self.walk(a);
            if enters {
                self.worker_depth -= 1;
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn walk(&mut self, expr: &Expr) {
        match expr {
            Expr::Path { segs, span } => self.touch(segs, span.line, span.col),
            Expr::Call { callee, args, span } => {
                let mut entry = false;
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if let Some(last) = segs.last() {
                        entry = WORKER_ENTRY_FNS.contains(&last.as_str());
                        self.record_call(
                            CallRef {
                                segs: segs.clone(),
                                is_method: false,
                            },
                            span.line,
                            span.col,
                        );
                        self.touch(segs, span.line, span.col);
                    }
                } else {
                    self.walk(callee);
                }
                self.walk_args(entry, args);
            }
            Expr::MethodCall {
                recv,
                method,
                args,
                span,
            } => {
                self.walk(recv);
                let entry = WORKER_ENTRY_FNS.contains(&method.as_str());
                self.record_call(
                    CallRef {
                        segs: vec![method.clone()],
                        is_method: true,
                    },
                    span.line,
                    span.col,
                );
                self.walk_args(entry, args);
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.walk(expr);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk(lhs);
                self.walk(rhs);
            }
            Expr::Field { recv, .. } => self.walk(recv),
            Expr::Index { recv, index, .. } => {
                self.walk(recv);
                self.walk(index);
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    self.walk(e);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.walk(cond);
                self.walk_block(then);
                if let Some(e) = els {
                    self.walk(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk(scrutinee);
                for a in arms {
                    self.walk(a);
                }
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.walk(h);
                }
                self.walk_block(body);
            }
            Expr::Closure { body, .. } => self.walk(body),
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.walk(e);
                }
                if let Some(b) = base {
                    self.walk(b);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk(e);
                }
                if let Some(e) = hi {
                    self.walk(e);
                }
            }
            Expr::Jump { expr, .. } => {
                if let Some(e) = expr {
                    self.walk(e);
                }
            }
            Expr::Lit { .. } | Expr::Macro { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// The assembly-time PL016 pass: taints every fn that touches a
/// `static mut` (directly or through resolved calls, `# Panics` docs
/// notwithstanding — documentation does not make shared state atomic) and
/// reports every worker closure that reaches a tainted fn, plus direct
/// in-closure touches. `edges[i]` lists the summary indices fn `i`
/// calls, exactly as for PL009.
pub(crate) fn check(
    summaries: &[FnSummary],
    table: &SymbolTable<'_>,
    edges: &[Vec<usize>],
) -> Vec<(usize, ConcFinding)> {
    let mut tainted: Vec<bool> = summaries
        .iter()
        .map(|s| !s.conc.shared.is_empty())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..summaries.len() {
            if !tainted[i] && edges[i].iter().any(|&j| tainted[j]) {
                tainted[i] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (i, s) in summaries.iter().enumerate() {
        for site in &s.conc.worker_shared {
            out.push((
                i,
                ConcFinding {
                    kind: ConcKind::SharedStateEscape,
                    line: site.line,
                    col: site.col,
                    message: format!(
                        "worker closure touches `static mut {}`; non-atomic shared \
                         state breaks the byte-identical-replay invariant — use an \
                         atomic, a Mutex, or per-worker accumulation",
                        site.name,
                    ),
                },
            ));
        }
        for wc in &s.conc.worker_calls {
            let Some(j) = table.resolve(i, &wc.call) else {
                continue;
            };
            if !tainted[j] {
                continue;
            }
            let (holder, site) = nearest_shared(j, summaries, edges, &tainted);
            out.push((
                i,
                ConcFinding {
                    kind: ConcKind::SharedStateEscape,
                    line: wc.line,
                    col: wc.col,
                    message: format!(
                        "worker closure calls `{}`, which reaches `static mut {}` \
                         ({}:{}); non-atomic shared state breaks the \
                         byte-identical-replay invariant",
                        summaries[j].name, site.name, summaries[holder].path, site.line,
                    ),
                },
            ));
        }
    }
    out
}

/// BFS from a tainted fn to the nearest fn with a direct `static mut`
/// touch; returns `(holder fn index, site)`.
fn nearest_shared<'s>(
    start: usize,
    summaries: &'s [FnSummary],
    edges: &[Vec<usize>],
    tainted: &[bool],
) -> (usize, &'s SharedSite) {
    let mut visited = vec![false; summaries.len()];
    let mut queue = std::collections::VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(i) = queue.pop_front() {
        if let Some(site) = summaries[i].conc.shared.first() {
            return (i, site);
        }
        for &j in &edges[i] {
            if !visited[j] && tainted[j] {
                visited[j] = true;
                queue.push_back(j);
            }
        }
    }
    // Unreachable in practice: `start` is tainted, so some reachable fn
    // has a direct site; fall back to the start fn's (empty-message-safe)
    // first site or a synthetic one.
    (
        start,
        summaries[start]
            .conc
            .shared
            .first()
            .unwrap_or(&FALLBACK_SITE),
    )
}

static FALLBACK_SITE: SharedSite = SharedSite {
    name: String::new(),
    line: 0,
    col: 0,
};

/// The per-file PL017 pass: closures passed *directly* to `catch_unwind`
/// that mutate captured variables. `bodies` holds each analyzable fn's
/// parsed body, as in [`crate::determinism::check_file`].
pub fn check_file(bodies: &[(usize, Block)]) -> Vec<ConcFinding> {
    let mut out = Vec::new();
    for (_, block) in bodies {
        let mut cx = UnwindWalker { out: &mut out };
        cx.walk_block(block);
    }
    out
}

struct UnwindWalker<'a> {
    out: &'a mut Vec<ConcFinding>,
}

impl UnwindWalker<'_> {
    fn walk_block(&mut self, block: &Block) {
        for stmt in &block.stmts {
            match stmt {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        self.walk(e);
                    }
                }
                Stmt::Expr { expr, .. } => self.walk(expr),
                Stmt::Item { .. } => {}
            }
        }
    }

    fn walk(&mut self, expr: &Expr) {
        if let Expr::Call { callee, args, span } = expr {
            if let Expr::Path { segs, .. } = callee.as_ref() {
                if segs.last().is_some_and(|s| s == "catch_unwind") {
                    if let Some(Expr::Closure { params, body, .. }) = args.first() {
                        let mut locals: Vec<String> = params.clone();
                        let mut muts = Vec::new();
                        captured_mutations(body, &mut locals, &mut muts);
                        if let Some(name) = muts.first() {
                            self.out.push(ConcFinding {
                                kind: ConcKind::UnwindBoundary,
                                line: span.line,
                                col: span.col,
                                message: format!(
                                    "catch_unwind closure mutates captured `{name}` \
                                     without AssertUnwindSafe; a panic mid-update \
                                     leaves it half-written — wrap the closure in \
                                     AssertUnwindSafe and reconcile the state on Err",
                                ),
                            });
                        }
                    }
                }
            }
        }
        // Keep descending: nested bodies may hold further boundaries.
        match expr {
            Expr::Call { callee, args, .. } => {
                self.walk(callee);
                for a in args {
                    self.walk(a);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                self.walk(recv);
                for a in args {
                    self.walk(a);
                }
            }
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
                self.walk(expr);
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.walk(lhs);
                self.walk(rhs);
            }
            Expr::Field { recv, .. } => self.walk(recv),
            Expr::Index { recv, index, .. } => {
                self.walk(recv);
                self.walk(index);
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    self.walk(e);
                }
            }
            Expr::Block { block, .. } => self.walk_block(block),
            Expr::If {
                cond, then, els, ..
            } => {
                self.walk(cond);
                self.walk_block(then);
                if let Some(e) = els {
                    self.walk(e);
                }
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.walk(scrutinee);
                for a in arms {
                    self.walk(a);
                }
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.walk(h);
                }
                self.walk_block(body);
            }
            Expr::Closure { body, .. } => self.walk(body),
            Expr::Struct { fields, base, .. } => {
                for (_, e) in fields {
                    self.walk(e);
                }
                if let Some(b) = base {
                    self.walk(b);
                }
            }
            Expr::Range { lo, hi, .. } => {
                if let Some(e) = lo {
                    self.walk(e);
                }
                if let Some(e) = hi {
                    self.walk(e);
                }
            }
            Expr::Jump { expr, .. } => {
                if let Some(e) = expr {
                    self.walk(e);
                }
            }
            Expr::Lit { .. } | Expr::Path { .. } | Expr::Macro { .. } | Expr::Unknown { .. } => {}
        }
    }
}

/// Scans a `catch_unwind` closure body for mutations of variables that
/// were *not* declared inside it (i.e. captured from the enclosing
/// scope): assignments whose target roots at a captured name, and
/// mutating method calls on one. Appends offending names to `muts`.
fn captured_mutations(expr: &Expr, locals: &mut Vec<String>, muts: &mut Vec<String>) {
    match expr {
        Expr::Binary { op, lhs, rhs, .. } => {
            let assigns = matches!(
                op,
                BinOp::Assign
                    | BinOp::AddAssign
                    | BinOp::SubAssign
                    | BinOp::MulAssign
                    | BinOp::DivAssign
                    | BinOp::RemAssign
                    | BinOp::BitAndAssign
                    | BinOp::BitOrAssign
                    | BinOp::BitXorAssign
                    | BinOp::ShlAssign
                    | BinOp::ShrAssign
            );
            if assigns {
                if let Some(name) = root_var(lhs) {
                    if !locals.contains(&name) && !muts.contains(&name) {
                        muts.push(name);
                    }
                }
            }
            captured_mutations(lhs, locals, muts);
            captured_mutations(rhs, locals, muts);
        }
        Expr::MethodCall {
            recv, method, args, ..
        } => {
            if MUTATING_METHODS.contains(&method.as_str()) {
                if let Some(name) = root_var(recv) {
                    if !locals.contains(&name) && !muts.contains(&name) {
                        muts.push(name);
                    }
                }
            }
            captured_mutations(recv, locals, muts);
            for a in args {
                captured_mutations(a, locals, muts);
            }
        }
        Expr::Block { block, .. } => {
            // Track block-local `let`s so they do not count as captures.
            let depth = locals.len();
            for stmt in &block.stmts {
                match stmt {
                    Stmt::Let { names, init, .. } => {
                        if let Some(e) = init {
                            captured_mutations(e, locals, muts);
                        }
                        locals.extend(names.iter().cloned());
                    }
                    Stmt::Expr { expr, .. } => captured_mutations(expr, locals, muts),
                    Stmt::Item { .. } => {}
                }
            }
            locals.truncate(depth);
        }
        Expr::Closure { params, body, .. } => {
            let depth = locals.len();
            locals.extend(params.iter().cloned());
            captured_mutations(body, locals, muts);
            locals.truncate(depth);
        }
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } | Expr::Try { expr, .. } => {
            captured_mutations(expr, locals, muts);
        }
        Expr::Call { callee, args, .. } => {
            captured_mutations(callee, locals, muts);
            for a in args {
                captured_mutations(a, locals, muts);
            }
        }
        Expr::Field { recv, .. } => captured_mutations(recv, locals, muts),
        Expr::Index { recv, index, .. } => {
            captured_mutations(recv, locals, muts);
            captured_mutations(index, locals, muts);
        }
        Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
            for e in items {
                captured_mutations(e, locals, muts);
            }
        }
        Expr::If {
            cond, then, els, ..
        } => {
            captured_mutations(cond, locals, muts);
            let depth = locals.len();
            for stmt in &then.stmts {
                match stmt {
                    Stmt::Let { names, init, .. } => {
                        if let Some(e) = init {
                            captured_mutations(e, locals, muts);
                        }
                        locals.extend(names.iter().cloned());
                    }
                    Stmt::Expr { expr, .. } => captured_mutations(expr, locals, muts),
                    Stmt::Item { .. } => {}
                }
            }
            locals.truncate(depth);
            if let Some(e) = els {
                captured_mutations(e, locals, muts);
            }
        }
        Expr::Match {
            scrutinee, arms, ..
        } => {
            captured_mutations(scrutinee, locals, muts);
            for a in arms {
                captured_mutations(a, locals, muts);
            }
        }
        Expr::Loop { head, body, .. } => {
            if let Some(h) = head {
                captured_mutations(h, locals, muts);
            }
            let depth = locals.len();
            for stmt in &body.stmts {
                match stmt {
                    Stmt::Let { names, init, .. } => {
                        if let Some(e) = init {
                            captured_mutations(e, locals, muts);
                        }
                        locals.extend(names.iter().cloned());
                    }
                    Stmt::Expr { expr, .. } => captured_mutations(expr, locals, muts),
                    Stmt::Item { .. } => {}
                }
            }
            locals.truncate(depth);
        }
        Expr::Struct { fields, base, .. } => {
            for (_, e) in fields {
                captured_mutations(e, locals, muts);
            }
            if let Some(b) = base {
                captured_mutations(b, locals, muts);
            }
        }
        Expr::Range { lo, hi, .. } => {
            if let Some(e) = lo {
                captured_mutations(e, locals, muts);
            }
            if let Some(e) = hi {
                captured_mutations(e, locals, muts);
            }
        }
        Expr::Jump { expr, .. } => {
            if let Some(e) = expr {
                captured_mutations(e, locals, muts);
            }
        }
        Expr::Lit { .. } | Expr::Path { .. } | Expr::Macro { .. } | Expr::Unknown { .. } => {}
    }
}

/// The variable an assignment target or method receiver roots at:
/// `x`, `*x`, `x.field`, `x[i]` all root at `x`.
fn root_var(e: &Expr) -> Option<String> {
    match e {
        Expr::Path { segs, .. } if segs.len() == 1 => Some(segs[0].clone()),
        Expr::Unary {
            op: UnOp::Deref | UnOp::Ref,
            expr,
            ..
        } => root_var(expr),
        Expr::Field { recv, .. } | Expr::Index { recv, .. } => root_var(recv),
        Expr::Tuple { items, group, .. } if *group && items.len() == 1 => root_var(&items[0]),
        _ => None,
    }
}
