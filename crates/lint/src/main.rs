//! CLI for `ppatc-lint`.
//!
//! ```text
//! cargo run -p ppatc-lint                      # lint the workspace
//! cargo run -p ppatc-lint -- --deny-warnings   # CI gate: warnings fail too
//! cargo run -p ppatc-lint -- --json            # machine-readable output
//! cargo run -p ppatc-lint -- --jobs 4          # explicit worker count
//! cargo run -p ppatc-lint -- --no-cache        # skip the incremental cache
//! cargo run -p ppatc-lint -- --list-rules      # print the rule catalog
//! cargo run -p ppatc-lint -- --explain PL006   # rationale for one rule
//! ```
//!
//! Exit codes: 0 clean, 1 findings failed the run, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    list_rules: bool,
    jobs: Option<usize>,
    explain: Option<String>,
    no_cache: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny_warnings: false,
        list_rules: false,
        jobs: None,
        explain: None,
        no_cache: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-rules" => opts.list_rules = true,
            "--no-cache" => opts.no_cache = true,
            "--root" => match it.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root requires a path".to_string()),
            },
            "--jobs" | "-j" => match it.next().map(|n| n.parse::<usize>()) {
                Some(Ok(n)) if n >= 1 => opts.jobs = Some(n),
                _ => return Err("--jobs requires a worker count >= 1".to_string()),
            },
            "--explain" => match it.next() {
                Some(code) => opts.explain = Some(code.clone()),
                None => return Err("--explain requires a rule code (e.g. PL006)".to_string()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: ppatc-lint [--root <dir>] [--json] [--deny-warnings] \
                            [--jobs <n>] [--no-cache] [--list-rules] [--explain <code>]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// `--explain`: rationale, an example finding, and the suppression syntax
/// for one rule, looked up by code (`PL006`) or name (`dimension-mismatch`).
fn explain(query: &str) -> Option<String> {
    let rule = ppatc_lint::rules::all()
        .into_iter()
        .find(|r| r.code.eq_ignore_ascii_case(query) || r.name == query)?;
    let (why, example) = match rule.code {
        "PL001" => (
            "Bare f64 parameters and returns on public APIs in unit-bearing crates \
             reintroduce the spreadsheet failure mode the ppatc-units newtypes exist \
             to prevent: a gCO₂e/kWh number silently meeting a pJ number.",
            "pub fn embodied(area: f64) -> f64  // what unit is `area`?",
        ),
        "PL002" => (
            "Library code must never panic on model inputs: the evaluation pipeline \
             promises per-sample fault isolation, and a stray unwrap converts a bad \
             sample into a dead sweep. Documented `# Panics` contracts are the only \
             sanctioned exception.",
            "let v = table.get(key).unwrap();  // in a lib fn without `# Panics`",
        ),
        "PL003" => (
            "try_* is this workspace's fallible-API naming convention; a try_ fn \
             that does not return Result (or whose Result can be silently dropped) \
             defeats the caller-side error handling the name advertises.",
            "pub fn try_solve(&self) -> f64  // not a Result, no #[must_use]",
        ),
        "PL004" => (
            "A physical constant with no unit comment is unreviewable: 3.6e6 could \
             be J/kWh or a typo. Underscored plain decimals (1_000_000.0) are the \
             same hazard at the same magnitude, so both spellings need a same-line \
             `// unit` comment or a move into a named const.",
            "let lifetime = 94_608_000.0;  // is that seconds? months? cycles?",
        ),
        "PL005" => (
            "Public error enums grow variants as the model stack grows; without \
             #[non_exhaustive], every new failure mode is a semver break for \
             downstream matchers.",
            "pub enum SolverError { Diverged }  // missing #[non_exhaustive]",
        ),
        "PL006" => (
            "The dimensional dataflow pass tracks units through fn bodies, seeded \
             from the ppatc-units registry (typed constructors/accessors) and \
             unit-suffixed names (area_mm2, delay_ns). Adding or comparing values \
             of different dimensions — or the same dimension at provably different \
             scales — is exactly the class of bug Eq. 2's carbon accounting cannot \
             tolerate.",
            "if chip_area_mm2 > wafer_area_m2 { .. }  // mm² compared against m²",
        ),
        "PL007" => (
            "Round-tripping a quantity through raw f64 at a different unit scale \
             (as_picojoules into from_joules) is a silent 1e12× error the type \
             system cannot see because both sides are f64 at the boundary. \
             Multiplying by an explicit literal rescale is tracked and stays clean.",
            "Energy::from_joules(e.as_picojoules())  // off by 1e12",
        ),
        "PL008" => (
            "A suppression that no longer suppresses anything is a stale claim \
             about the code; it hides future findings on its line window and \
             misleads reviewers about which invariants are waived. Directives in \
             doc comments are prose, never suppressions.",
            "// ppatc-lint: allow(magic-constant) — above a line that is now clean",
        ),
        "PL009" => (
            "A try_* fn advertises total, caller-handled failure; if its call \
             graph can still reach panic!/unwrap/expect with no `# Panics` \
             contract anywhere on the path, the Result is a false promise. The \
             pass resolves calls to workspace fns by unique name and reports a \
             witness path.",
            "pub fn try_fit(..) -> Result<..> { grid.nearest(x) } // nearest() unwraps",
        ),
        "PL010" => (
            "std's HashMap/HashSet iterate in a per-process randomized order. \
             Letting that order reach a Vec, String, accumulator, or output \
             stream bakes scheduler noise into results the workspace promises \
             are byte-identical across runs, worker counts, and cache hits. \
             Sort before the sink, or collect into a BTree container.",
            "for (k, v) in &totals { out.push_str(k); }  // totals is a HashMap",
        ),
        "PL011" => (
            "Model outputs must be a pure function of model inputs. An Instant \
             or SystemTime reading that flows into a ppatc-units quantity makes \
             a carbon or energy figure depend on when the run happened — \
             deadlines and telemetry are fine, but never inside a result. The \
             interprocedural dataflow tracks wall-clock taint through helper \
             fns and across crates.",
            "Energy::from_joules(t0.elapsed().as_secs_f64() * p)  // wall clock in a result",
        ),
        "PL012" => (
            "Float addition is not associative: accumulating partial sums in \
             thread or channel arrival order makes the low-order bits a \
             function of the scheduler. The blessed idiom is par_map_indexed — \
             reduce per-chunk, send (index, partial), merge in index order — \
             which this rule exempts by name.",
            "while let Ok(x) = rx.recv() { sum += x; }  // arrival-order reduction",
        ),
        "PL013" => (
            "The interval pass tracks per-variable [lo, hi] ranges, seeded from \
             literals, typed-unit accessors, and guard conditions, widened at \
             loop back-edges, and propagated across fn boundaries through \
             return-range summaries. A division whose divisor's interval \
             provably admits zero yields ±inf or NaN that then flows into \
             carbon totals unnoticed — guard with an ordered comparison \
             (`if d > 0.0`) and return a typed error on the other branch.",
            "let yield_frac = good as f64 / dies as f64;  // dies may be 0",
        ),
        "PL014" => (
            "sqrt, ln, log10, and non-integer powf return NaN for negative \
             arguments, and NaN propagates through every downstream sum \
             without a panic — the worst failure mode for a model that \
             promises reproducible totals. Clamp or guard the argument's \
             range first; the pass exempts arguments it can prove \
             non-negative (accessor results, squared values, abs).",
            "let sigma = variance.sqrt();  // variance's interval reaches below 0",
        ),
        "PL015" => (
            "`x == y` on floats is false for NaN even when both are NaN, and \
             partial_cmp().unwrap() panics on it; both are latent landmines \
             unless the operands are provably NaN-free. The interval pass \
             proves NaN-freeness through guards (is_nan, is_finite, ordered \
             comparisons) and accessor summaries; where it cannot, prefer \
             f64::total_cmp or guard explicitly.",
            "vals.sort_by(|a, b| a.partial_cmp(b).unwrap());  // NaN panics here",
        ),
        "PL016" => (
            "A `static mut` touched from a thread::scope or par_map_indexed \
             worker closure is a data race the borrow checker cannot see \
             across unsafe blocks — and the race reaches across crates when \
             the worker calls a helper that touches it transitively. The \
             pass follows the whole-workspace call graph from every worker \
             closure and reports a witness path to the shared state.",
            "scope.spawn(|| unsafe { HITS += 1 });  // HITS is a static mut",
        ),
        "PL017" => (
            "catch_unwind returning Err leaves everything the closure was \
             mutating in a half-written state; silently reusing that state \
             afterwards is how one poisoned sample corrupts a whole sweep. \
             Wrapping the closure in AssertUnwindSafe is the workspace's \
             explicit acknowledgment that the captured state is reset or \
             discarded on unwind.",
            "catch_unwind(|| { acc.push(run()?); })  // acc is half-written on panic",
        ),
        _ => ("", ""),
    };
    let mut out = String::new();
    out.push_str(&format!(
        "{} {} ({})\n\n{}\n\nWhy it matters:\n  {}\n\nExample finding:\n  {}\n\n\
         Suppression (own line or the line above the finding):\n  \
         // ppatc-lint: allow({}) — <justification naming the reviewed invariant>\n",
        rule.code, rule.name, rule.severity, rule.describes, why, example, rule.name
    ));
    Some(out)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ppatc-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if let Some(query) = &opts.explain {
        return match explain(query) {
            Some(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("ppatc-lint: no rule named `{query}`; see --list-rules");
                ExitCode::from(2)
            }
        };
    }

    if opts.list_rules {
        for rule in ppatc_lint::rules::all() {
            println!(
                "{} {:<24} {:<5} {}",
                rule.code, rule.name, rule.severity, rule.describes
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = opts
        .root
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            ppatc_lint::find_workspace_root(&cwd)
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let jobs = opts.jobs.unwrap_or_else(ppatc_lint::default_jobs);
    let started = Instant::now();
    let report = match ppatc_lint::lint_workspace_cached(&root, jobs, !opts.no_cache) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppatc-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let elapsed = started.elapsed();

    if opts.json {
        // No timing or cache-hit counters here: --json output is
        // byte-identical across worker counts, runs, and cache states.
        let body: Vec<String> = report.diagnostics.iter().map(|d| d.json()).collect();
        println!("{{\"schema\":3,\"findings\":[{}]}}", body.join(","));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.human());
        }
        println!(
            "ppatc-lint: {} files, {} diagnostics ({} deny, {} warn), {} suppressed",
            report.files,
            report.diagnostics.len(),
            report.deny_count(),
            report.warn_count(),
            report.suppressed
        );
        println!(
            "ppatc-lint: analyzed in {:.1} ms (jobs={jobs}, {} cached)",
            elapsed.as_secs_f64() * 1e3,
            report.cache_hits
        );
    }

    if report.failed(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
