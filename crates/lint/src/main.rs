//! CLI for `ppatc-lint`.
//!
//! ```text
//! cargo run -p ppatc-lint                      # lint the workspace
//! cargo run -p ppatc-lint -- --deny-warnings   # CI gate: warnings fail too
//! cargo run -p ppatc-lint -- --json            # machine-readable output
//! cargo run -p ppatc-lint -- --list-rules      # print the rule catalog
//! ```
//!
//! Exit codes: 0 clean, 1 findings failed the run, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    json: bool,
    deny_warnings: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        json: false,
        deny_warnings: false,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => match it.next() {
                Some(p) => opts.root = Some(PathBuf::from(p)),
                None => return Err("--root requires a path".to_string()),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: ppatc-lint [--root <dir>] [--json] [--deny-warnings] \
                            [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("ppatc-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in ppatc_lint::rules::all() {
            println!(
                "{} {:<22} {:<5} {}",
                rule.code, rule.name, rule.severity, rule.describes
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = opts
        .root
        .or_else(|| {
            let cwd = std::env::current_dir().ok()?;
            ppatc_lint::find_workspace_root(&cwd)
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let report = match ppatc_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ppatc-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        let body: Vec<String> = report.diagnostics.iter().map(|d| d.json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.human());
        }
        println!(
            "ppatc-lint: {} files, {} diagnostics ({} deny, {} warn), {} suppressed",
            report.files,
            report.diagnostics.len(),
            report.deny_count(),
            report.warn_count(),
            report.suppressed
        );
    }

    if report.failed(opts.deny_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
