//! A hand-rolled, dependency-free Rust lexer.
//!
//! The lexer produces a flat token stream that is faithful enough for
//! line-oriented static analysis: comments (line, doc, and *nested* block
//! comments) are kept as tokens so suppression directives and "same-line
//! comment" checks can see them, while string/char/raw-string literals are
//! consumed atomically so that source text such as `r#"call .unwrap()"#`
//! can never be mistaken for code.
//!
//! The lexer is intentionally lossless about position (1-based line and
//! column per token) and intentionally lossy about things the rules never
//! need (no keyword table, no operator joining — every punctuation byte is
//! its own token).

/// The coarse classification of a lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `pub`, `f64`, `try_new`, ...).
    Ident,
    /// Numeric literal, including float exponents (`1_000`, `3.6e6`, `0xFF`).
    Number,
    /// String literal: `"..."`, `b"..."`, `r"..."`, `r#"..."#`, ...
    Str,
    /// Character literal: `'x'`, `'\''`.
    Char,
    /// Lifetime: `'a` (disambiguated from char literals).
    Lifetime,
    /// Line comment, including doc comments (`//`, `///`, `//!`).
    LineComment,
    /// Block comment, including nested ones (`/* /* */ */`, `/** */`).
    BlockComment,
    /// A single punctuation byte (`{`, `-`, `>`, `#`, ...).
    Punct,
}

/// One lexed token with its source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Coarse kind.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

impl Token {
    fn new(kind: TokenKind, text: &str, line: u32, col: u32) -> Self {
        Self {
            kind,
            text: text.to_string(),
            line,
            col,
        }
    }
}

/// Lexes `src` into a token stream. Never panics: malformed input (an
/// unterminated string, a stray byte) degrades into best-effort tokens so
/// the linter can still report on the rest of the file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line/column.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit_from(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text = self.text.get(start..self.pos).unwrap_or("");
        self.out.push(Token::new(kind, text, line, col));
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit_from(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit_from(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.emit_from(TokenKind::Str, start, line, col);
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.string_literal();
                    self.emit_from(TokenKind::Str, start, line, col);
                }
                b'r' | b'b' if self.is_raw_string_start() => {
                    self.raw_string_literal();
                    self.emit_from(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    if self.is_lifetime_start() {
                        self.bump(); // '
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.emit_from(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.char_literal();
                        self.emit_from(TokenKind::Char, start, line, col);
                    }
                }
                c if is_ident_start(c) => {
                    // Raw identifiers (`r#match`) fold into plain idents.
                    if c == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
                        self.bump_n(2);
                    }
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit_from(TokenKind::Ident, start, line, col);
                }
                c if c.is_ascii_digit() => {
                    self.number_literal();
                    self.emit_from(TokenKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit_from(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// `r"`, `r#"`, `br"`, `br##"` ... ?
    fn is_raw_string_start(&self) -> bool {
        let mut i = 1;
        if self.peek(0) == b'b' {
            if self.peek(1) != b'r' {
                return false;
            }
            i = 2;
        }
        while self.peek(i) == b'#' {
            i += 1;
        }
        self.peek(i) == b'"'
    }

    /// `'a` / `'static` (but not `'a'` or `'\n'`).
    fn is_lifetime_start(&self) -> bool {
        is_ident_start(self.peek(1)) && self.peek(2) != b'\''
    }

    fn block_comment(&mut self) {
        self.bump_n(2); // /*
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"..."` literal starting at the opening quote.
    fn string_literal(&mut self) {
        self.bump(); // opening "
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes `r##"..."##` starting at the `r`/`b`.
    fn raw_string_literal(&mut self) {
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // r
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening "
        while self.pos < self.src.len() {
            if self.peek(0) == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    fn char_literal(&mut self) {
        self.bump(); // opening '
        match self.peek(0) {
            b'\\' => self.bump_n(2),
            0 => return,
            _ => self.bump(),
        }
        // Consume up to the closing quote (handles multi-byte chars).
        while self.pos < self.src.len() && self.peek(0) != b'\'' && self.peek(0) != b'\n' {
            self.bump();
        }
        if self.peek(0) == b'\'' {
            self.bump();
        }
    }

    fn number_literal(&mut self) {
        let hex = self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'X' | b'o' | b'b');
        self.bump();
        loop {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric() || c == b'_' {
                // `3.6e6`, `1e-9`: a sign directly after an exponent `e`/`E`
                // belongs to the literal (decimal floats only).
                if !hex
                    && (c == b'e' || c == b'E')
                    && matches!(self.peek(1), b'+' | b'-')
                    && self.peek(2).is_ascii_digit()
                {
                    self.bump_n(2);
                    continue;
                }
                self.bump();
            } else if c == b'.' && !hex && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
                // A float's decimal point — but neither a range (`0..n`) nor
                // a method call on a literal (`1.max(2)`).
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}
