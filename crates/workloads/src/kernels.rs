//! The kernel definitions: ARMv6-M assembly templates and Rust goldens.

use crate::Workload;

/// 20×20 integer matrix multiply (`matmult-int` analogue).
///
/// The default repetition count is calibrated so the full run lands near
/// Table II's 20,047,348 cycles.
pub fn matmul_int() -> Workload {
    Workload::new(
        "matmul-int",
        "20x20 int32 matrix multiplication",
        MATMUL_DEFAULT_REPS,
        matmul_source,
        matmul_golden,
    )
}

pub(crate) const MATMUL_DEFAULT_REPS: u32 = 186;
const N: usize = 20;

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn matmul_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "matmul reps must be 1-255");
    format!(
        "
        ; ---- init: A[idx] = (7*idx+1)&0xFF, B[idx] = (3*idx+2)&0xFF ----
            ldr  r0, =0x20000000      ; A
            ldr  r1, =0x20000640      ; B
            ldr  r2, =400
            movs r3, #0               ; idx
        init_loop:
            movs r4, #7
            muls r4, r4, r3
            adds r4, r4, #1
            movs r5, #255
            ands r4, r4, r5
            lsls r6, r3, #2
            str  r4, [r0, r6]
            movs r4, #3
            muls r4, r4, r3
            adds r4, r4, #2
            ands r4, r4, r5
            str  r4, [r1, r6]
            adds r3, r3, #1
            cmp  r3, r2
            blt  init_loop
        ; ---- repetition loop ----
            movs r7, #{reps}
        rep_loop:
            movs r5, #0               ; i
        i_loop:
            movs r6, #0               ; j
        j_loop:
            push {{r5, r6}}
            ldr  r0, =0x20000000
            movs r1, #80
            muls r1, r1, r5
            adds r1, r1, r0           ; &A[i][0]
            ldr  r2, =0x20000640
            lsls r3, r6, #2
            adds r2, r2, r3           ; &B[0][j]
            movs r0, #0               ; acc
            movs r4, #20              ; k
        k_loop:
            ldr  r5, [r1, #0]
            ldr  r6, [r2, #0]
            muls r5, r5, r6
            adds r0, r0, r5
            adds r1, r1, #4
            adds r2, r2, #80
            subs r4, r4, #1
            bne  k_loop
            pop  {{r5, r6}}
            ldr  r3, =0x20000C80      ; C
            movs r4, #80
            muls r4, r4, r5
            adds r3, r3, r4
            lsls r4, r6, #2
            adds r3, r3, r4
            str  r0, [r3, #0]
            adds r6, r6, #1
            cmp  r6, #20
            blt  j_loop
            adds r5, r5, #1
            cmp  r5, #20
            blt  i_loop
            subs r7, r7, #1
            bne  rep_loop
        ; ---- checksum: C[0] + C[399] ----
            ldr  r1, =0x20000C80
            ldr  r0, [r1, #0]
            ldr  r2, =1596
            ldr  r2, [r1, r2]
            adds r0, r0, r2
            bkpt #0
        "
    )
}

fn matmul_golden() -> u32 {
    let mut a = [0u32; N * N];
    let mut b = [0u32; N * N];
    for idx in 0..N * N {
        a[idx] = ((7 * idx + 1) & 0xFF) as u32;
        b[idx] = ((3 * idx + 2) & 0xFF) as u32;
    }
    let mut c = [0u32; N * N];
    for i in 0..N {
        for j in 0..N {
            let mut acc = 0u32;
            for k in 0..N {
                acc = acc.wrapping_add(a[i * N + k].wrapping_mul(b[k * N + j]));
            }
            c[i * N + j] = acc;
        }
    }
    c[0].wrapping_add(c[N * N - 1])
}

/// Bitwise CRC-32 (poly `0xEDB88320`) over a 256-byte buffer.
pub fn crc32() -> Workload {
    Workload::new(
        "crc32",
        "bitwise CRC-32 over 256 bytes",
        100,
        crc32_source,
        crc32_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn crc32_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "crc32 reps must be 1-255");
    format!(
        "
        ; ---- init: data[i] = (13*i + 7) & 0xFF ----
            ldr  r0, =0x20000000
            movs r1, #0
        init_loop:
            movs r2, #13
            muls r2, r2, r1
            adds r2, r2, #7
            strb r2, [r0, r1]
            adds r1, r1, #1
            cmp  r1, #255
            bls  init_loop
            movs r7, #{reps}
        rep_loop:
            movs r3, #0
            mvns r3, r3               ; crc = 0xFFFFFFFF
            movs r1, #0               ; i
        byte_loop:
            ldrb r2, [r0, r1]
            eors r3, r3, r2
            movs r4, #8
        bit_loop:
            movs r5, #1
            ands r5, r5, r3
            lsrs r3, r3, #1
            cmp  r5, #0
            beq  no_xor
            ldr  r6, =0xEDB88320
            eors r3, r3, r6
        no_xor:
            subs r4, r4, #1
            bne  bit_loop
            adds r1, r1, #1
            cmp  r1, #255
            bls  byte_loop
            subs r7, r7, #1
            bne  rep_loop
            mvns r0, r3               ; final xor
            bkpt #0
        "
    )
}

fn crc32_golden() -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for i in 0..256usize {
        let byte = ((13 * i + 7) & 0xFF) as u32;
        crc ^= byte;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xEDB8_8320;
            }
        }
    }
    !crc
}

/// 256-point integer dot product (`edn` DSP inner-loop analogue).
pub fn edn() -> Workload {
    Workload::new(
        "edn",
        "256-point int32 dot product",
        255,
        edn_source,
        edn_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn edn_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "edn reps must be 1-255");
    format!(
        "
        ; ---- init: x[i]=(5i+3)&0x7F, y[i]=(11i+1)&0x7F ----
            ldr  r0, =0x20000000      ; x
            ldr  r1, =0x20000400      ; y
            movs r3, #0
        init_loop:
            movs r4, #5
            muls r4, r4, r3
            adds r4, r4, #3
            movs r5, #127
            ands r4, r4, r5
            lsls r6, r3, #2
            str  r4, [r0, r6]
            movs r4, #11
            muls r4, r4, r3
            adds r4, r4, #1
            ands r4, r4, r5
            str  r4, [r1, r6]
            adds r3, r3, #1
            cmp  r3, #255
            bls  init_loop
            movs r7, #{reps}
        rep_loop:
            ldr  r1, =0x20000000
            ldr  r2, =0x20000400
            movs r0, #0               ; acc
            ldr  r4, =256
        mac_loop:
            ldr  r5, [r1, #0]
            ldr  r6, [r2, #0]
            muls r5, r5, r6
            adds r0, r0, r5
            adds r1, r1, #4
            adds r2, r2, #4
            subs r4, r4, #1
            bne  mac_loop
            subs r7, r7, #1
            bne  rep_loop
            bkpt #0
        "
    )
}

fn edn_golden() -> u32 {
    let mut acc = 0u32;
    for i in 0..256usize {
        let x = ((5 * i + 3) & 0x7F) as u32;
        let y = ((11 * i + 1) & 0x7F) as u32;
        acc = acc.wrapping_add(x.wrapping_mul(y));
    }
    acc
}

/// In-place bubble sort of 128 words — branchy, swap-heavy memory traffic.
pub fn bubblesort() -> Workload {
    Workload::new(
        "bubblesort",
        "bubble sort of 128 int32 values",
        12,
        bubblesort_source,
        bubblesort_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn bubblesort_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "bubblesort reps must be 1-255");
    format!(
        "
            movs r7, #{reps}
        rep_loop:
        ; ---- init: arr[i] = (37*i + 11) & 0xFF ----
            ldr  r0, =0x20000000
            movs r1, #0
        init_loop:
            movs r2, #37
            muls r2, r2, r1
            adds r2, r2, #11
            movs r3, #255
            ands r2, r2, r3
            lsls r3, r1, #2
            str  r2, [r0, r3]
            adds r1, r1, #1
            cmp  r1, #128
            blt  init_loop
        ; ---- bubble sort ascending ----
            movs r6, #127             ; outer: n-1 passes
        outer_loop:
            movs r1, #0               ; index
        inner_loop:
            lsls r3, r1, #2
            ldr  r2, [r0, r3]         ; arr[i]
            adds r3, r3, #4
            ldr  r4, [r0, r3]         ; arr[i+1]
            cmp  r2, r4
            bls  no_swap
            str  r2, [r0, r3]
            subs r3, r3, #4
            str  r4, [r0, r3]
        no_swap:
            adds r1, r1, #1
            cmp  r1, r6
            blt  inner_loop
            subs r6, r6, #1
            bne  outer_loop
            subs r7, r7, #1
            bne  rep_loop
        ; ---- checksum: arr[0] + 2*arr[64] + 3*arr[127] ----
            ldr  r0, =0x20000000
            ldr  r1, [r0, #0]
            ldr  r2, =256
            ldr  r2, [r0, r2]
            lsls r2, r2, #1
            adds r1, r1, r2
            ldr  r2, =508
            ldr  r2, [r0, r2]
            movs r3, #3
            muls r2, r2, r3
            adds r0, r1, r2
            bkpt #0
        "
    )
}

fn bubblesort_golden() -> u32 {
    let mut arr: Vec<u32> = (0..128usize)
        .map(|i| ((37 * i + 11) & 0xFF) as u32)
        .collect();
    arr.sort_unstable();
    arr[0]
        .wrapping_add(arr[64].wrapping_mul(2))
        .wrapping_add(arr[127].wrapping_mul(3))
}

/// Sieve of Eratosthenes up to 8192 — byte-granular memory sweep.
pub fn sieve() -> Workload {
    Workload::new(
        "sieve",
        "sieve of Eratosthenes below 8192",
        10,
        sieve_source,
        sieve_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn sieve_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "sieve reps must be 1-255");
    format!(
        "
            movs r7, #{reps}
        rep_loop:
        ; ---- clear flags[0..8192) ----
            ldr  r0, =0x20000000
            ldr  r1, =8192
            movs r2, #0
            movs r3, #0
        clear_loop:
            strb r2, [r0, r3]
            adds r3, r3, #1
            cmp  r3, r1
            blt  clear_loop
        ; ---- sieve ----
            movs r4, #0               ; prime count
            movs r3, #2               ; p
        p_loop:
            ldrb r2, [r0, r3]
            cmp  r2, #0
            bne  not_prime
            adds r4, r4, #1
            movs r2, r3
            muls r2, r2, r3           ; m = p*p
            cmp  r2, r1
            bge  not_prime
            movs r5, #1
        mark_loop:
            strb r5, [r0, r2]
            adds r2, r2, r3
            cmp  r2, r1
            blt  mark_loop
        not_prime:
            adds r3, r3, #1
            cmp  r3, r1
            blt  p_loop
            subs r7, r7, #1
            bne  rep_loop
            movs r0, r4               ; checksum = prime count
            bkpt #0
        "
    )
}

fn sieve_golden() -> u32 {
    let n = 8192usize;
    let mut composite = vec![false; n];
    let mut count = 0u32;
    for p in 2..n {
        if !composite[p] {
            count += 1;
            let mut m = p * p;
            while m < n {
                composite[m] = true;
                m += p;
            }
        }
    }
    count
}

/// 8-tap FIR filter over 256 samples (the `edn` vec_mpy pattern).
pub fn fir() -> Workload {
    Workload::new(
        "fir",
        "8-tap int32 FIR filter over 256 samples",
        100,
        fir_source,
        fir_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn fir_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "fir reps must be 1-255");
    format!(
        "
        ; ---- init: x[i]=(9i+5)&0xFF, c[k]=k+1 ----
            ldr  r0, =0x20000000      ; x
            movs r1, #0
        init_x:
            movs r2, #9
            muls r2, r2, r1
            adds r2, r2, #5
            movs r3, #255
            ands r2, r2, r3
            lsls r3, r1, #2
            str  r2, [r0, r3]
            adds r1, r1, #1
            cmp  r1, #255
            bls  init_x
            ldr  r0, =0x20000600      ; c
            movs r1, #0
        init_c:
            adds r2, r1, #1
            lsls r3, r1, #2
            str  r2, [r0, r3]
            adds r1, r1, #1
            cmp  r1, #8
            blt  init_c
            movs r7, #{reps}
        rep_loop:
            movs r6, #7               ; i
        i_loop:
        ; acc = sum over k of c[k]*x[i-k]
            push {{r6, r7}}
            ldr  r1, =0x20000000
            lsls r2, r6, #2
            adds r1, r1, r2           ; &x[i]
            ldr  r2, =0x20000600      ; &c[0]
            movs r0, #0
            movs r4, #8
        tap_loop:
            ldr  r5, [r1, #0]
            ldr  r6, [r2, #0]
            muls r5, r5, r6
            adds r0, r0, r5
            subs r1, r1, #4
            adds r2, r2, #4
            subs r4, r4, #1
            bne  tap_loop
            pop  {{r6, r7}}
            ldr  r3, =0x20000800      ; y
            lsls r4, r6, #2
            adds r3, r3, r4
            str  r0, [r3, #0]
            adds r6, r6, #1
            cmp  r6, #255
            bls  i_loop
            subs r7, r7, #1
            bne  rep_loop
        ; ---- checksum: y[7] + y[255] ----
            ldr  r1, =0x20000800
            ldr  r0, [r1, #28]
            ldr  r2, =1020
            ldr  r2, [r1, r2]
            adds r0, r0, r2
            bkpt #0
        "
    )
}

fn fir_golden() -> u32 {
    let x: Vec<u32> = (0..256usize).map(|i| ((9 * i + 5) & 0xFF) as u32).collect();
    let c: Vec<u32> = (0..8u32).map(|k| k + 1).collect();
    let mut y = vec![0u32; 256];
    for (i, out) in y.iter_mut().enumerate().skip(7) {
        let mut acc = 0u32;
        for (k, &coeff) in c.iter().enumerate() {
            acc = acc.wrapping_add(coeff.wrapping_mul(x[i - k]));
        }
        *out = acc;
    }
    y[7].wrapping_add(y[255])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(w: Workload) -> crate::WorkloadRun {
        w.execute_with_reps(1)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()))
    }

    #[test]
    fn matmul_checksum_matches_golden() {
        let run = check(matmul_int());
        assert_eq!(run.checksum, matmul_golden());
    }

    #[test]
    fn matmul_cycles_per_rep_scale() {
        // Full-length default reps must land within 3% of Table II's
        // 20,047,348 cycles. Estimate from a 2-rep run to keep tests quick:
        // cycles(reps) = fixed + reps * per_rep.
        let one = matmul_int().execute_with_reps(1).expect("1 rep");
        let two = matmul_int().execute_with_reps(2).expect("2 reps");
        let per_rep = (two.cycles - one.cycles) as f64;
        let fixed = one.cycles as f64 - per_rep;
        let full = fixed + per_rep * f64::from(MATMUL_DEFAULT_REPS);
        let target = 20_047_348.0;
        assert!(
            (full - target).abs() / target < 0.03,
            "full-length matmul ≈ {full:.0} cycles (target {target})"
        );
    }

    #[test]
    fn crc32_matches_reference_polynomial() {
        let run = check(crc32());
        assert_eq!(run.checksum, crc32_golden());
        // Sanity against a known-good independent implementation of
        // CRC-32/ISO-HDLC over the same bytes.
        let data: Vec<u8> = (0..256usize).map(|i| ((13 * i + 7) & 0xFF) as u8).collect();
        let mut crc = 0xFFFF_FFFFu32;
        for b in data {
            crc ^= u32::from(b);
            for _ in 0..8 {
                crc = if crc & 1 == 1 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
        }
        assert_eq!(run.checksum, !crc);
    }

    #[test]
    fn edn_checksum() {
        assert_eq!(check(edn()).checksum, edn_golden());
    }

    #[test]
    fn bubblesort_checksum_and_traffic() {
        let run = check(bubblesort());
        assert_eq!(run.checksum, bubblesort_golden());
        // A bubble sort re-reads the array O(n²) times.
        assert!(run.stats.data_reads > 10_000);
    }

    #[test]
    fn sieve_counts_primes_below_8192() {
        let run = check(sieve());
        assert_eq!(run.checksum, 1028); // π(8191) = 1028
        assert_eq!(run.checksum, sieve_golden());
    }

    #[test]
    fn fir_checksum() {
        assert_eq!(check(fir()).checksum, fir_golden());
    }

    #[test]
    fn retention_demand_is_workload_dependent() {
        // The FIR kernel writes y[i] and reads it back only at the end of
        // the run, so its write→read intervals far exceed the dot product's.
        let fir_run = check(fir());
        let edn_run = check(edn());
        assert!(fir_run.stats.max_write_to_read_cycles > edn_run.stats.max_write_to_read_cycles);
    }
}
