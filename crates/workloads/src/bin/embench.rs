//! Run Embench-style kernels on the Cortex-M0 simulator from the command
//! line.
//!
//! ```text
//! cargo run --release -p ppatc-workloads --bin embench -- all
//! cargo run --release -p ppatc-workloads --bin embench -- matmul-int --reps 4
//! cargo run --release -p ppatc-workloads --bin embench -- crc32 --vcd crc32.vcd
//! cargo run --release -p ppatc-workloads --bin embench -- fsm --disasm
//! ```

use ppatc_m0::vcd::VcdRecorder;
use ppatc_m0::{asm, Cpu};
use ppatc_workloads::Workload;
use std::process::ExitCode;

struct Options {
    kernel: String,
    reps: Option<u32>,
    vcd: Option<String>,
    disasm: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let kernel = args
        .next()
        .ok_or("usage: embench <kernel|all> [--reps N] [--vcd FILE] [--disasm]")?;
    let mut opts = Options {
        kernel,
        reps: None,
        vcd: None,
        disasm: false,
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--reps" => {
                let v = args.next().ok_or("--reps needs a value")?;
                opts.reps = Some(v.parse().map_err(|_| format!("bad rep count `{v}`"))?);
            }
            "--vcd" => opts.vcd = Some(args.next().ok_or("--vcd needs a path")?),
            "--disasm" => opts.disasm = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run_kernel(w: &Workload, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let reps = opts.reps.unwrap_or(w.default_reps());
    if opts.disasm {
        let image = asm::assemble(&w.source(reps))?;
        println!("---- {} disassembly ({} bytes) ----", w.name(), image.len());
        for (addr, inst) in ppatc_m0::disassemble(&image) {
            println!("{addr:04x}: {inst}");
        }
        println!();
    }
    if let Some(path) = &opts.vcd {
        let image = asm::assemble(&w.source(reps))?;
        let mut cpu = Cpu::new(&image);
        let vcd = VcdRecorder::new(w.name(), 2_000) // ps per cycle (500 MHz)
            .record_run(&mut cpu, 2_000_000_000)?; // max_cycles safety stop
        std::fs::write(path, &vcd)?;
        println!("wrote {} ({} bytes of VCD)", path, vcd.len());
    }
    let run = w.execute_with_reps(reps)?;
    let ipc = run.instructions as f64 / run.cycles as f64;
    println!(
        "{:<12} reps={reps:<4} cycles={:<12} instructions={:<12} IPC={ipc:.2} checksum={:#010x}",
        w.name(),
        run.cycles,
        run.instructions,
        run.checksum
    );
    println!(
        "             fetches={} prog_reads={} data_reads={} data_writes={} max_retention={} cycles",
        run.stats.instruction_fetches,
        run.stats.program_reads,
        run.stats.data_reads,
        run.stats.data_writes,
        run.stats.max_write_to_read_cycles
    );
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let suite = Workload::suite();
    let selected: Vec<&Workload> = if opts.kernel == "all" {
        suite.iter().collect()
    } else {
        match suite.iter().find(|w| w.name() == opts.kernel) {
            Some(w) => vec![w],
            None => {
                let names: Vec<_> = suite.iter().map(|w| w.name()).collect();
                eprintln!(
                    "unknown kernel `{}`; available: {}",
                    opts.kernel,
                    names.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    };
    for w in selected {
        if let Err(e) = run_kernel(w, &opts) {
            eprintln!("{}: {e}", w.name());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
