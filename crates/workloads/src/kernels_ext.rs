//! Extended kernel set: 64-bit arithmetic, bit packing, fixed-point
//! physics, and a table-driven state machine — covering the Embench
//! categories (`aha-mont64`, `huffbench`, `nbody`, `nsichneu`) that the
//! base six kernels do not.

use crate::Workload;

/// Knuth's 32-bit multiplicative-hash constant (⌊2³²/φ⌋); the asm init
/// loops and their golden models below must agree on it.
const KNUTH_MUL: u32 = 2_654_435_761;
/// Multiplier of the second mont64 input stream (`y[i] = i*40503 + 77`).
const MONT64_Y_MUL: u32 = 40_503;
/// Numerical Recipes `ranqd1` LCG: multiplier, increment, seed.
const LCG_MUL: u32 = 1_664_525;
const LCG_INC: u32 = 1_013_904_223;
const LCG_SEED: u32 = 12_345;
/// Steps the fsm kernel and its golden model both execute.
const FSM_STEPS: u32 = 2000;

/// 64-bit multiply-accumulate (`aha-mont64` analogue): the Cortex-M0 has no
/// `umull`, so 64-bit products are built from four 16×16 partial products
/// and carried with `adcs` — exactly the code shape the Embench Montgomery
/// kernel stresses.
pub fn mont64() -> Workload {
    Workload::new(
        "mont64",
        "64-bit multiply-accumulate from 16x16 partial products",
        40,
        mont64_source,
        mont64_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn mont64_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "mont64 reps must be 1-255");
    format!(
        "
        ; ---- init: x[i] = i*2654435761, y[i] = i*40503+77 over 64 words
            ldr  r0, =0x20000000      ; x
            ldr  r1, =0x20000100      ; y
            movs r3, #0
        init_loop:
            ldr  r4, =2654435761
            muls r4, r4, r3
            lsls r6, r3, #2
            str  r4, [r0, r6]
            ldr  r4, =40503
            muls r4, r4, r3
            adds r4, r4, #77
            str  r4, [r1, r6]
            adds r3, r3, #1
            cmp  r3, #64
            blt  init_loop
            movs r7, #{reps}
        rep_loop:
            push {{r7}}
            movs r6, #0               ; acc hi
            movs r7, #0               ; acc lo
            movs r5, #0               ; i
        mac_loop:
            push {{r5, r6, r7}}
            ldr  r1, =0x20000000
            lsls r2, r5, #2
            ldr  r0, [r1, r2]         ; a
            ldr  r1, =0x20000100
            ldr  r1, [r1, r2]         ; b
            bl   mul64                ; (r1:hi, r0:lo) = a*b
            movs r2, r0
            movs r3, r1
            pop  {{r5, r6, r7}}
            adds r7, r7, r2           ; lo += p_lo
            adcs r6, r6, r3           ; hi += p_hi + carry
            adds r5, r5, #1
            cmp  r5, #64
            blt  mac_loop
            movs r4, r7
            eors r4, r4, r6           ; fold acc64 into 32 bits
            pop  {{r7}}
            subs r7, r7, #1
            bne  rep_loop
            movs r0, r4
            bkpt #0

        ; ---- mul64: full 64-bit product r0*r1 -> (r1:hi, r0:lo) ----
        mul64:
            push {{r4, r5, r6, r7}}
            uxth r2, r0               ; a_lo
            lsrs r3, r0, #16          ; a_hi
            uxth r4, r1               ; b_lo
            lsrs r5, r1, #16          ; b_hi
            movs r6, r2
            muls r6, r6, r4           ; ll
            movs r7, r3
            muls r7, r7, r5           ; hh
            movs r0, r2
            muls r0, r0, r5           ; lh
            movs r1, r3
            muls r1, r1, r4           ; hl
            movs r2, #0
            adds r0, r0, r1           ; mid = lh + hl
            adcs r2, r2, r2           ; r2 = mid carry (0/1)
            lsls r2, r2, #16          ; carry worth 2^48 -> hi += carry<<16
            lsls r1, r0, #16          ; mid_lo<<16
            adds r6, r6, r1           ; lo = ll + (mid<<16)
            movs r1, #0
            adcs r1, r1, r1           ; lo carry
            lsrs r0, r0, #16          ; mid_hi
            adds r7, r7, r0
            adds r7, r7, r2
            adds r7, r7, r1
            movs r0, r6               ; lo
            movs r1, r7               ; hi
            pop  {{r4, r5, r6, r7}}
            bx   lr
        "
    )
}

fn mont64_golden() -> u32 {
    let mut acc = 0u64;
    for i in 0..64u32 {
        let a = i.wrapping_mul(KNUTH_MUL);
        let b = i.wrapping_mul(MONT64_Y_MUL).wrapping_add(77);
        acc = acc.wrapping_add(u64::from(a) * u64::from(b));
    }
    (acc as u32) ^ ((acc >> 32) as u32)
}

/// Variable-length bit packing (`huffbench` analogue): 4-bit length field
/// plus 1–15 payload bits per symbol, packed LSB-first into 32-bit words.
pub fn huffman() -> Workload {
    Workload::new(
        "huffman",
        "variable-length bit packing of 256 symbols",
        60,
        huffman_source,
        huffman_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn huffman_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "huffman reps must be 1-255");
    format!(
        "
            movs r7, #{reps}
        rep_loop:
            ldr  r0, =0x20000400      ; output pointer
            movs r1, #0               ; bit buffer
            movs r2, #0               ; bits used
            movs r3, #0               ; i
        sym_loop:
            ; s = ((7*i + 3) & 15) | 1          -> r4
            movs r4, #7
            muls r4, r4, r3
            adds r4, r4, #3
            movs r5, #15
            ands r4, r4, r5
            movs r5, #1
            orrs r4, r4, r5
            ; p = (11*i + 5) & ((1 << s) - 1)   -> r5
            movs r5, #11
            muls r5, r5, r3
            adds r5, r5, #5
            movs r6, #1
            lsls r6, r4               ; 1 << s (register shift)
            subs r6, r6, #1
            ands r5, r5, r6
            ; flush the buffer if fewer than 19 bits remain
            cmp  r2, #13
            ble  no_flush
            str  r1, [r0, #0]
            adds r0, r0, #4
            movs r1, #0
            movs r2, #0
        no_flush:
            ; buffer |= s << bits; bits += 4
            movs r6, r4
            lsls r6, r2
            orrs r1, r1, r6
            adds r2, r2, #4
            ; buffer |= p << bits; bits += s
            movs r6, r5
            lsls r6, r2
            orrs r1, r1, r6
            adds r2, r2, r4
            adds r3, r3, #1
            cmp  r3, #255
            bls  sym_loop
            ; store the final partial word
            str  r1, [r0, #0]
            adds r0, r0, #4
            ; checksum: xor of all packed words + bytes emitted
            ldr  r2, =0x20000400
            movs r1, #0
        scan_loop:
            ldr  r3, [r2, #0]
            eors r1, r1, r3
            adds r2, r2, #4
            cmp  r2, r0
            blt  scan_loop
            ldr  r3, =0x20000400
            subs r0, r0, r3
            adds r4, r0, r1           ; keep checksum across reps in r4
            subs r7, r7, #1
            bne  rep_loop
            movs r0, r4
            bkpt #0
        "
    )
}

fn huffman_golden() -> u32 {
    let mut words: Vec<u32> = Vec::new();
    let mut buf = 0u32;
    let mut bits = 0u32;
    for i in 0..256u32 {
        let s = ((7 * i + 3) & 15) | 1;
        let p = (11 * i + 5) & ((1u32 << s) - 1);
        if bits > 13 {
            words.push(buf);
            buf = 0;
            bits = 0;
        }
        buf |= s << bits;
        bits += 4;
        buf |= p << bits;
        bits += s;
    }
    words.push(buf);
    let xor = words.iter().fold(0u32, |a, &w| a ^ w);
    (words.len() as u32 * 4).wrapping_add(xor)
}

/// Fixed-point spring-chain integrator (`nbody` analogue): 8 coupled
/// particles, Verlet-style updates with arithmetic shifts standing in for
/// the floating-point force math of the original.
pub fn nbody_fx() -> Workload {
    Workload::new(
        "nbody-fx",
        "fixed-point 8-particle spring-chain integration",
        30,
        nbody_source,
        nbody_golden,
    )
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn nbody_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "nbody reps must be 1-255");
    format!(
        "
            movs r7, #{reps}
        rep_loop:
        ; ---- init: x[i] = (i*i*17) & 0x3FFF, v[i] = 0 ----
            ldr  r0, =0x20000000      ; x
            ldr  r1, =0x20000040      ; v
            movs r3, #0
        init_loop:
            movs r4, r3
            muls r4, r4, r3
            movs r5, #17
            muls r4, r4, r5
            ldr  r5, =0x3FFF
            ands r4, r4, r5
            lsls r6, r3, #2
            str  r4, [r0, r6]
            movs r4, #0
            str  r4, [r1, r6]
            adds r3, r3, #1
            cmp  r3, #8
            blt  init_loop
        ; ---- 32 integration steps ----
            movs r6, #32
        step_loop:
            ; forces and velocity update for i in 1..7
            movs r3, #1
        force_loop:
            lsls r4, r3, #2
            subs r4, r4, #4
            ldr  r2, [r0, r4]         ; x[i-1]
            adds r4, r4, #8
            ldr  r5, [r0, r4]         ; x[i+1]
            adds r2, r2, r5
            subs r4, r4, #4
            ldr  r5, [r0, r4]         ; x[i]
            subs r2, r2, r5
            subs r2, r2, r5           ; f = x[i-1]+x[i+1]-2x[i]
            asrs r2, r2, #4           ; f >> 4
            ldr  r5, [r1, r4]
            adds r5, r5, r2
            str  r5, [r1, r4]         ; v[i] += f>>4
            adds r3, r3, #1
            cmp  r3, #7
            blt  force_loop
            ; position update for i in 0..8
            movs r3, #0
        pos_loop:
            lsls r4, r3, #2
            ldr  r2, [r1, r4]
            asrs r2, r2, #4
            ldr  r5, [r0, r4]
            adds r5, r5, r2
            str  r5, [r0, r4]         ; x[i] += v[i]>>4
            adds r3, r3, #1
            cmp  r3, #8
            blt  pos_loop
            subs r6, r6, #1
            bne  step_loop
        ; ---- checksum: xor of x[i] ^ v[i] ----
            movs r4, #0
            movs r3, #0
        sum_loop:
            lsls r5, r3, #2
            ldr  r2, [r0, r5]
            eors r4, r4, r2
            ldr  r2, [r1, r5]
            eors r4, r4, r2
            adds r3, r3, #1
            cmp  r3, #8
            blt  sum_loop
            subs r7, r7, #1
            bne  rep_loop
            movs r0, r4
            bkpt #0
        "
    )
}

fn nbody_golden() -> u32 {
    let mut x: Vec<i32> = (0..8i64).map(|i| ((i * i * 17) & 0x3FFF) as i32).collect();
    let mut v = [0i32; 8];
    for _ in 0..32 {
        for i in 1..7usize {
            let f = x[i - 1]
                .wrapping_add(x[i + 1])
                .wrapping_sub(2i32.wrapping_mul(x[i]));
            v[i] = v[i].wrapping_add(f >> 4);
        }
        for i in 0..8usize {
            x[i] = x[i].wrapping_add(v[i] >> 4);
        }
    }
    let mut fold = 0u32;
    for i in 0..8usize {
        fold ^= x[i] as u32;
        fold ^= v[i] as u32;
    }
    fold
}

/// Table-driven state machine (`nsichneu` analogue): 2000 transitions
/// through a 64-state table stored in program ROM, with inputs from a
/// linear congruential generator — branch- and literal-load-heavy.
pub fn fsm() -> Workload {
    Workload::new(
        "fsm",
        "table-driven 64-state machine, 2000 LCG-driven transitions",
        50,
        fsm_source,
        fsm_golden,
    )
}

/// The transition table: `table[j] = (j * 2654435761 >> 8) & 63`.
fn fsm_table() -> Vec<u32> {
    (0..64u32)
        .map(|j| (j.wrapping_mul(KNUTH_MUL) >> 8) & 63)
        .collect()
}

/// # Panics
///
/// If `reps` is outside `1..=255` (it must fit the kernel's 8-bit
/// loop counter); registered kernels always pass defaults in range.
fn fsm_source(reps: u32) -> String {
    assert!((1..=255).contains(&reps), "fsm reps must be 1-255");
    let table_words: String = fsm_table()
        .iter()
        .map(|w| format!("            .word {w}\n"))
        .collect();
    format!(
        "
            movs r7, #{reps}
        rep_loop:
            movs r0, #0               ; fold
            movs r2, #1               ; state
            ldr  r3, =12345           ; LCG seed
            ldr  r6, =2000            ; transitions
        step_loop:
            ; seed = seed * 1664525 + 1013904223
            ldr  r4, =1664525
            muls r3, r3, r4
            ldr  r4, =1013904223
            adds r3, r3, r4
            ; input = seed >> 26 (top 6 bits)
            movs r4, r3
            lsrs r4, r4, #26
            ; state = table[(state + input) & 63]
            adds r4, r4, r2
            movs r5, #63
            ands r4, r4, r5
            lsls r4, r4, #2
            ldr  r5, =table
            ldr  r2, [r5, r4]
            ; fold = rotl1(fold) ^ state
            lsls r4, r0, #1
            lsrs r0, r0, #31
            orrs r0, r0, r4
            eors r0, r0, r2
            subs r6, r6, #1
            bne  step_loop
            movs r4, r0
            subs r7, r7, #1
            bne  rep_loop
            movs r0, r4
            bkpt #0
        .align
        table:
{table_words}
        "
    )
}

fn fsm_golden() -> u32 {
    let table = fsm_table();
    let mut fold = 0u32;
    let mut state = 1u32;
    let mut seed = LCG_SEED;
    for _ in 0..FSM_STEPS {
        seed = seed.wrapping_mul(LCG_MUL).wrapping_add(LCG_INC);
        let input = seed >> 26;
        state = table[((state + input) & 63) as usize];
        fold = fold.rotate_left(1) ^ state;
    }
    fold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(w: Workload) -> crate::WorkloadRun {
        w.execute_with_reps(1)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()))
    }

    #[test]
    fn mont64_matches_u64_arithmetic() {
        let run = check(mont64());
        assert_eq!(run.checksum, mont64_golden());
        // The checksum really exercises the high word: recomputing with a
        // 32-bit accumulator must disagree.
        let mut acc32 = 0u32;
        for i in 0..64u32 {
            let a = i.wrapping_mul(2_654_435_761);
            let b = i.wrapping_mul(40_503).wrapping_add(77);
            acc32 = acc32.wrapping_add(a.wrapping_mul(b));
        }
        assert_ne!(run.checksum, acc32);
    }

    #[test]
    fn huffman_packs_more_than_a_kilobit() {
        let run = check(huffman());
        assert_eq!(run.checksum, huffman_golden());
        // 256 symbols × (4 + avg ~8.5) bits ≈ 3.2 kbit ≈ 100 words.
        assert!(run.stats.data_writes > 80);
    }

    #[test]
    fn nbody_conserves_nothing_but_the_golden() {
        let run = check(nbody_fx());
        assert_eq!(run.checksum, nbody_golden());
    }

    #[test]
    fn fsm_walks_the_rom_table() {
        let run = check(fsm());
        assert_eq!(run.checksum, fsm_golden());
        // Table lookups are data reads from *program* memory.
        assert!(run.stats.program_reads >= 2000);
    }

    #[test]
    fn extended_kernels_are_rep_idempotent() {
        for w in [mont64(), huffman(), nbody_fx(), fsm()] {
            let one = w.execute_with_reps(1).expect("1 rep");
            let two = w.execute_with_reps(2).expect("2 reps");
            assert_eq!(one.checksum, two.checksum, "{}", w.name());
            assert!(two.cycles > one.cycles, "{}", w.name());
        }
    }
}
