//! Embench-style benchmark kernels for the Cortex-M0 simulator.
//!
//! The paper characterizes its embedded system "running applications from
//! the Embench suite", with `matmul-int` as the headline workload
//! (20,047,348 cycles at 500 MHz in Table II). Without a cross-compiler in
//! the loop, this crate provides equivalent kernels hand-written in ARMv6-M
//! assembly for [`ppatc_m0`], each paired with a Rust *golden reference*
//! that computes the same checksum — every execution is verified against it.
//!
//! Kernels (one per Embench category the paper's workloads span):
//!
//! | name | Embench analogue | behaviour |
//! |---|---|---|
//! | `matmul-int` | `matmult-int` | 20×20 integer matrix multiply |
//! | `crc32` | `crc32` | bitwise CRC-32 over a 256-byte buffer |
//! | `edn` | `edn` | 256-point integer dot product (DSP inner loop) |
//! | `bubblesort` | `wikisort`-class | in-place sort, branchy + memory-heavy |
//! | `sieve` | `primecount`-class | sieve of Eratosthenes, byte-wise memory |
//! | `fir` | `edn` (vec_mpy) | 8-tap FIR filter over 256 samples |
//! | `mont64` | `aha-mont64` | 64-bit MAC from 16×16 partials with `adcs` carries |
//! | `huffman` | `huffbench` | variable-length bit packing of 256 symbols |
//! | `nbody-fx` | `nbody` | fixed-point 8-particle spring-chain integration |
//! | `fsm` | `nsichneu` | table-driven 64-state machine, ROM-table lookups |
//!
//! All kernels re-initialize their data each repetition, so the checksum is
//! independent of the repetition count and repetitions scale execution time
//! without changing the verified result.
//!
//! # Example
//!
//! ```
//! use ppatc_workloads::Workload;
//!
//! let run = Workload::matmul_int().execute_with_reps(2)?;
//! assert!(run.cycles > 100_000);
//! assert!(run.stats.data_reads > run.stats.data_writes);
//! # Ok::<(), ppatc_workloads::WorkloadError>(())
//! ```

#![warn(missing_docs)]

mod kernels;
mod kernels_ext;

use ppatc_m0::{asm, AccessStats, Cpu};

pub use kernels::{bubblesort, crc32, edn, fir, matmul_int, sieve};
pub use kernels_ext::{fsm, huffman, mont64, nbody_fx};

/// Safety valve for runaway kernels.
const MAX_CYCLES: u64 = 2_000_000_000;

/// A benchmark kernel: assembly source plus a Rust golden reference.
#[derive(Clone)]
pub struct Workload {
    name: &'static str,
    description: &'static str,
    default_reps: u32,
    source: fn(u32) -> String,
    golden: fn() -> u32,
}

impl Workload {
    /// The paper's headline workload: 20×20 integer matrix multiplication,
    /// repeated to land near Table II's 20,047,348 cycles.
    pub fn matmul_int() -> Self {
        kernels::matmul_int()
    }

    /// Bitwise CRC-32 over a 256-byte buffer.
    pub fn crc32() -> Self {
        kernels::crc32()
    }

    /// 256-point integer dot product.
    pub fn edn() -> Self {
        kernels::edn()
    }

    /// In-place bubble sort of 128 words.
    pub fn bubblesort() -> Self {
        kernels::bubblesort()
    }

    /// Sieve of Eratosthenes below 8192.
    pub fn sieve() -> Self {
        kernels::sieve()
    }

    /// 8-tap FIR filter over 256 samples.
    pub fn fir() -> Self {
        kernels::fir()
    }

    /// 64-bit multiply-accumulate from 16×16 partial products.
    pub fn mont64() -> Self {
        kernels_ext::mont64()
    }

    /// Variable-length bit packing of 256 symbols.
    pub fn huffman() -> Self {
        kernels_ext::huffman()
    }

    /// Fixed-point 8-particle spring-chain integration.
    pub fn nbody_fx() -> Self {
        kernels_ext::nbody_fx()
    }

    /// Table-driven 64-state machine with ROM-table lookups.
    pub fn fsm() -> Self {
        kernels_ext::fsm()
    }

    /// All kernels in the suite.
    pub fn suite() -> Vec<Workload> {
        vec![
            kernels::matmul_int(),
            kernels::crc32(),
            kernels::edn(),
            kernels::bubblesort(),
            kernels::sieve(),
            kernels::fir(),
            kernels_ext::mont64(),
            kernels_ext::huffman(),
            kernels_ext::nbody_fx(),
            kernels_ext::fsm(),
        ]
    }

    pub(crate) fn new(
        name: &'static str,
        description: &'static str,
        default_reps: u32,
        source: fn(u32) -> String,
        golden: fn() -> u32,
    ) -> Self {
        Self {
            name,
            description,
            default_reps,
            source,
            golden,
        }
    }

    /// Kernel name (Embench-style).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Repetition count used by [`Workload::execute`], sized for the paper's
    /// full-length runs.
    pub fn default_reps(&self) -> u32 {
        self.default_reps
    }

    /// The assembly source for a given repetition count.
    pub fn source(&self, reps: u32) -> String {
        (self.source)(reps)
    }

    /// The golden checksum this kernel must produce.
    pub fn expected_checksum(&self) -> u32 {
        (self.golden)()
    }

    /// Assembles and runs the kernel at full length.
    ///
    /// # Errors
    ///
    /// See [`Workload::execute_with_reps`].
    pub fn execute(&self) -> Result<WorkloadRun, WorkloadError> {
        self.execute_with_reps(self.default_reps)
    }

    /// Assembles and runs the kernel with an explicit repetition count,
    /// verifying the checksum against the Rust golden reference.
    ///
    /// # Errors
    ///
    /// - [`WorkloadError::Assemble`] if the kernel source fails to assemble
    /// - [`WorkloadError::Execute`] for simulator faults or cycle-limit
    /// - [`WorkloadError::ChecksumMismatch`] if the simulated result differs
    ///   from the golden reference (a simulator or kernel bug)
    pub fn execute_with_reps(&self, reps: u32) -> Result<WorkloadRun, WorkloadError> {
        let image = asm::assemble(&self.source(reps)).map_err(WorkloadError::Assemble)?;
        let mut cpu = Cpu::new(&image);
        let summary = cpu.run(MAX_CYCLES).map_err(WorkloadError::Execute)?;
        let checksum = cpu.reg(0);
        let expected = self.expected_checksum();
        if checksum != expected {
            return Err(WorkloadError::ChecksumMismatch {
                workload: self.name,
                expected,
                actual: checksum,
            });
        }
        Ok(WorkloadRun {
            cycles: summary.cycles,
            instructions: summary.instructions,
            checksum,
            stats: cpu.memory().stats().clone(),
        })
    }
}

impl core::fmt::Debug for Workload {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("default_reps", &self.default_reps)
            .finish_non_exhaustive()
    }
}

/// Result of a verified kernel execution — the numbers the carbon flow
/// consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Total clock cycles (`N_cycle` in Eq. 6).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Verified checksum.
    pub checksum: u32,
    /// Memory-access statistics (fetches, reads, writes, retention).
    pub stats: AccessStats,
}

/// Failure while preparing or running a workload.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// Kernel source failed to assemble.
    Assemble(asm::AsmError),
    /// Simulator fault or cycle-limit overflow.
    Execute(ppatc_m0::ExecError),
    /// The simulated checksum disagrees with the Rust golden reference.
    ChecksumMismatch {
        /// Offending kernel.
        workload: &'static str,
        /// Golden value.
        expected: u32,
        /// Simulated value.
        actual: u32,
    },
}

impl core::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WorkloadError::Assemble(e) => write!(f, "kernel failed to assemble: {e}"),
            WorkloadError::Execute(e) => write!(f, "kernel failed to run: {e}"),
            WorkloadError::ChecksumMismatch {
                workload,
                expected,
                actual,
            } => write!(
                f,
                "`{workload}` checksum {actual:#010x} does not match golden {expected:#010x}"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Assemble(e) => Some(e),
            WorkloadError::Execute(e) => Some(e),
            WorkloadError::ChecksumMismatch { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_ten_distinct_kernels() {
        let suite = Workload::suite();
        assert_eq!(suite.len(), 10);
        let mut names: Vec<_> = suite.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn every_kernel_verifies_at_small_scale() {
        for w in Workload::suite() {
            let run = w
                .execute_with_reps(1)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
            assert!(run.cycles > 0, "{} consumed no cycles", w.name());
            assert_eq!(run.checksum, w.expected_checksum());
        }
    }

    #[test]
    fn reps_scale_cycles_but_not_checksum() {
        let w = Workload::crc32();
        let one = w.execute_with_reps(1).expect("1 rep should run");
        let three = w.execute_with_reps(3).expect("3 reps should run");
        assert_eq!(one.checksum, three.checksum);
        let ratio = three.cycles as f64 / one.cycles as f64;
        assert!((2.5..3.5).contains(&ratio), "cycle ratio {ratio}");
    }

    #[test]
    fn memory_traffic_is_recorded() {
        let run = Workload::bubblesort()
            .execute_with_reps(1)
            .expect("should run");
        assert!(run.stats.data_reads > 100);
        assert!(run.stats.data_writes > 100);
        assert!(run.stats.instruction_fetches > run.stats.data_reads);
    }
}
