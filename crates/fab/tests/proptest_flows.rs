//! Property tests of the fabrication-energy and carbon models, driven by a
//! deterministic in-repo PRNG (seeded [`SplitMix64`]) instead of an external
//! property-testing framework. Each property runs over a fixed number of
//! pseudo-random cases; failures print the case index and inputs.

use ppatc_fab::flow::metal_via_pair_steps;
use ppatc_fab::{grid, EmbodiedModel, Grid, ProcessFlow, StepEnergies};
use ppatc_pdk::{LayerStack, Lithography, MetalLayer, StackElement, Technology, TierKind};
use ppatc_units::rng::SplitMix64;
use ppatc_units::{approx_eq, Length};

const PITCHES_NM: [f64; 4] = [36.0, 48.0, 64.0, 80.0];

/// A random plausible layer stack (1–23 elements, metals 4× as likely as
/// device tiers), mirroring the generator the proptest version used.
fn any_stack(rng: &mut SplitMix64) -> LayerStack {
    let len = 1 + rng.next_below(23) as usize;
    let elements: Vec<StackElement> = (0..len)
        .map(|_| match rng.next_below(6) {
            0 => StackElement::DeviceTier(TierKind::Cnfet),
            1 => StackElement::DeviceTier(TierKind::Igzo),
            _ => {
                let pitch = PITCHES_NM[rng.next_below(4) as usize];
                StackElement::Metal(MetalLayer::new("M", Length::from_nanometers(pitch)))
            }
        })
        .collect();
    LayerStack::from_elements(elements)
}

/// Adding any element to a stack strictly increases its BEOL energy.
#[test]
fn beol_energy_is_monotone_in_stack() {
    let mut rng = SplitMix64::new(0xFAB1);
    for case in 0..128 {
        let stack = any_stack(&mut rng);
        let db = StepEnergies::calibrated_7nm();
        let base = ProcessFlow::from_stack("base", &stack).beol_epa(&db);
        let mut grown: Vec<StackElement> = stack.iter().cloned().collect();
        grown.push(StackElement::Metal(MetalLayer::new(
            "extra",
            Length::from_nanometers(36.0),
        )));
        let bigger =
            ProcessFlow::from_stack("grown", &LayerStack::from_elements(grown)).beol_epa(&db);
        assert!(bigger > base, "case {case}: {bigger:?} <= {base:?}");
    }
}

/// Flow energy under a uniformly scaled database scales by exactly that
/// factor (the FEOL block excluded).
#[test]
fn beol_energy_is_linear_in_step_energies() {
    let mut rng = SplitMix64::new(0xFAB2);
    for case in 0..128 {
        let stack = any_stack(&mut rng);
        let k = rng.uniform(0.1, 5.0);
        let base_db = StepEnergies::calibrated_7nm();
        let flow = ProcessFlow::from_stack("s", &stack);
        let e1 = flow.beol_epa(&base_db).as_joules();
        let e2 = flow.beol_epa(&base_db.scaled(k)).as_joules();
        assert!(
            approx_eq(e2, k * e1, 1e-9),
            "case {case}: k={k}, {e2} vs {}",
            k * e1
        );
    }
}

/// Embodied carbon is affine in grid intensity: doubling CI doubles
/// only the electricity term.
#[test]
fn embodied_affine_in_grid_ci() {
    let mut rng = SplitMix64::new(0xFAB3);
    for case in 0..128 {
        let g1 = rng.uniform(1.0, 2000.0);
        let k = rng.uniform(1.1, 5.0);
        let model = EmbodiedModel::paper_default();
        let a = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, Grid::new("a", g1));
        let b = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, Grid::new("b", g1 * k));
        assert!(
            approx_eq(
                b.fab_electricity().as_grams(),
                k * a.fab_electricity().as_grams(),
                1e-9
            ),
            "case {case}: g1={g1}, k={k}"
        );
        assert!(approx_eq(
            a.materials().as_grams(),
            b.materials().as_grams(),
            1e-12
        ));
        assert!(approx_eq(a.gases().as_grams(), b.gases().as_grams(), 1e-12));
    }
}

/// The M3D process costs more than the all-Si process on any grid.
#[test]
fn m3d_premium_holds_on_any_grid() {
    let mut rng = SplitMix64::new(0xFAB4);
    for case in 0..128 {
        let gi = rng.uniform(0.0, 3000.0);
        let model = EmbodiedModel::paper_default();
        let g = Grid::new("x", gi);
        let si = model.embodied_per_wafer(Technology::AllSi, g).total();
        let m3d = model
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, g)
            .total();
        assert!(m3d > si, "case {case}: gi={gi}");
    }
}

/// Step sequences for a metal/via pair always have lithography counts
/// consistent with the patterning class.
#[test]
fn litho_counts_by_class() {
    for pitch in PITCHES_NM {
        let litho = Lithography::for_pitch(Length::from_nanometers(pitch));
        let steps = metal_via_pair_steps("Mx", litho);
        let exposures = steps
            .iter()
            .filter(|s| s.area == ppatc_fab::ProcessArea::Lithography)
            .count();
        let expected = match litho {
            Lithography::EuvSingle => 2,
            Lithography::ImmersionLele => 3,
            Lithography::ImmersionSingle => 2,
        };
        assert_eq!(exposures, expected, "pitch {pitch} nm");
    }
}

/// Water scales monotonically with flow length too.
#[test]
fn water_is_monotone_in_stack() {
    use ppatc_fab::water::WaterModel;
    let mut rng = SplitMix64::new(0xFAB5);
    for case in 0..128 {
        let stack = any_stack(&mut rng);
        let model = WaterModel::typical_7nm();
        let base = model.upw_per_wafer(&ProcessFlow::from_stack("b", &stack));
        let mut grown: Vec<StackElement> = stack.iter().cloned().collect();
        grown.push(StackElement::DeviceTier(TierKind::Igzo));
        let bigger = model.upw_per_wafer(&ProcessFlow::from_stack(
            "g",
            &LayerStack::from_elements(grown),
        ));
        assert!(bigger > base, "case {case}");
    }
}

#[test]
fn fig2c_reference_is_stable_under_property_runs() {
    // Anchor retained here so the property file fails loudly if a future
    // database change silently moves the calibration.
    let model = EmbodiedModel::paper_default();
    let si = model
        .embodied_per_wafer(Technology::AllSi, grid::US)
        .total();
    assert!(approx_eq(si.as_kilograms(), 837.0, 0.005));
}
