//! Property tests of the fabrication-energy and carbon models.

use ppatc_fab::flow::metal_via_pair_steps;
use ppatc_fab::{grid, EmbodiedModel, Grid, ProcessFlow, StepEnergies};
use ppatc_pdk::{LayerStack, Lithography, MetalLayer, StackElement, Technology, TierKind};
use ppatc_units::{approx_eq, Length};
use proptest::prelude::*;

/// Strategy: a random plausible layer stack (1–20 metals, 0–4 tiers).
fn any_stack() -> impl Strategy<Value = LayerStack> {
    let element = prop_oneof![
        4 => prop::sample::select(vec![36.0f64, 48.0, 64.0, 80.0])
            .prop_map(|p| StackElement::Metal(MetalLayer::new("M", Length::from_nanometers(p)))),
        1 => Just(StackElement::DeviceTier(TierKind::Cnfet)),
        1 => Just(StackElement::DeviceTier(TierKind::Igzo)),
    ];
    prop::collection::vec(element, 1..24).prop_map(LayerStack::from_elements)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Adding any element to a stack strictly increases its BEOL energy.
    #[test]
    fn beol_energy_is_monotone_in_stack(stack in any_stack()) {
        let db = StepEnergies::calibrated_7nm();
        let base = ProcessFlow::from_stack("base", &stack).beol_epa(&db);
        let mut grown: Vec<StackElement> = stack.iter().cloned().collect();
        grown.push(StackElement::Metal(MetalLayer::new(
            "extra",
            Length::from_nanometers(36.0),
        )));
        let bigger = ProcessFlow::from_stack("grown", &LayerStack::from_elements(grown)).beol_epa(&db);
        prop_assert!(bigger > base);
    }

    /// Flow energy under a uniformly scaled database scales by exactly that
    /// factor (the FEOL block excluded).
    #[test]
    fn beol_energy_is_linear_in_step_energies(stack in any_stack(), k in 0.1..5.0f64) {
        let base_db = StepEnergies::calibrated_7nm();
        let flow = ProcessFlow::from_stack("s", &stack);
        let e1 = flow.beol_epa(&base_db).as_joules();
        let e2 = flow.beol_epa(&base_db.scaled(k)).as_joules();
        prop_assert!(approx_eq(e2, k * e1, 1e-9));
    }

    /// Embodied carbon is affine in grid intensity: doubling CI doubles
    /// only the electricity term.
    #[test]
    fn embodied_affine_in_grid_ci(g1 in 1.0..2000.0f64, k in 1.1..5.0f64) {
        let model = EmbodiedModel::paper_default();
        let a = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, Grid::new("a", g1));
        let b = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, Grid::new("b", g1 * k));
        prop_assert!(approx_eq(
            b.fab_electricity().as_grams(),
            k * a.fab_electricity().as_grams(),
            1e-9
        ));
        prop_assert!(approx_eq(a.materials().as_grams(), b.materials().as_grams(), 1e-12));
        prop_assert!(approx_eq(a.gases().as_grams(), b.gases().as_grams(), 1e-12));
    }

    /// The M3D process costs more than the all-Si process on any grid.
    #[test]
    fn m3d_premium_holds_on_any_grid(gi in 0.0..3000.0f64) {
        let model = EmbodiedModel::paper_default();
        let g = Grid::new("x", gi);
        let si = model.embodied_per_wafer(Technology::AllSi, g).total();
        let m3d = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, g).total();
        prop_assert!(m3d > si);
    }

    /// Step sequences for a metal/via pair always have lithography counts
    /// consistent with the patterning class.
    #[test]
    fn litho_counts_by_class(pitch in prop::sample::select(vec![36.0f64, 48.0, 64.0, 80.0])) {
        let litho = Lithography::for_pitch(Length::from_nanometers(pitch));
        let steps = metal_via_pair_steps("Mx", litho);
        let exposures = steps
            .iter()
            .filter(|s| s.area == ppatc_fab::ProcessArea::Lithography)
            .count();
        let expected = match litho {
            Lithography::EuvSingle => 2,
            Lithography::ImmersionLele => 3,
            Lithography::ImmersionSingle => 2,
        };
        prop_assert_eq!(exposures, expected);
    }

    /// Water scales monotonically with flow length too.
    #[test]
    fn water_is_monotone_in_stack(stack in any_stack()) {
        use ppatc_fab::water::WaterModel;
        let model = WaterModel::typical_7nm();
        let base = model.upw_per_wafer(&ProcessFlow::from_stack("b", &stack));
        let mut grown: Vec<StackElement> = stack.iter().cloned().collect();
        grown.push(StackElement::DeviceTier(TierKind::Igzo));
        let bigger = model.upw_per_wafer(&ProcessFlow::from_stack(
            "g",
            &LayerStack::from_elements(grown),
        ));
        prop_assert!(bigger > base);
    }
}

#[test]
fn fig2c_reference_is_stable_under_proptest_runs() {
    // Anchor retained here so the property file fails loudly if a future
    // database change silently moves the calibration.
    let model = EmbodiedModel::paper_default();
    let si = model.embodied_per_wafer(Technology::AllSi, grid::US).total();
    assert!(approx_eq(si.as_kilograms(), 837.0, 0.005));
}
