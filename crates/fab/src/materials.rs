//! Materials-procurement carbon (the MPA term of Eq. 2).
//!
//! The Si substrate dominates: 500 gCO₂e/cm² (~353 kgCO₂e per 300 mm wafer,
//! from semiconductor LCA data \[Boyd 2011\]). The emerging materials of the
//! M3D process add astonishingly little mass — the CNT channel layer is a
//! sparse ~2 nm film and the IGZO channel a 10 nm film — so even with the
//! high specific footprint of CNT synthesis (~14 kgCO₂e per gram, averaged
//! across CVD methods \[Teah 2020\]) their MPA contribution is negligible.
//! This module computes it anyway, from geometry, so the claim is checkable.

use ppatc_units::{Area, CarbonArea, CarbonMass, Length};

/// Carbon footprint of the silicon substrate per unit area (LCA value).
pub fn silicon_wafer_mpa() -> CarbonArea {
    CarbonArea::from_g_per_cm2(500.0)
}

/// Specific carbon footprint of CNT synthesis, gCO₂e per gram of CNT
/// (≈14 kgCO₂e/g averaged across on-substrate and fluidized-bed CVD).
pub const CNT_SYNTHESIS_G_PER_G: f64 = 14_000.0;

/// Specific carbon footprint of IGZO sputter-target material, gCO₂e per
/// gram (indium-dominated; upper-bound estimate).
pub const IGZO_TARGET_G_PER_G: f64 = 250.0;

/// Mass model of one deposited CNT layer.
///
/// ```
/// use ppatc_fab::materials::CntLayer;
/// use ppatc_units::{Area, Length};
///
/// let wafer = Area::of_wafer(Length::from_millimeters(300.0));
/// let layer = CntLayer::default();
/// // Even a pessimistic geometric estimate is micrograms per wafer,
/// // i.e. well under a gram of CO2e.
/// assert!(layer.carbon(wafer).as_grams() < 1.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CntLayer {
    /// Tube areal density where CNTs are present (tubes per metre of width).
    pub tubes_per_meter: f64,
    /// Fraction of the wafer covered by retained CNT active regions.
    ///
    /// The paper reports the retained mass as "on the order of picograms";
    /// a geometric estimate with a few percent active-area coverage lands
    /// in the microgram range instead. Either way MPA is negligible — we
    /// keep the geometric (pessimistic) estimate and note the deviation.
    pub area_coverage: f64,
    /// Linear mass density of one CNT, grams per metre (~1.5 nm diameter).
    pub mass_per_tube_length: f64,
}

impl Default for CntLayer {
    fn default() -> Self {
        Self {
            tubes_per_meter: 2.0e8, // 200 CNTs/µm
            area_coverage: 0.05,
            mass_per_tube_length: 3.6e-12, // g/m for a ~1.5 nm tube
        }
    }
}

impl CntLayer {
    /// Total CNT mass deposited-and-retained on a wafer of the given area,
    /// in grams.
    pub fn mass_grams(&self, wafer: Area) -> f64 {
        let covered = wafer.as_square_meters() * self.area_coverage;
        // Parallel tubes at (1/tubes_per_meter) spacing: total length =
        // covered area × density.
        let total_length_m = covered * self.tubes_per_meter;
        total_length_m * self.mass_per_tube_length
    }

    /// Synthesis carbon of the layer's CNTs.
    pub fn carbon(&self, wafer: Area) -> CarbonMass {
        CarbonMass::from_grams(self.mass_grams(wafer) * CNT_SYNTHESIS_G_PER_G)
    }
}

/// Mass model of one sputtered IGZO layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IgzoLayer {
    /// Film thickness.
    pub thickness: Length,
    /// IGZO density, g/cm³.
    pub density_g_per_cm3: f64,
    /// Sputter-target utilization (deposited / consumed).
    pub target_utilization: f64,
}

impl Default for IgzoLayer {
    fn default() -> Self {
        Self {
            thickness: Length::from_nanometers(10.0),
            density_g_per_cm3: 6.1,
            target_utilization: 0.3,
        }
    }
}

impl IgzoLayer {
    /// Target material consumed to coat a wafer of the given area, grams.
    pub fn mass_grams(&self, wafer: Area) -> f64 {
        let volume_cm3 = wafer.as_square_centimeters() * (self.thickness.as_meters() * 100.0);
        volume_cm3 * self.density_g_per_cm3 / self.target_utilization
    }

    /// Procurement carbon of the consumed target material.
    pub fn carbon(&self, wafer: Area) -> CarbonMass {
        CarbonMass::from_grams(self.mass_grams(wafer) * IGZO_TARGET_G_PER_G)
    }
}

/// Total MPA for a process with the given numbers of CNT and IGZO layers.
///
/// Returns the Si-substrate MPA plus the (tiny) emerging-material additions,
/// expressed per unit area.
pub fn process_mpa(wafer: Area, cnt_layers: usize, igzo_layers: usize) -> CarbonArea {
    let si = silicon_wafer_mpa() * wafer;
    let cnt = CntLayer::default().carbon(wafer) * (cnt_layers as f64);
    let igzo = IgzoLayer::default().carbon(wafer) * (igzo_layers as f64);
    (si + cnt + igzo) / wafer
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn wafer() -> Area {
        Area::of_wafer(Length::from_millimeters(300.0))
    }

    #[test]
    fn silicon_dominates() {
        let si = silicon_wafer_mpa() * wafer();
        assert!(approx_eq(si.as_grams(), 3.534e5, 1e-3));
        let m3d = process_mpa(wafer(), 2, 1) * wafer();
        // Emerging materials add < 0.01% to MPA.
        assert!((m3d.as_grams() - si.as_grams()) / si.as_grams() < 1e-4);
    }

    #[test]
    fn cnt_mass_is_micrograms() {
        let g = CntLayer::default().mass_grams(wafer());
        assert!(g > 1e-8 && g < 1e-4, "CNT mass {g} g");
    }

    #[test]
    fn igzo_mass_is_milligrams() {
        let g = IgzoLayer::default().mass_grams(wafer());
        assert!(g > 1e-3 && g < 1.0, "IGZO mass {g} g");
    }

    #[test]
    fn all_si_process_mpa_is_pure_silicon() {
        let a = process_mpa(wafer(), 0, 0);
        assert!(approx_eq(a.as_g_per_cm2(), 500.0, 1e-12));
    }
}
