//! Process-step taxonomy and the per-step energy database.
//!
//! Following the paper (and its source, Bardon et al. IEDM 2020), every
//! fabrication step belongs to one of six *process areas*. Published data
//! gives, per module (e.g. "one EUV-patterned metal layer"), the number of
//! steps in each area and that area's total energy; dividing yields an
//! energy per step, which can then be recombined to cost *novel* modules —
//! the CNFET and IGZO tiers — that no fab has ever characterized.

use ppatc_units::Energy;

/// The six process areas of the Eq. 4 step-count matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessArea {
    /// Resist coat/expose/develop. Energy depends strongly on the tool
    /// ([`LithoTool`]).
    Lithography,
    /// CVD/ALD/spin-on/sputter film deposition.
    Deposition,
    /// Plasma (dry) etch.
    DryEtch,
    /// Wet etch and wet cleans.
    WetEtch,
    /// Barrier/seed, electroplating, and CMP of damascene metal.
    Metallization,
    /// Inspection and CD/overlay metrology.
    Metrology,
}

impl ProcessArea {
    /// All six areas in matrix-row order.
    pub const ALL: [ProcessArea; 6] = [
        ProcessArea::Lithography,
        ProcessArea::Deposition,
        ProcessArea::DryEtch,
        ProcessArea::WetEtch,
        ProcessArea::Metallization,
        ProcessArea::Metrology,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ProcessArea::Lithography => "lithography",
            ProcessArea::Deposition => "deposition",
            ProcessArea::DryEtch => "dry etch",
            ProcessArea::WetEtch => "wet etch",
            ProcessArea::Metallization => "metallization",
            ProcessArea::Metrology => "metrology",
        }
    }
}

impl core::fmt::Display for ProcessArea {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

/// Exposure tool class for lithography steps.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LithoTool {
    /// Extreme-ultraviolet scanner (13.5 nm). ~1 MW tool power makes each
    /// exposure an order of magnitude more energetic than immersion.
    Euv,
    /// 193 nm immersion scanner.
    Immersion,
}

impl core::fmt::Display for LithoTool {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LithoTool::Euv => f.write_str("EUV"),
            LithoTool::Immersion => f.write_str("193i"),
        }
    }
}

/// One step of a process flow: a process area, the litho tool when relevant,
/// and a descriptive label for reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessStep {
    /// Process area this step belongs to.
    pub area: ProcessArea,
    /// Exposure tool; `Some` only for [`ProcessArea::Lithography`] steps.
    pub tool: Option<LithoTool>,
    /// Description, e.g. `"M5 via EUV exposure"`.
    pub label: String,
}

impl ProcessStep {
    /// A non-lithography step.
    ///
    /// # Panics
    ///
    /// Panics if `area` is [`ProcessArea::Lithography`]; use
    /// [`ProcessStep::litho`] for exposures.
    pub fn new(area: ProcessArea, label: impl Into<String>) -> Self {
        assert!(
            area != ProcessArea::Lithography,
            "use ProcessStep::litho for lithography steps"
        );
        Self {
            area,
            tool: None,
            label: label.into(),
        }
    }

    /// A lithography exposure with the given tool.
    pub fn litho(tool: LithoTool, label: impl Into<String>) -> Self {
        Self {
            area: ProcessArea::Lithography,
            tool: Some(tool),
            label: label.into(),
        }
    }
}

/// Per-step fabrication energies (kWh per wafer pass), the right-hand matrix
/// of the paper's Eq. 4.
///
/// The defaults ([`StepEnergies::calibrated_7nm`]) are chosen so that the
/// complete all-Si and M3D flows reproduce the paper's per-wafer totals
/// (Sec. II-C): an EUV exposure costs ~8.9 kWh (a ~1 MW scanner at ~100
/// wafers/hour), an immersion exposure ~1.8 kWh, and the thermal/plasma
/// steps sit in the 0.15–2 kWh band reported for the imec iN7 node.
#[derive(Clone, Debug, PartialEq)]
pub struct StepEnergies {
    euv_exposure_kwh: f64,
    immersion_exposure_kwh: f64,
    deposition_kwh: f64,
    dry_etch_kwh: f64,
    wet_etch_kwh: f64,
    metallization_kwh: f64,
    metrology_kwh: f64,
}

impl StepEnergies {
    /// The calibrated 7 nm-node database (see struct docs).
    pub fn calibrated_7nm() -> Self {
        Self {
            euv_exposure_kwh: 8.9425,
            immersion_exposure_kwh: 2.5111,
            deposition_kwh: 1.33,
            dry_etch_kwh: 1.50,
            wet_etch_kwh: 0.40,
            metallization_kwh: 1.50,
            metrology_kwh: 0.15,
        }
    }

    /// Builds a fully custom database. All values in kWh per wafer pass and
    /// must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if any energy is negative.
    pub fn custom(
        euv_exposure_kwh: f64,
        immersion_exposure_kwh: f64,
        deposition_kwh: f64,
        dry_etch_kwh: f64,
        wet_etch_kwh: f64,
        metallization_kwh: f64,
        metrology_kwh: f64,
    ) -> Self {
        for (name, v) in [
            ("euv", euv_exposure_kwh),
            ("immersion", immersion_exposure_kwh),
            ("deposition", deposition_kwh),
            ("dry etch", dry_etch_kwh),
            ("wet etch", wet_etch_kwh),
            ("metallization", metallization_kwh),
            ("metrology", metrology_kwh),
        ] {
            assert!(v >= 0.0, "{name} step energy must be non-negative");
        }
        Self {
            euv_exposure_kwh,
            immersion_exposure_kwh,
            deposition_kwh,
            dry_etch_kwh,
            wet_etch_kwh,
            metallization_kwh,
            metrology_kwh,
        }
    }

    /// Returns a copy with every step energy scaled by `factor` — the knob
    /// for the Fig. 6 embodied-carbon uncertainty sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            euv_exposure_kwh: self.euv_exposure_kwh * factor,
            immersion_exposure_kwh: self.immersion_exposure_kwh * factor,
            deposition_kwh: self.deposition_kwh * factor,
            dry_etch_kwh: self.dry_etch_kwh * factor,
            wet_etch_kwh: self.wet_etch_kwh * factor,
            metallization_kwh: self.metallization_kwh * factor,
            metrology_kwh: self.metrology_kwh * factor,
        }
    }

    /// Energy of one step.
    pub fn energy(&self, step: &ProcessStep) -> Energy {
        let kwh = match (step.area, step.tool) {
            (ProcessArea::Lithography, Some(LithoTool::Euv)) => self.euv_exposure_kwh,
            (ProcessArea::Lithography, Some(LithoTool::Immersion)) => self.immersion_exposure_kwh,
            (ProcessArea::Lithography, None) => self.immersion_exposure_kwh,
            (ProcessArea::Deposition, _) => self.deposition_kwh,
            (ProcessArea::DryEtch, _) => self.dry_etch_kwh,
            (ProcessArea::WetEtch, _) => self.wet_etch_kwh,
            (ProcessArea::Metallization, _) => self.metallization_kwh,
            (ProcessArea::Metrology, _) => self.metrology_kwh,
        };
        Energy::from_kilowatt_hours(kwh)
    }
}

impl Default for StepEnergies {
    fn default() -> Self {
        Self::calibrated_7nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn euv_is_the_most_expensive_step() {
        let db = StepEnergies::calibrated_7nm();
        let euv = db.energy(&ProcessStep::litho(LithoTool::Euv, "x"));
        for area in ProcessArea::ALL.iter().skip(1) {
            let step = ProcessStep::new(*area, "x");
            assert!(db.energy(&step) < euv, "{area} should cost less than EUV");
        }
        let imm = db.energy(&ProcessStep::litho(LithoTool::Immersion, "x"));
        assert!(euv.as_kilowatt_hours() > 3.0 * imm.as_kilowatt_hours());
    }

    #[test]
    fn scaling_is_uniform() {
        let db = StepEnergies::calibrated_7nm();
        let double = db.scaled(2.0);
        let step = ProcessStep::new(ProcessArea::Deposition, "x");
        assert!(approx_eq(
            double.energy(&step).as_kilowatt_hours(),
            2.0 * db.energy(&step).as_kilowatt_hours(),
            1e-12
        ));
    }

    #[test]
    #[should_panic(expected = "use ProcessStep::litho")]
    fn litho_via_new_panics() {
        let _ = ProcessStep::new(ProcessArea::Lithography, "x");
    }

    #[test]
    #[should_panic(expected = "must be non-negative")]
    fn negative_energy_panics() {
        let _ = StepEnergies::custom(-1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
    }

    #[test]
    fn display_labels() {
        assert_eq!(ProcessArea::DryEtch.to_string(), "dry etch");
        assert_eq!(LithoTool::Euv.to_string(), "EUV");
    }
}
