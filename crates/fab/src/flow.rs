//! Process flows: ordered step sequences for complete technologies.
//!
//! A flow is built structurally from a [`LayerStack`]: each metal/via pair
//! expands into the patterning sequence its pitch requires, each BEOL device
//! tier expands into its device-formation sequence (Sec. II-C of the paper),
//! and the Si FinFET FEOL enters as one aggregate energy block equated to
//! the imec iN7 front-/middle-of-line (436 kWh/wafer).

use crate::steps::{LithoTool, ProcessArea, ProcessStep, StepEnergies};
use ppatc_pdk::{LayerStack, Lithography, StackElement, Technology, TierKind};
use ppatc_units::Energy;

/// Front-of-line + middle-of-line energy for a 7 nm FinFET FEOL, kWh/wafer
/// (imec iN7, Bardon IEDM 2020 — used by the paper for both processes).
pub const FEOL_KWH_PER_WAFER: f64 = 436.0;

/// A complete wafer-fabrication flow: an aggregate FEOL block plus an
/// ordered list of BEOL steps.
///
/// ```
/// use ppatc_fab::{ProcessFlow, StepEnergies};
/// use ppatc_pdk::Technology;
///
/// let db = StepEnergies::calibrated_7nm();
/// let all_si = ProcessFlow::for_technology(Technology::AllSi);
/// let m3d = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
/// // Sec. II-C: EPA is ~699 kWh/wafer (all-Si) vs ~1080 kWh/wafer (M3D).
/// assert!((all_si.epa(&db).as_kilowatt_hours() - 699.0).abs() < 7.0);
/// assert!((m3d.epa(&db).as_kilowatt_hours() - 1079.5).abs() < 11.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ProcessFlow {
    name: String,
    feol: Energy,
    steps: Vec<ProcessStep>,
}

impl ProcessFlow {
    /// Builds the flow for one of the paper's two technologies.
    pub fn for_technology(technology: Technology) -> Self {
        Self::from_stack(technology.label(), &technology.stack())
    }

    /// Builds a flow from an arbitrary layer stack, with the standard 7 nm
    /// FinFET FEOL block.
    pub fn from_stack(name: impl Into<String>, stack: &LayerStack) -> Self {
        let mut steps = Vec::new();
        for element in stack {
            match element {
                StackElement::Metal(m) => {
                    steps.extend(metal_via_pair_steps(m.name(), m.lithography()));
                }
                StackElement::DeviceTier(TierKind::Cnfet) => steps.extend(cnfet_tier_steps()),
                StackElement::DeviceTier(TierKind::Igzo) => steps.extend(igzo_tier_steps()),
            }
        }
        Self {
            name: name.into(),
            feol: Energy::from_kilowatt_hours(FEOL_KWH_PER_WAFER),
            steps,
        }
    }

    /// Flow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Aggregate FEOL (+MOL) energy per wafer.
    pub fn feol_energy(&self) -> Energy {
        self.feol
    }

    /// The ordered BEOL steps.
    pub fn steps(&self) -> &[ProcessStep] {
        &self.steps
    }

    /// BEOL electrical energy per wafer under the given step database.
    pub fn beol_epa(&self, db: &StepEnergies) -> Energy {
        self.steps.iter().map(|s| db.energy(s)).sum()
    }

    /// Total electrical energy per wafer (EPA in the paper's Eq. 2, before
    /// the facility overhead): FEOL block + BEOL steps.
    pub fn epa(&self, db: &StepEnergies) -> Energy {
        self.feol + self.beol_epa(db)
    }

    /// The Eq. 4 step-count vector: how many times each (process area,
    /// litho tool) combination appears in the BEOL, in matrix-row order.
    pub fn step_counts(&self) -> Vec<(ProcessArea, Option<LithoTool>, usize)> {
        let mut rows: Vec<(ProcessArea, Option<LithoTool>, usize)> = Vec::new();
        for area in ProcessArea::ALL {
            let tools: &[Option<LithoTool>] = if area == ProcessArea::Lithography {
                &[Some(LithoTool::Euv), Some(LithoTool::Immersion)]
            } else {
                &[None]
            };
            for &tool in tools {
                let n = self
                    .steps
                    .iter()
                    .filter(|s| s.area == area && s.tool == tool)
                    .count();
                rows.push((area, tool, n));
            }
        }
        rows
    }
}

/// Per-process-area breakdown of a step sequence: `(area, step count, total
/// energy)` — the format of the paper's Fig. 2d.
pub fn area_breakdown(
    steps: &[ProcessStep],
    db: &StepEnergies,
) -> Vec<(ProcessArea, usize, Energy)> {
    ProcessArea::ALL
        .iter()
        .map(|&area| {
            let in_area: Vec<&ProcessStep> = steps.iter().filter(|s| s.area == area).collect();
            let total: Energy = in_area.iter().map(|s| db.energy(s)).sum();
            (area, in_area.len(), total)
        })
        .collect()
}

/// The step sequence for one metal/via routing pair at the given patterning
/// class (dual-damascene: via then trench, barrier/plate/CMP).
pub fn metal_via_pair_steps(layer: &str, litho: Lithography) -> Vec<ProcessStep> {
    let mut s = Vec::new();
    let dep = |label: String| ProcessStep::new(ProcessArea::Deposition, label);
    let dry = |label: String| ProcessStep::new(ProcessArea::DryEtch, label);
    let wet = |label: String| ProcessStep::new(ProcessArea::WetEtch, label);
    let metz = |label: String| ProcessStep::new(ProcessArea::Metallization, label);
    let met = |label: String| ProcessStep::new(ProcessArea::Metrology, label);
    match litho {
        Lithography::EuvSingle => {
            // Single EUV print each for via and trench.
            s.push(dep(format!("{layer} ILD deposition")));
            s.push(ProcessStep::litho(
                LithoTool::Euv,
                format!("{layer} via EUV exposure"),
            ));
            s.push(dry(format!("{layer} via etch")));
            s.push(dep(format!("{layer} trench hard mask")));
            s.push(ProcessStep::litho(
                LithoTool::Euv,
                format!("{layer} trench EUV exposure"),
            ));
            s.push(dry(format!("{layer} trench etch")));
            s.push(dry(format!("{layer} hard-mask strip")));
            s.push(wet(format!("{layer} post-etch clean")));
            s.push(dep(format!("{layer} barrier/liner deposition")));
            s.push(dep(format!("{layer} Cu seed deposition")));
            s.push(metz(format!("{layer} Cu electroplating")));
            s.push(metz(format!("{layer} anneal")));
            s.push(metz(format!("{layer} CMP")));
            s.push(wet(format!("{layer} post-CMP clean")));
            s.push(dep(format!("{layer} dielectric cap")));
            s.push(dry(format!("{layer} descum")));
            s.push(dry(format!("{layer} cap open")));
            for i in 1..=4 {
                s.push(met(format!("{layer} metrology {i}")));
            }
        }
        Lithography::ImmersionLele => {
            // Litho-etch-litho-etch trench + single-print via.
            s.push(dep(format!("{layer} ILD deposition")));
            s.push(ProcessStep::litho(
                LithoTool::Immersion,
                format!("{layer} via exposure"),
            ));
            s.push(dry(format!("{layer} via etch")));
            s.push(dep(format!("{layer} trench hard mask A")));
            s.push(ProcessStep::litho(
                LithoTool::Immersion,
                format!("{layer} trench exposure A"),
            ));
            s.push(dry(format!("{layer} trench etch A")));
            s.push(dep(format!("{layer} trench hard mask B")));
            s.push(ProcessStep::litho(
                LithoTool::Immersion,
                format!("{layer} trench exposure B"),
            ));
            s.push(dry(format!("{layer} trench etch B")));
            s.push(dry(format!("{layer} hard-mask strip")));
            s.push(dry(format!("{layer} final trench transfer")));
            s.push(dry(format!("{layer} descum")));
            s.push(wet(format!("{layer} post-etch clean")));
            s.push(dep(format!("{layer} barrier/liner deposition")));
            s.push(dep(format!("{layer} Cu seed deposition")));
            s.push(metz(format!("{layer} Cu electroplating")));
            s.push(metz(format!("{layer} anneal")));
            s.push(metz(format!("{layer} CMP")));
            s.push(wet(format!("{layer} post-CMP clean")));
            s.push(dep(format!("{layer} dielectric cap")));
            for i in 1..=5 {
                s.push(met(format!("{layer} metrology {i}")));
            }
        }
        Lithography::ImmersionSingle => {
            s.push(dep(format!("{layer} ILD deposition")));
            s.push(ProcessStep::litho(
                LithoTool::Immersion,
                format!("{layer} via exposure"),
            ));
            s.push(dry(format!("{layer} via etch")));
            s.push(ProcessStep::litho(
                LithoTool::Immersion,
                format!("{layer} trench exposure"),
            ));
            s.push(dry(format!("{layer} trench etch")));
            s.push(dry(format!("{layer} hard-mask strip")));
            s.push(dry(format!("{layer} descum")));
            s.push(wet(format!("{layer} post-etch clean")));
            s.push(dep(format!("{layer} barrier/liner deposition")));
            s.push(dep(format!("{layer} Cu seed deposition")));
            s.push(metz(format!("{layer} Cu electroplating")));
            s.push(metz(format!("{layer} anneal")));
            s.push(metz(format!("{layer} CMP")));
            s.push(wet(format!("{layer} post-CMP clean")));
            s.push(dep(format!("{layer} dielectric cap")));
            for i in 1..=3 {
                s.push(met(format!("{layer} metrology {i}")));
            }
        }
    }
    s
}

/// The step sequence of one CNFET device tier (paper Sec. II-C): oxide +
/// wet-incubation CNT deposition, O₂-plasma active patterning, S/D
/// formation, high-k deposition, gate formation, S/D expose, and tier vias.
pub fn cnfet_tier_steps() -> Vec<ProcessStep> {
    let mut s = Vec::new();
    let dep = |l: &str| ProcessStep::new(ProcessArea::Deposition, l);
    let dry = |l: &str| ProcessStep::new(ProcessArea::DryEtch, l);
    let wet = |l: &str| ProcessStep::new(ProcessArea::WetEtch, l);
    s.push(dep("CNFET tier isolation oxide"));
    s.push(dep("CNT wet-incubation deposition (~2 nm)"));
    s.push(wet("CNT incubation rinse"));
    s.push(ProcessStep::litho(LithoTool::Euv, "CNFET active exposure"));
    s.push(dry("CNFET active O2-plasma etch"));
    s.push(ProcessStep::litho(LithoTool::Euv, "CNFET S/D exposure"));
    s.push(dep("CNFET S/D electrode deposition (40 nm)"));
    s.push(wet("CNFET S/D lift-off"));
    s.push(dep("CNFET high-k dielectric (2 nm)"));
    s.push(ProcessStep::litho(LithoTool::Euv, "CNFET gate exposure"));
    s.push(dep("CNFET gate metal deposition (30 nm)"));
    s.push(dry("CNFET gate etch"));
    s.push(wet("CNFET S/D expose wet etch"));
    s.push(ProcessStep::litho(
        LithoTool::Euv,
        "CNFET tier-via exposure",
    ));
    s.push(dry("CNFET tier-via etch"));
    s.push(dep("CNFET tier-via fill"));
    s.push(ProcessStep::new(
        ProcessArea::Metallization,
        "CNFET tier-via CMP",
    ));
    s.push(wet("CNFET post-CMP clean"));
    for i in 1..=6 {
        s.push(ProcessStep::new(
            ProcessArea::Metrology,
            format!("CNFET tier metrology {i}"),
        ));
    }
    s
}

/// The step sequence of one IGZO device tier: RF-sputtered channel,
/// wet-etched active, S/D, ALD high-k, gate, and tier vias.
pub fn igzo_tier_steps() -> Vec<ProcessStep> {
    let mut s = Vec::new();
    let dep = |l: &str| ProcessStep::new(ProcessArea::Deposition, l);
    let dry = |l: &str| ProcessStep::new(ProcessArea::DryEtch, l);
    let wet = |l: &str| ProcessStep::new(ProcessArea::WetEtch, l);
    s.push(dep("IGZO RF-sputter deposition (10 nm)"));
    s.push(ProcessStep::litho(LithoTool::Euv, "IGZO active exposure"));
    s.push(wet("IGZO active wet etch"));
    s.push(ProcessStep::litho(LithoTool::Euv, "IGZO S/D exposure"));
    s.push(dep("IGZO S/D electrode deposition"));
    s.push(wet("IGZO S/D lift-off"));
    s.push(dep("IGZO ALD gate insulator (4 nm)"));
    s.push(ProcessStep::litho(LithoTool::Euv, "IGZO gate exposure"));
    s.push(dep("IGZO gate metal deposition"));
    s.push(dry("IGZO gate etch"));
    s.push(ProcessStep::litho(LithoTool::Euv, "IGZO tier-via exposure"));
    s.push(dry("IGZO tier-via etch"));
    s.push(dep("IGZO tier-via fill"));
    s.push(ProcessStep::new(
        ProcessArea::Metallization,
        "IGZO tier-via CMP",
    ));
    s.push(wet("IGZO post-CMP clean"));
    for i in 1..=6 {
        s.push(ProcessStep::new(
            ProcessArea::Metrology,
            format!("IGZO tier metrology {i}"),
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn db() -> StepEnergies {
        StepEnergies::calibrated_7nm()
    }

    fn seq_energy(steps: &[ProcessStep]) -> f64 {
        steps
            .iter()
            .map(|s| db().energy(s).as_kilowatt_hours())
            .sum()
    }

    #[test]
    fn euv_pair_counts_match_design() {
        let steps = metal_via_pair_steps("M1", Lithography::EuvSingle);
        let euv = steps
            .iter()
            .filter(|s| s.tool == Some(LithoTool::Euv))
            .count();
        assert_eq!(euv, 2);
        let dep = steps
            .iter()
            .filter(|s| s.area == ProcessArea::Deposition)
            .count();
        assert_eq!(dep, 5);
    }

    #[test]
    fn pair_energies_by_pitch() {
        // The calibrated database places an EUV pair at ~37.8 kWh, a LELE
        // pair at ~33.4 kWh and a single-immersion pair at ~20.7 kWh.
        let e36 = seq_energy(&metal_via_pair_steps("M1", Lithography::EuvSingle));
        let e48 = seq_energy(&metal_via_pair_steps("M4", Lithography::ImmersionLele));
        let e64 = seq_energy(&metal_via_pair_steps("M6", Lithography::ImmersionSingle));
        assert!(approx_eq(e36, 37.84, 0.01), "E36 = {e36}");
        assert!(approx_eq(e48, 30.56, 0.01), "E48 = {e48}");
        assert!(approx_eq(e64, 22.09, 0.01), "E64 = {e64}");
        assert!(e36 > e48 && e48 > e64);
    }

    #[test]
    fn device_tiers_cost_more_than_a_metal_layer() {
        let e_cn = seq_energy(&cnfet_tier_steps());
        let e_ig = seq_energy(&igzo_tier_steps());
        let e36 = seq_energy(&metal_via_pair_steps("M1", Lithography::EuvSingle));
        assert!(e_cn > e36 && e_ig > e36);
        assert!(approx_eq(e_cn, 52.2, 0.02), "E_CNFET tier = {e_cn}");
        assert!(approx_eq(e_ig, 49.0, 0.02), "E_IGZO tier = {e_ig}");
    }

    #[test]
    fn all_si_epa_matches_paper() {
        let flow = ProcessFlow::for_technology(Technology::AllSi);
        let epa = flow.epa(&db()).as_kilowatt_hours();
        assert!(approx_eq(epa, 699.0, 0.005), "all-Si EPA = {epa}");
        let beol = flow.beol_epa(&db()).as_kilowatt_hours();
        assert!(approx_eq(beol, 263.0, 0.005), "all-Si BEOL = {beol}");
    }

    #[test]
    fn m3d_epa_matches_paper() {
        let flow = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
        let epa = flow.epa(&db()).as_kilowatt_hours();
        assert!(approx_eq(epa, 1079.5, 0.005), "M3D EPA = {epa}");
    }

    #[test]
    fn m3d_to_all_si_energy_ratio() {
        // Sec. II-B: GPA scale factors 1.22× (M3D) and 0.79× (all-Si)
        // relative to iN7 imply an M3D/all-Si EPA ratio of ~1.54.
        let si = ProcessFlow::for_technology(Technology::AllSi).epa(&db());
        let m3d = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi).epa(&db());
        assert!(approx_eq(m3d / si, 1.22 / 0.79, 0.01));
    }

    #[test]
    fn step_count_matrix_shape() {
        let flow = ProcessFlow::for_technology(Technology::AllSi);
        let rows = flow.step_counts();
        // 2 litho rows + 5 other areas.
        assert_eq!(rows.len(), 7);
        let euv = rows
            .iter()
            .find(|(a, t, _)| *a == ProcessArea::Lithography && *t == Some(LithoTool::Euv))
            .expect("EUV row exists");
        assert_eq!(euv.2, 6); // 3 EUV layers × 2 exposures
        let total: usize = rows.iter().map(|(_, _, n)| n).sum();
        assert_eq!(total, flow.steps().len());
    }

    #[test]
    fn area_breakdown_covers_all_steps() {
        let steps = metal_via_pair_steps("M2", Lithography::EuvSingle);
        let rows = area_breakdown(&steps, &db());
        let n: usize = rows.iter().map(|(_, c, _)| c).sum();
        assert_eq!(n, steps.len());
        let total: f64 = rows.iter().map(|(_, _, e)| e.as_kilowatt_hours()).sum();
        assert!(approx_eq(total, seq_energy(&steps), 1e-12));
    }
}
