//! Embodied-carbon models of fabrication processes (paper Section II).
//!
//! The total embodied carbon of a wafer is (Eq. 2):
//!
//! ```text
//! C_embodied = (MPA + GPA + CI_fab · EPA_f) · Area
//! ```
//!
//! - **EPA** (electrical energy per area) comes from a per-step energy
//!   database ([`steps`]) multiplied by the step counts of a process flow
//!   ([`flow`]) — the matrix product of the paper's Eq. 4. Flows are derived
//!   structurally from the [`ppatc_pdk`] layer stacks: every metal/via pair
//!   contributes a patterning sequence appropriate to its pitch, and each
//!   CNFET/IGZO device tier contributes its own deposition/patterning
//!   sequence. `EPA_f = 1.4 × EPA` adds the ITRS facility overhead.
//! - **MPA** (materials per area) is dominated by the Si substrate
//!   (500 gCO₂e/cm²); CNT synthesis and IGZO sputter targets add a
//!   vanishingly small amount ([`materials`]).
//! - **GPA** (direct gas emissions per area) scales the published imec iN7
//!   value by the ratio of fabrication energies (Eq. 3, [`carbon`]).
//! - **CI_fab** is the grid carbon intensity at the foundry ([`grid`]).
//!
//! # Example: reproduce Fig. 2c's U.S.-grid bars
//!
//! ```
//! use ppatc_fab::carbon::EmbodiedModel;
//! use ppatc_fab::grid;
//! use ppatc_pdk::Technology;
//!
//! let model = EmbodiedModel::paper_default();
//! let si = model.embodied_per_wafer(Technology::AllSi, grid::US);
//! let m3d = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US);
//! assert!((si.total().as_kilograms() - 837.0).abs() < 9.0);
//! assert!((m3d.total().as_kilograms() - 1100.0).abs() < 11.0);
//! ```

#![warn(missing_docs)]

pub mod act;
pub mod carbon;
pub mod cost;
pub mod flow;
pub mod grid;
pub mod materials;
pub mod steps;
pub mod water;

pub use carbon::{EmbodiedBreakdown, EmbodiedModel};
pub use flow::ProcessFlow;
pub use grid::Grid;
pub use steps::{LithoTool, ProcessArea, ProcessStep, StepEnergies};
