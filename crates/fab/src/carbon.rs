//! The per-wafer embodied-carbon model (Eqs. 2 and 3, Fig. 2c).

use crate::flow::ProcessFlow;
use crate::grid::Grid;
use crate::materials;
use crate::steps::StepEnergies;
use ppatc_pdk::{Technology, TierKind};
use ppatc_units::{Area, CarbonArea, CarbonMass, Energy, Length};

/// Reference EPA of the imec iN7 EUV node, kWh per 300 mm wafer, used to
/// scale GPA (Eq. 3). The paper reports its processes at 0.79× and 1.22× of
/// this reference.
pub const EPA_IN7_KWH: f64 = 885.0;

/// Published GPA of the imec iN7 EUV node, kgCO₂e/cm².
pub const GPA_IN7_KG_PER_CM2: f64 = 0.20;

/// ITRS facility-energy overhead: `EPA_f = 1.4 × EPA`.
pub const FACILITY_OVERHEAD: f64 = 1.4;

/// The complete embodied-carbon model of Section II.
///
/// ```
/// use ppatc_fab::{grid, EmbodiedModel};
/// use ppatc_pdk::Technology;
///
/// let model = EmbodiedModel::paper_default();
/// let m3d = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US);
/// // Table II: 1100 kgCO2e per M3D wafer on the U.S. grid.
/// assert!((m3d.total().as_kilograms() - 1100.0).abs() < 11.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct EmbodiedModel {
    step_energies: StepEnergies,
    wafer_diameter: Length,
    facility_overhead: f64,
    epa_reference: Energy,
    gpa_reference: CarbonArea,
}

impl EmbodiedModel {
    /// The model with all constants as used in the paper: calibrated 7 nm
    /// step energies, 300 mm wafers, 1.4× facility overhead, and the iN7
    /// GPA/EPA references.
    pub fn paper_default() -> Self {
        Self {
            step_energies: StepEnergies::calibrated_7nm(),
            wafer_diameter: Length::from_millimeters(300.0),
            facility_overhead: FACILITY_OVERHEAD,
            epa_reference: Energy::from_kilowatt_hours(EPA_IN7_KWH),
            gpa_reference: CarbonArea::from_kg_per_cm2(GPA_IN7_KG_PER_CM2),
        }
    }

    /// Replaces the step-energy database (e.g. a [`StepEnergies::scaled`]
    /// copy for uncertainty analysis).
    #[must_use]
    pub fn with_step_energies(mut self, step_energies: StepEnergies) -> Self {
        self.step_energies = step_energies;
        self
    }

    /// Replaces the facility overhead factor.
    ///
    /// # Panics
    ///
    /// Panics if `overhead < 1`.
    #[must_use]
    pub fn with_facility_overhead(mut self, overhead: f64) -> Self {
        assert!(overhead >= 1.0, "facility overhead must be at least 1");
        self.facility_overhead = overhead;
        self
    }

    /// The step-energy database in use.
    pub fn step_energies(&self) -> &StepEnergies {
        &self.step_energies
    }

    /// Wafer area implied by the configured diameter.
    pub fn wafer_area(&self) -> Area {
        Area::of_wafer(self.wafer_diameter)
    }

    /// EPA of a flow (before facility overhead), per wafer.
    pub fn epa(&self, flow: &ProcessFlow) -> Energy {
        flow.epa(&self.step_energies)
    }

    /// GPA of a flow via Eq. 3: the iN7 value scaled by the EPA ratio.
    pub fn gpa(&self, flow: &ProcessFlow) -> CarbonArea {
        let ratio = self.epa(flow) / self.epa_reference;
        self.gpa_reference * ratio
    }

    /// MPA for a technology (substrate + emerging-material additions).
    pub fn mpa(&self, technology: Technology) -> CarbonArea {
        let stack = technology.stack();
        materials::process_mpa(
            self.wafer_area(),
            stack.tier_count(TierKind::Cnfet),
            stack.tier_count(TierKind::Igzo),
        )
    }

    /// Full Eq. 2 evaluation for one technology on one grid.
    pub fn embodied_per_wafer(&self, technology: Technology, fab_grid: Grid) -> EmbodiedBreakdown {
        let flow = ProcessFlow::for_technology(technology);
        self.embodied_per_wafer_for_flow(&flow, technology, fab_grid)
    }

    /// Eq. 2 for an explicit flow (allows custom stacks); `technology`
    /// selects the materials model.
    pub fn embodied_per_wafer_for_flow(
        &self,
        flow: &ProcessFlow,
        technology: Technology,
        fab_grid: Grid,
    ) -> EmbodiedBreakdown {
        let area = self.wafer_area();
        let epa = self.epa(flow);
        let epa_f = epa * self.facility_overhead;
        EmbodiedBreakdown {
            technology,
            grid: fab_grid,
            wafer_area: area,
            materials: self.mpa(technology) * area,
            gases: self.gpa(flow) * area,
            fab_electricity: fab_grid.ci() * epa_f,
            epa,
        }
    }
}

impl Default for EmbodiedModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// The MPA/GPA/electricity decomposition of one wafer's embodied carbon.
#[derive(Clone, Debug, PartialEq)]
pub struct EmbodiedBreakdown {
    technology: Technology,
    grid: Grid,
    wafer_area: Area,
    materials: CarbonMass,
    gases: CarbonMass,
    fab_electricity: CarbonMass,
    epa: Energy,
}

impl EmbodiedBreakdown {
    /// Technology this breakdown describes.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Fabrication grid used for the electricity term.
    pub fn grid(&self) -> Grid {
        self.grid
    }

    /// Materials-procurement carbon (MPA × area).
    pub fn materials(&self) -> CarbonMass {
        self.materials
    }

    /// Direct gas-emission carbon (GPA × area).
    pub fn gases(&self) -> CarbonMass {
        self.gases
    }

    /// Fabrication-electricity carbon (CI_fab × EPA_f × area), including the
    /// facility overhead.
    pub fn fab_electricity(&self) -> CarbonMass {
        self.fab_electricity
    }

    /// Pre-overhead electrical energy per wafer.
    pub fn epa(&self) -> Energy {
        self.epa
    }

    /// Total embodied carbon per wafer.
    pub fn total(&self) -> CarbonMass {
        self.materials + self.gases + self.fab_electricity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid;
    use ppatc_units::approx_eq;

    #[test]
    fn fig2c_us_grid_bars() {
        let model = EmbodiedModel::paper_default();
        let si = model.embodied_per_wafer(Technology::AllSi, grid::US);
        let m3d = model.embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US);
        assert!(
            approx_eq(si.total().as_kilograms(), 837.0, 0.005),
            "all-Si {:.1} kg",
            si.total().as_kilograms()
        );
        assert!(
            approx_eq(m3d.total().as_kilograms(), 1100.0, 0.005),
            "M3D {:.1} kg",
            m3d.total().as_kilograms()
        );
    }

    #[test]
    fn average_overhead_across_grids_is_1_31() {
        // Abstract: M3D embodied carbon is on average 1.31× the all-Si
        // process across the U.S., coal, solar, and Taiwanese grids.
        let model = EmbodiedModel::paper_default();
        let mean: f64 = grid::FIG2C_GRIDS
            .iter()
            .map(|&g| {
                let si = model.embodied_per_wafer(Technology::AllSi, g).total();
                let m3d = model
                    .embodied_per_wafer(Technology::M3dIgzoCnfetSi, g)
                    .total();
                m3d / si
            })
            .sum::<f64>()
            / 4.0;
        assert!(approx_eq(mean, 1.31, 0.01), "average ratio {mean:.4}");
    }

    #[test]
    fn gpa_scale_factors_match_paper() {
        let model = EmbodiedModel::paper_default();
        let si = ProcessFlow::for_technology(Technology::AllSi);
        let m3d = ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi);
        let si_ratio = model.epa(&si) / Energy::from_kilowatt_hours(EPA_IN7_KWH);
        let m3d_ratio = model.epa(&m3d) / Energy::from_kilowatt_hours(EPA_IN7_KWH);
        assert!(
            approx_eq(si_ratio, 0.79, 0.005),
            "all-Si ratio {si_ratio:.4}"
        );
        assert!(
            approx_eq(m3d_ratio, 1.22, 0.005),
            "M3D ratio {m3d_ratio:.4}"
        );
    }

    #[test]
    fn solar_grid_shrinks_the_gap() {
        // On a clean grid the electricity term collapses and the M3D
        // overhead drops toward the GPA+MPA-driven floor.
        let model = EmbodiedModel::paper_default();
        let ratio_solar = model
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::SOLAR)
            .total()
            / model
                .embodied_per_wafer(Technology::AllSi, grid::SOLAR)
                .total();
        let ratio_coal = model
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::COAL)
            .total()
            / model
                .embodied_per_wafer(Technology::AllSi, grid::COAL)
                .total();
        assert!(ratio_solar < ratio_coal);
        assert!(ratio_solar > 1.0, "M3D always costs more to fabricate");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = EmbodiedModel::paper_default();
        let b = model.embodied_per_wafer(Technology::AllSi, grid::TAIWAN);
        let sum = b.materials() + b.gases() + b.fab_electricity();
        assert!(approx_eq(sum.as_grams(), b.total().as_grams(), 1e-12));
    }

    #[test]
    fn facility_overhead_is_epa_only() {
        // Removing the overhead must reduce exactly the electricity term by 1.4×.
        let base = EmbodiedModel::paper_default();
        let no_oh = EmbodiedModel::paper_default().with_facility_overhead(1.0);
        let b1 = base.embodied_per_wafer(Technology::AllSi, grid::US);
        let b2 = no_oh.embodied_per_wafer(Technology::AllSi, grid::US);
        assert!(approx_eq(
            b1.fab_electricity().as_grams(),
            1.4 * b2.fab_electricity().as_grams(),
            1e-12
        ));
        assert!(approx_eq(
            b1.gases().as_grams(),
            b2.gases().as_grams(),
            1e-12
        ));
    }

    #[test]
    fn scaled_step_energies_scale_the_electricity_term() {
        let model = EmbodiedModel::paper_default();
        let scaled = EmbodiedModel::paper_default()
            .with_step_energies(StepEnergies::calibrated_7nm().scaled(2.0));
        let b1 = model.embodied_per_wafer(Technology::AllSi, grid::US);
        let b2 = scaled.embodied_per_wafer(Technology::AllSi, grid::US);
        // BEOL doubles but the FEOL block does not, so the increase is
        // bounded by 2× and well above 1×.
        let ratio = b2.fab_electricity() / b1.fab_electricity();
        assert!(ratio > 1.3 && ratio < 2.0, "electricity ratio {ratio}");
    }
}
