//! Water-footprint extension (the paper's conclusion: "this type of
//! analysis can be extended to consider factors such as ... water
//! consumption").
//!
//! Semiconductor fabs are prodigious water consumers — several cubic metres
//! of ultra-pure water (UPW) per wafer, each litre of which takes roughly
//! 1.4–2.5 litres of municipal supply to produce. The per-step structure of
//! the Eq. 4 energy model transfers directly: assign each process area a
//! UPW demand per pass, multiply by the step counts of a flow, and the M3D
//! process's extra layers show up as extra water exactly the way they show
//! up as extra carbon.

use crate::flow::ProcessFlow;
use crate::steps::{ProcessArea, ProcessStep};
use ppatc_units::Volume;

/// UPW demand per step, litres per wafer pass, by process area.
///
/// Wet processing dominates: wet etch/clean benches and CMP rinses are the
/// thirstiest steps; plasma and metrology steps need almost nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct WaterModel {
    litres_lithography: f64,
    litres_deposition: f64,
    litres_dry_etch: f64,
    litres_wet_etch: f64,
    litres_metallization: f64,
    litres_metrology: f64,
    /// FEOL block demand (the iN7-equivalent front end), litres per wafer.
    feol_litres: f64,
    /// Municipal litres consumed per UPW litre produced.
    upw_overhead: f64,
}

impl WaterModel {
    /// Industry-plausible 7 nm-class values: ~4–6 m³ UPW per finished
    /// wafer, with a 1.6× raw-water multiplier.
    pub fn typical_7nm() -> Self {
        Self {
            litres_lithography: 14.0, // develop + rinse tracks
            litres_deposition: 7.0,
            litres_dry_etch: 4.0,
            litres_wet_etch: 30.0,
            litres_metallization: 24.0, // plating + CMP rinse
            litres_metrology: 1.0,
            feol_litres: 2600.0, // litres UPW per wafer, FEOL aggregate
            upw_overhead: 1.6,
        }
    }

    /// UPW demand of one step.
    pub fn litres_for(&self, step: &ProcessStep) -> Volume {
        Volume::from_litres(match step.area {
            ProcessArea::Lithography => self.litres_lithography,
            ProcessArea::Deposition => self.litres_deposition,
            ProcessArea::DryEtch => self.litres_dry_etch,
            ProcessArea::WetEtch => self.litres_wet_etch,
            ProcessArea::Metallization => self.litres_metallization,
            ProcessArea::Metrology => self.litres_metrology,
        })
    }

    /// UPW consumed to fabricate one wafer with the given flow.
    pub fn upw_per_wafer(&self, flow: &ProcessFlow) -> Volume {
        Volume::from_litres(self.feol_litres)
            + flow
                .steps()
                .iter()
                .map(|s| self.litres_for(s))
                .sum::<Volume>()
    }

    /// Raw (municipal) water per wafer — UPW × production overhead.
    pub fn raw_water_per_wafer(&self, flow: &ProcessFlow) -> Volume {
        self.upw_per_wafer(flow) * self.upw_overhead
    }

    /// Raw water per *good die*, mirroring Eq. 5.
    ///
    /// # Panics
    ///
    /// Panics unless `good_dies_per_wafer` is positive.
    pub fn raw_water_per_good_die(&self, flow: &ProcessFlow, good_dies_per_wafer: f64) -> Volume {
        assert!(good_dies_per_wafer > 0.0, "need at least one good die");
        self.raw_water_per_wafer(flow) / good_dies_per_wafer
    }
}

impl Default for WaterModel {
    fn default() -> Self {
        Self::typical_7nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_pdk::Technology;

    fn flows() -> (ProcessFlow, ProcessFlow) {
        (
            ProcessFlow::for_technology(Technology::AllSi),
            ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi),
        )
    }

    #[test]
    fn per_wafer_magnitude_is_cubic_metres() {
        let model = WaterModel::typical_7nm();
        let (si, m3d) = flows();
        for f in [&si, &m3d] {
            let m3 = model.upw_per_wafer(f).as_cubic_meters();
            assert!((3.0..10.0).contains(&m3), "{}: {m3:.1} m³", f.name());
        }
    }

    #[test]
    fn m3d_uses_more_water() {
        let model = WaterModel::typical_7nm();
        let (si, m3d) = flows();
        let ratio = model.upw_per_wafer(&m3d) / model.upw_per_wafer(&si);
        // More layers, more wet steps — but the FEOL dominates water the
        // way it dominates energy, so the overhead is moderate.
        assert!((1.1..1.8).contains(&ratio), "water ratio {ratio:.2}");
    }

    #[test]
    fn raw_water_applies_the_upw_overhead() {
        let model = WaterModel::typical_7nm();
        let (si, _) = flows();
        let upw = model.upw_per_wafer(&si);
        let raw = model.raw_water_per_wafer(&si);
        assert!((raw / upw - 1.6).abs() < 1e-12);
    }

    #[test]
    fn per_good_die_scales_like_eq5() {
        let model = WaterModel::typical_7nm();
        let (si, _) = flows();
        let at_90 = model.raw_water_per_good_die(&si, 299_127.0 * 0.9);
        let at_45 = model.raw_water_per_good_die(&si, 299_127.0 * 0.45);
        assert!((at_45 / at_90 - 2.0).abs() < 1e-9);
        // Tens of millilitres per good embedded die.
        let litres = at_90.as_litres();
        assert!(litres > 0.01 && litres < 0.1, "{litres:.3} L/die");
    }

    #[test]
    fn wet_steps_dominate_the_beol_water() {
        let model = WaterModel::typical_7nm();
        let (_, m3d) = flows();
        let wet: Volume = m3d
            .steps()
            .iter()
            .filter(|s| matches!(s.area, ProcessArea::WetEtch | ProcessArea::Metallization))
            .map(|s| model.litres_for(s))
            .sum();
        let total_beol: Volume = m3d.steps().iter().map(|s| model.litres_for(s)).sum();
        assert!(wet / total_beol > 0.5, "wet share {:.2}", wet / total_beol);
    }
}
