//! Cross-validation against ACT (Gupta et al., ISCA 2022).
//!
//! The paper positions itself relative to ACT — "the Architectural Carbon
//! modeling Tool ... primarily focuses on today's silicon-based
//! technologies". ACT publishes per-area carbon parameters for logic nodes
//! (energy per area, gas per area, materials per area) gathered from
//! industry sustainability reports; this module encodes its 7 nm-class
//! parameters so our bottom-up all-Si flow can be checked against that
//! independent, top-down source.

use crate::grid::Grid;
use ppatc_units::{Area, CarbonMass, Energy};

/// ACT-style per-area fabrication parameters for one logic node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActNode {
    /// Node label, e.g. `"7nm"`.
    pub label: &'static str,
    /// Fabrication energy per area, kWh/cm².
    pub epa_kwh_per_cm2: f64,
    /// Direct gas emissions per area, kgCO₂e/cm².
    pub gpa_kg_per_cm2: f64,
    /// Materials (procurement) per area, kgCO₂e/cm².
    pub mpa_kg_per_cm2: f64,
}

impl ActNode {
    /// ACT's 7 nm-class parameter set (industry-report aggregates: ~1 to
    /// 1.5 kWh/cm² of fab energy, 0.2 kg/cm² of gases, 0.5 kg/cm² of
    /// materials).
    pub fn n7() -> Self {
        Self {
            label: "7nm",
            epa_kwh_per_cm2: 1.2,
            gpa_kg_per_cm2: 0.2,
            mpa_kg_per_cm2: 0.5,
        }
    }

    /// ACT's 14 nm-class parameters (fewer steps, less energy).
    pub fn n14() -> Self {
        Self {
            label: "14nm",
            epa_kwh_per_cm2: 0.9,
            gpa_kg_per_cm2: 0.15,
            mpa_kg_per_cm2: 0.5,
        }
    }

    /// ACT Eq.-style embodied carbon for `area` fabricated on `grid`:
    /// `CI_fab · EPA + GPA + MPA` per area.
    pub fn embodied(&self, area: Area, grid: Grid) -> CarbonMass {
        let cm2 = area.as_square_centimeters();
        let electricity = grid.ci() * Energy::from_kilowatt_hours(self.epa_kwh_per_cm2 * cm2);
        let gases = CarbonMass::from_kilograms(self.gpa_kg_per_cm2 * cm2);
        let materials = CarbonMass::from_kilograms(self.mpa_kg_per_cm2 * cm2);
        electricity + gases + materials
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{grid, EmbodiedModel};
    use ppatc_pdk::Technology;
    use ppatc_units::Length;

    #[test]
    fn our_all_si_flow_lands_inside_acts_7nm_band() {
        // Bottom-up (this crate) vs. top-down (ACT) for a full 300 mm
        // all-Si wafer on the U.S. grid: the two independent methods must
        // agree within ~30%.
        let wafer = Area::of_wafer(Length::from_millimeters(300.0));
        let act = ActNode::n7().embodied(wafer, grid::US);
        let ours = EmbodiedModel::paper_default()
            .embodied_per_wafer(Technology::AllSi, grid::US)
            .total();
        let ratio = ours / act;
        assert!(
            (0.7..1.3).contains(&ratio),
            "bottom-up/ACT ratio {ratio:.2} (ours {:.0} kg vs ACT {:.0} kg)",
            ours.as_kilograms(),
            act.as_kilograms()
        );
    }

    #[test]
    fn act_cannot_see_the_m3d_premium() {
        // The motivating gap: ACT's per-node numbers are area-only, so the
        // M3D process (same area, more layers) costs the *same* under ACT —
        // while the bottom-up flow correctly charges it ~31% more. This is
        // exactly the modeling hole the paper fills.
        let wafer = Area::of_wafer(Length::from_millimeters(300.0));
        let act_si = ActNode::n7().embodied(wafer, grid::US);
        let act_m3d = ActNode::n7().embodied(wafer, grid::US); // no knob to turn
        assert_eq!(act_si, act_m3d);
        let ours = EmbodiedModel::paper_default();
        let ratio = ours
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, grid::US)
            .total()
            / ours.embodied_per_wafer(Technology::AllSi, grid::US).total();
        assert!(ratio > 1.25);
    }

    #[test]
    fn newer_nodes_cost_more_under_act_too() {
        let die = Area::from_square_centimeters(1.0);
        let n7 = ActNode::n7().embodied(die, grid::TAIWAN);
        let n14 = ActNode::n14().embodied(die, grid::TAIWAN);
        assert!(n7 > n14);
    }

    #[test]
    fn grid_sensitivity_matches_eq2_structure() {
        let die = Area::from_square_centimeters(1.0);
        let solar = ActNode::n7().embodied(die, grid::SOLAR);
        let coal = ActNode::n7().embodied(die, grid::COAL);
        // Gases + materials put a floor under the clean-grid footprint.
        assert!(solar.as_kilograms() > 0.69);
        assert!(coal > solar);
    }
}
