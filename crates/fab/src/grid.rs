//! Electricity-grid carbon intensities.

use ppatc_units::CarbonIntensity;

/// A named electricity grid with its average carbon intensity.
///
/// The four grids of the paper's Fig. 2c are provided as constants; build
/// custom grids with [`Grid::new`].
///
/// ```
/// use ppatc_fab::grid;
///
/// assert_eq!(grid::US.ci().as_g_per_kwh(), 380.0);
/// assert!(grid::SOLAR.ci() < grid::COAL.ci());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grid {
    name: &'static str,
    g_per_kwh: f64,
}

/// U.S. average grid (380 gCO₂e/kWh).
pub const US: Grid = Grid {
    name: "U.S.",
    g_per_kwh: 380.0,
};

/// Coal-dominated grid (820 gCO₂e/kWh).
pub const COAL: Grid = Grid {
    name: "coal",
    g_per_kwh: 820.0,
};

/// Solar generation (48 gCO₂e/kWh life-cycle).
pub const SOLAR: Grid = Grid {
    name: "solar",
    g_per_kwh: 48.0,
};

/// Taiwanese grid (563 gCO₂e/kWh) — where most leading-edge fabs operate.
pub const TAIWAN: Grid = Grid {
    name: "Taiwan",
    g_per_kwh: 563.0,
};

/// The four grids of Fig. 2c, in the paper's order.
pub const FIG2C_GRIDS: [Grid; 4] = [US, COAL, SOLAR, TAIWAN];

impl Grid {
    /// Creates a custom grid.
    ///
    /// # Panics
    ///
    /// Panics if the intensity is negative.
    pub fn new(name: &'static str, g_per_kwh: f64) -> Self {
        assert!(g_per_kwh >= 0.0, "carbon intensity must be non-negative");
        Self { name, g_per_kwh }
    }

    /// Grid name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Carbon intensity of this grid.
    pub fn ci(&self) -> CarbonIntensity {
        CarbonIntensity::from_g_per_kwh(self.g_per_kwh)
    }

    /// Returns a copy with the intensity scaled by `factor` — the Fig. 6b
    /// CI-uncertainty knob.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor >= 0.0, "scale factor must be non-negative");
        Self {
            name: self.name,
            g_per_kwh: self.g_per_kwh * factor,
        }
    }
}

impl core::fmt::Display for Grid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} ({} gCO₂e/kWh)", self.name, self.g_per_kwh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_values() {
        assert_eq!(US.ci().as_g_per_kwh(), 380.0);
        assert_eq!(COAL.ci().as_g_per_kwh(), 820.0);
        assert_eq!(SOLAR.ci().as_g_per_kwh(), 48.0);
        assert_eq!(TAIWAN.ci().as_g_per_kwh(), 563.0);
    }

    #[test]
    fn scaling() {
        let tripled = US.scaled(3.0);
        assert_eq!(tripled.ci().as_g_per_kwh(), 1140.0);
        assert_eq!(tripled.name(), "U.S.");
    }

    #[test]
    fn display_format() {
        assert_eq!(US.to_string(), "U.S. (380 gCO₂e/kWh)");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ci_panics() {
        let _ = Grid::new("bad", -1.0);
    }
}
