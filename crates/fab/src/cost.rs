//! Wafer-cost extension (the paper's conclusion: "extended to consider
//! factors such as **cost**, new materials and processes, ...").
//!
//! Fabrication cost follows the same per-step structure as fabrication
//! energy: every pass through a tool carries an amortized
//! capital-plus-operations cost, lithography (above all EUV) dominates, and
//! the M3D process pays for its extra tiers step by step. Combined with the
//! die/yield models this answers the companion question to the paper's
//! carbon one: *what does the M3D flexibility cost in dollars per good
//! die?*

use crate::flow::ProcessFlow;
use crate::steps::{LithoTool, ProcessArea, ProcessStep};

/// Amortized cost per wafer pass by process area, U.S. dollars.
///
/// Calibrated so the complete all-Si flow lands near the widely quoted
/// ~$9,000–10,000 per 7 nm-class wafer, with EUV exposures (a ~$150M
/// scanner over its depreciation life) as the single largest line item.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    usd_euv_exposure: f64,
    usd_immersion_exposure: f64,
    usd_deposition: f64,
    usd_dry_etch: f64,
    usd_wet_etch: f64,
    usd_metallization: f64,
    usd_metrology: f64,
    /// FEOL block cost (FinFET front end + MOL), $ per wafer.
    feol_usd: f64,
    /// Raw wafer + consumable materials, $ per wafer.
    materials_usd: f64,
}

impl CostModel {
    /// The calibrated 7 nm-class cost set.
    pub fn typical_7nm() -> Self {
        Self {
            usd_euv_exposure: 85.0,
            usd_immersion_exposure: 25.0,
            usd_deposition: 12.0,
            usd_dry_etch: 13.0,
            usd_wet_etch: 5.0,
            usd_metallization: 14.0,
            usd_metrology: 4.0,
            feol_usd: 4200.0, // USD per wafer, FEOL aggregate
            materials_usd: 500.0,
        }
    }

    /// Cost of one step.
    pub fn usd_for(&self, step: &ProcessStep) -> f64 {
        match (step.area, step.tool) {
            (ProcessArea::Lithography, Some(LithoTool::Euv)) => self.usd_euv_exposure,
            (ProcessArea::Lithography, _) => self.usd_immersion_exposure,
            (ProcessArea::Deposition, _) => self.usd_deposition,
            (ProcessArea::DryEtch, _) => self.usd_dry_etch,
            (ProcessArea::WetEtch, _) => self.usd_wet_etch,
            (ProcessArea::Metallization, _) => self.usd_metallization,
            (ProcessArea::Metrology, _) => self.usd_metrology,
        }
    }

    /// Total wafer cost for a flow: materials + FEOL + per-step BEOL.
    // ppatc-lint: allow(raw-unit-api) — USD has no physical-quantity type
    pub fn cost_per_wafer(&self, flow: &ProcessFlow) -> f64 {
        self.materials_usd
            + self.feol_usd
            + flow.steps().iter().map(|s| self.usd_for(s)).sum::<f64>()
    }

    /// Fraction of the BEOL cost spent on lithography.
    pub fn litho_share(&self, flow: &ProcessFlow) -> f64 {
        let litho: f64 = flow
            .steps()
            .iter()
            .filter(|s| s.area == ProcessArea::Lithography)
            .map(|s| self.usd_for(s))
            .sum();
        let beol: f64 = flow.steps().iter().map(|s| self.usd_for(s)).sum();
        litho / beol
    }

    /// Cost per *good* die, mirroring the carbon Eq. 5.
    ///
    /// # Panics
    ///
    /// Panics unless `good_dies_per_wafer` is positive.
    // ppatc-lint: allow(raw-unit-api) — USD has no physical-quantity type
    pub fn cost_per_good_die(&self, flow: &ProcessFlow, good_dies_per_wafer: f64) -> f64 {
        assert!(good_dies_per_wafer > 0.0, "need at least one good die");
        self.cost_per_wafer(flow) / good_dies_per_wafer
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::typical_7nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_pdk::Technology;

    fn flows() -> (ProcessFlow, ProcessFlow) {
        (
            ProcessFlow::for_technology(Technology::AllSi),
            ProcessFlow::for_technology(Technology::M3dIgzoCnfetSi),
        )
    }

    #[test]
    fn all_si_wafer_cost_is_industry_plausible() {
        let model = CostModel::typical_7nm();
        let (si, _) = flows();
        let usd = model.cost_per_wafer(&si);
        assert!((7_000.0..12_000.0).contains(&usd), "all-Si wafer ${usd:.0}");
    }

    #[test]
    fn m3d_costs_more_per_wafer_but_the_gap_narrows_per_die() {
        let model = CostModel::typical_7nm();
        let (si, m3d) = flows();
        let wafer_ratio = model.cost_per_wafer(&m3d) / model.cost_per_wafer(&si);
        assert!(wafer_ratio > 1.2, "wafer cost ratio {wafer_ratio:.2}");
        // Per good die (Table II counts + paper yields), the smaller M3D
        // die claws back most of the premium.
        let si_die = model.cost_per_good_die(&si, 299_127.0 * 0.9);
        let m3d_die = model.cost_per_good_die(&m3d, 606_238.0 * 0.5);
        let die_ratio = m3d_die / si_die;
        assert!(
            die_ratio < wafer_ratio,
            "die ratio {die_ratio:.2} vs wafer {wafer_ratio:.2}"
        );
        // Cents-per-die magnitudes.
        assert!(si_die > 0.01 && si_die < 0.10, "all-Si ${si_die:.3}/die");
    }

    #[test]
    fn litho_dominates_the_beol_cost() {
        let model = CostModel::typical_7nm();
        let (_, m3d) = flows();
        let share = model.litho_share(&m3d);
        assert!(share > 0.35, "litho share {share:.2}");
    }

    #[test]
    fn cost_and_carbon_premiums_are_correlated() {
        // Both premiums come from the same step counts, so their ratios
        // should be in the same ballpark (carbon adds grid/materials terms).
        let cost_model = CostModel::typical_7nm();
        let carbon_model = crate::EmbodiedModel::paper_default();
        let (si, m3d) = flows();
        let cost_ratio = cost_model.cost_per_wafer(&m3d) / cost_model.cost_per_wafer(&si);
        let c_si = carbon_model
            .embodied_per_wafer(Technology::AllSi, crate::grid::US)
            .total();
        let c_m3d = carbon_model
            .embodied_per_wafer(Technology::M3dIgzoCnfetSi, crate::grid::US)
            .total();
        let carbon_ratio = c_m3d / c_si;
        assert!(
            (cost_ratio - carbon_ratio).abs() < 0.35,
            "{cost_ratio:.2} vs {carbon_ratio:.2}"
        );
    }
}
