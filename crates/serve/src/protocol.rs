//! The `ppatc-serve` wire protocol: length-prefixed UTF-8 frames.
//!
//! Hand-rolled in the same spirit as the linter's lexer — no external
//! dependencies, every malformed input a typed error. A frame is:
//!
//! ```text
//! +------+------+------+------+------+------+------+------+-----------+
//! | 'P'  | 'P'  | 'Q'  | '1'  |        length (u32, BE)   |  payload  |
//! +------+------+------+------+------+------+------+------+-----------+
//! ```
//!
//! The 4-byte magic pins the protocol version; the big-endian `u32`
//! length counts payload bytes; the payload is UTF-8 text. Requests are a
//! single line `op key=value ...`; responses start with `ok` or
//! `err <kind> ...` (see [`parse_response`]). A reader rejects frames
//! whose length exceeds its configured bound *before* allocating, so an
//! adversarial header cannot balloon memory, and a half-written frame
//! (slow-loris) is bounded by the server's frame timeout, not by patience.

use std::io::Read;

/// Protocol magic: `PPQ1` (PPAtC Query, version 1).
pub const MAGIC: [u8; 4] = *b"PPQ1";

/// Bytes in a frame header: magic plus the payload length word.
pub const HEADER_BYTES: usize = 8;

/// Default upper bound on a frame payload. Generous for every query and
/// response this protocol carries (the largest health report is < 2 kB).
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// A typed wire-level failure. Everything a hostile or broken peer can do
/// to a frame maps onto one of these — never a panic, never an unbounded
/// allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic {
        /// The bytes actually received.
        found: [u8; 4],
    },
    /// The header announced a payload larger than the reader's bound.
    Oversize {
        /// Announced payload length.
        len: usize,
        /// The reader's configured maximum.
        max: usize,
    },
    /// The peer closed the connection in the middle of a frame.
    Truncated {
        /// Bytes received before the close.
        got: usize,
        /// Bytes the frame required.
        want: usize,
    },
    /// The frame took longer than the reader's frame timeout to arrive
    /// (slow-loris defense).
    Timeout,
    /// The payload was not valid UTF-8.
    NotUtf8,
    /// An underlying socket error, rendered (I/O errors are neither
    /// `Clone` nor `PartialEq`).
    Io {
        /// Human-readable description of the socket failure.
        detail: String,
    },
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {MAGIC:02x?})")
            }
            Self::Oversize { len, max } => {
                write!(f, "frame announces {len} payload bytes, limit is {max}")
            }
            Self::Truncated { got, want } => {
                write!(f, "peer closed mid-frame after {got} of {want} bytes")
            }
            Self::Timeout => write!(f, "frame did not arrive within the frame timeout"),
            Self::NotUtf8 => write!(f, "frame payload is not valid UTF-8"),
            Self::Io { detail } => write!(f, "socket error: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Wraps an I/O failure as a [`WireError::Io`].
pub(crate) fn io_error(e: &std::io::Error) -> WireError {
    WireError::Io {
        detail: e.to_string(),
    }
}

/// Encodes `payload` as one frame (header + bytes).
///
/// # Errors
///
/// [`WireError::Oversize`] when the payload exceeds `max` bytes.
#[must_use = "this returns a Result that must be handled"]
pub fn try_encode_frame(payload: &str, max: usize) -> Result<Vec<u8>, WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > max {
        return Err(WireError::Oversize {
            len: bytes.len(),
            max,
        });
    }
    let mut frame = Vec::with_capacity(HEADER_BYTES + bytes.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    frame.extend_from_slice(bytes);
    Ok(frame)
}

/// Decodes a frame header: validates the magic and returns the announced
/// payload length.
///
/// # Errors
///
/// [`WireError::BadMagic`] or [`WireError::Oversize`].
#[must_use = "this returns a Result that must be handled"]
pub fn try_decode_header(header: &[u8; HEADER_BYTES], max: usize) -> Result<usize, WireError> {
    let (magic, len_word) = header.split_at(4);
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(WireError::BadMagic { found });
    }
    let mut word = [0u8; 4];
    word.copy_from_slice(len_word);
    let len = u32::from_be_bytes(word) as usize;
    if len > max {
        return Err(WireError::Oversize { len, max });
    }
    Ok(len)
}

/// Reads one frame from a blocking reader (no timeout handling — the
/// server's connection loop layers its own poll-based deadline on top;
/// this is the simple path used by the client and by tests).
///
/// Returns `Ok(None)` on a clean close (EOF before any frame byte).
///
/// # Errors
///
/// Every [`WireError`] a malformed or interrupted frame can produce.
#[must_use = "this returns a Result that must be handled"]
pub fn try_read_frame<R: Read>(reader: &mut R, max: usize) -> Result<Option<String>, WireError> {
    let mut header = [0u8; HEADER_BYTES];
    match read_exact_or_eof(reader, &mut header)? {
        ReadOutcome::CleanClose => return Ok(None),
        ReadOutcome::Short { got } => {
            return Err(WireError::Truncated {
                got,
                want: HEADER_BYTES,
            })
        }
        ReadOutcome::Full => {}
    }
    let len = try_decode_header(&header, max)?;
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(reader, &mut payload)? {
        ReadOutcome::Full => {}
        ReadOutcome::CleanClose | ReadOutcome::Short { .. } => {
            let got = payload.iter().rev().take_while(|&&b| b == 0).count();
            return Err(WireError::Truncated {
                got: len - got.min(len),
                want: len,
            });
        }
    }
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::NotUtf8)
}

/// What a bounded `read_exact`-like loop observed.
enum ReadOutcome {
    /// The buffer was filled.
    Full,
    /// EOF before the first byte.
    CleanClose,
    /// EOF after `got` bytes but before the buffer filled.
    Short {
        /// Bytes read before the close.
        got: usize,
    },
}

/// `read_exact` that distinguishes a clean close from a mid-buffer close
/// instead of flattening both into `UnexpectedEof`.
fn read_exact_or_eof<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<ReadOutcome, WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::CleanClose),
            Ok(0) => return Ok(ReadOutcome::Short { got: filled }),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // A socket read timeout (client request deadline), typed
                // so retry layers can tell it from a torn connection.
                return Err(WireError::Timeout);
            }
            Err(e) => return Err(io_error(&e)),
        }
    }
    Ok(ReadOutcome::Full)
}

// ---------------------------------------------------------------------------
// Response grammar
// ---------------------------------------------------------------------------

/// First line of every success response.
const OK_TAG: &str = "ok";
/// First token of every error response.
const ERR_TAG: &str = "err";

/// Renders a success response: `ok\n` followed by the body.
pub fn ok_response(body: &str) -> String {
    format!("{OK_TAG}\n{body}")
}

/// Renders an error response: `err <kind> key=value ...` on one line.
/// `kind` is a stable machine-readable token (`overloaded`,
/// `deadline_exceeded`, `malformed`, `invalid`, `eval_failed`, `panic`,
/// `draining`); fields carry the structured detail (counts, hints). A
/// free-text `msg` field, when present, must be last — its value runs to
/// the end of the line.
pub fn err_response(kind: &str, fields: &[(&str, String)]) -> String {
    let mut line = format!("{ERR_TAG} {kind}");
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        line.push_str(v);
    }
    line
}

/// A response parsed back from its payload text (the client-side view).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedResponse {
    /// `true` for `ok` responses.
    pub ok: bool,
    /// `"ok"`, or the error kind token (`overloaded`, ...).
    pub kind: String,
    /// The body (everything after the `ok` line) for successes; the
    /// key=value remainder for errors.
    pub body: String,
}

impl ParsedResponse {
    /// Looks up a `key=value` field in an error response's body. For the
    /// free-text `msg` field the value runs to the end of the line.
    pub fn field(&self, key: &str) -> Option<&str> {
        if key == "msg" {
            return self.body.split_once("msg=").map(|(_, v)| v);
        }
        self.body.split_ascii_whitespace().find_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// Parses a response payload into its status, kind, and body.
///
/// # Errors
///
/// [`WireError::Io`] (with a rendered detail) when the payload fits
/// neither the `ok` nor the `err` grammar — a peer speaking a different
/// protocol.
#[must_use = "this returns a Result that must be handled"]
pub fn parse_response(payload: &str) -> Result<ParsedResponse, WireError> {
    if let Some(body) = payload.strip_prefix("ok\n") {
        return Ok(ParsedResponse {
            ok: true,
            kind: OK_TAG.to_string(),
            body: body.to_string(),
        });
    }
    if payload == OK_TAG {
        return Ok(ParsedResponse {
            ok: true,
            kind: OK_TAG.to_string(),
            body: String::new(),
        });
    }
    if let Some(rest) = payload.strip_prefix("err ") {
        let (kind, body) = match rest.split_once(' ') {
            Some((k, b)) => (k, b),
            None => (rest, ""),
        };
        if !kind.is_empty() {
            return Ok(ParsedResponse {
                ok: false,
                kind: kind.to_string(),
                body: body.to_string(),
            });
        }
    }
    Err(WireError::Io {
        detail: format!(
            "response fits neither `ok` nor `err <kind>`: {:?}",
            payload.chars().take(40).collect::<String>()
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let frame = try_encode_frame("ping", MAX_FRAME_BYTES).expect("encodes");
        assert_eq!(&frame[..4], &MAGIC);
        let mut cursor = &frame[..];
        let back = try_read_frame(&mut cursor, MAX_FRAME_BYTES).expect("reads");
        assert_eq!(back.as_deref(), Some("ping"));
    }

    #[test]
    fn empty_payload_round_trips() {
        let frame = try_encode_frame("", MAX_FRAME_BYTES).expect("encodes");
        let mut cursor = &frame[..];
        assert_eq!(
            try_read_frame(&mut cursor, MAX_FRAME_BYTES)
                .expect("reads")
                .as_deref(),
            Some("")
        );
    }

    #[test]
    fn clean_close_is_none_not_an_error() {
        let mut cursor: &[u8] = &[];
        assert_eq!(try_read_frame(&mut cursor, MAX_FRAME_BYTES), Ok(None));
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut frame = try_encode_frame("x", MAX_FRAME_BYTES).expect("encodes");
        frame[0] = b'X';
        let mut cursor = &frame[..];
        let err = try_read_frame(&mut cursor, MAX_FRAME_BYTES).expect_err("rejected");
        assert!(matches!(err, WireError::BadMagic { .. }), "{err}");
        assert!(err.to_string().contains("magic"), "{err}");
    }

    #[test]
    fn oversize_header_is_rejected_before_allocation() {
        let mut header = [0u8; HEADER_BYTES];
        header[..4].copy_from_slice(&MAGIC);
        header[4..].copy_from_slice(&u32::MAX.to_be_bytes());
        let err = try_decode_header(&header, MAX_FRAME_BYTES).expect_err("rejected");
        assert_eq!(
            err,
            WireError::Oversize {
                len: u32::MAX as usize,
                max: MAX_FRAME_BYTES
            }
        );
        // Encoding too-large payloads is symmetric.
        let big = "x".repeat(MAX_FRAME_BYTES + 1);
        assert!(matches!(
            try_encode_frame(&big, MAX_FRAME_BYTES),
            Err(WireError::Oversize { .. })
        ));
    }

    #[test]
    fn truncated_header_and_payload_are_typed() {
        let frame = try_encode_frame("hello", MAX_FRAME_BYTES).expect("encodes");
        // Close after 3 header bytes.
        let mut cursor = &frame[..3];
        assert!(matches!(
            try_read_frame(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::Truncated { got: 3, want: 8 })
        ));
        // Close mid-payload.
        let mut cursor = &frame[..HEADER_BYTES + 2];
        assert!(matches!(
            try_read_frame(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::Truncated { want: 5, .. })
        ));
    }

    #[test]
    fn non_utf8_payload_is_typed() {
        let mut frame = Vec::from(MAGIC);
        frame.extend_from_slice(&2u32.to_be_bytes());
        frame.extend_from_slice(&[0xff, 0xfe]);
        let mut cursor = &frame[..];
        assert_eq!(
            try_read_frame(&mut cursor, MAX_FRAME_BYTES),
            Err(WireError::NotUtf8)
        );
    }

    #[test]
    fn responses_render_and_parse() {
        let ok = ok_response("process=si tcdp=1.5");
        let parsed = parse_response(&ok).expect("parses");
        assert!(parsed.ok);
        assert_eq!(parsed.body, "process=si tcdp=1.5");

        let err = err_response(
            "overloaded",
            &[
                ("queue_depth", "64".to_string()),
                ("retry_after_ms", "120".to_string()),
            ],
        );
        assert_eq!(err, "err overloaded queue_depth=64 retry_after_ms=120");
        let parsed = parse_response(&err).expect("parses");
        assert!(!parsed.ok);
        assert_eq!(parsed.kind, "overloaded");
        assert_eq!(parsed.field("retry_after_ms"), Some("120"));
        assert_eq!(parsed.field("queue_depth"), Some("64"));
        assert_eq!(parsed.field("absent"), None);
    }

    #[test]
    fn msg_field_runs_to_end_of_line() {
        let err = err_response(
            "invalid",
            &[("msg", "unknown workload `fft`, try matmul-int".to_string())],
        );
        let parsed = parse_response(&err).expect("parses");
        assert_eq!(
            parsed.field("msg"),
            Some("unknown workload `fft`, try matmul-int")
        );
    }

    #[test]
    fn alien_payloads_are_rejected() {
        for bad in ["", "HTTP/1.1 200 OK", "err ", "okay"] {
            assert!(parse_response(bad).is_err(), "{bad:?} must not parse");
        }
        // A bare error kind with no fields still parses.
        let parsed = parse_response("err draining").expect("parses");
        assert_eq!(parsed.kind, "draining");
    }
}
