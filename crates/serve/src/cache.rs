//! A sharded, bounded response cache.
//!
//! Generalizes the eDRAM characterization memo cache (one global mutex
//! around a `HashMap`) to the server's concurrency profile: the key space
//! is hashed across independently locked shards so request threads rarely
//! contend, and every shard is bounded with FIFO eviction so a hostile
//! client cycling through distinct queries cannot grow the process without
//! bound. Hits are byte-identical stored responses, which is what makes
//! repeated queries byte-identical at any concurrency *for free* — the
//! first evaluation's rendering is the only rendering.

use crate::health::ServerHealth;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::Ordering;
use std::sync::Mutex;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic FNV-1a hash — stable across runs and platforms, unlike
/// `std`'s randomized `DefaultHasher`, so shard assignment (and therefore
/// eviction order) is reproducible under replay.
fn fnv1a(key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One shard: an insertion-ordered bounded map.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

/// The sharded cache. Keys are canonical query strings (see
/// [`crate::query::canonical_key`]); values are complete response
/// payloads.
#[derive(Debug)]
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

/// Locks a shard, recovering from poisoning: a panicking cache user cannot
/// leave the map half-updated (inserts are single statements), so the data
/// is still coherent.
fn lock_shard(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ResponseCache {
    /// A cache with `shards` independently locked shards of
    /// `per_shard_capacity` entries each. Both are clamped to at least 1.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = (fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks up `key`, recording the hit or miss in `health`.
    pub fn get(&self, key: &str, health: &ServerHealth) -> Option<String> {
        let found = lock_shard(self.shard(key)).map.get(key).cloned();
        if found.is_some() {
            health.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            health.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores `response` under `key`, evicting the shard's oldest entry
    /// when full. Re-inserting an existing key overwrites in place (the
    /// value is identical by construction — evaluation is deterministic).
    pub fn insert(&self, key: &str, response: &str) {
        let mut shard = lock_shard(self.shard(key));
        if shard
            .map
            .insert(key.to_string(), response.to_string())
            .is_none()
        {
            shard.order.push_back(key.to_string());
            while shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
        }
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_return_the_stored_bytes_and_count() {
        let cache = ResponseCache::new(4, 8);
        let health = ServerHealth::new();
        assert_eq!(cache.get("eval a", &health), None);
        cache.insert("eval a", "ok\nanswer");
        assert_eq!(cache.get("eval a", &health).as_deref(), Some("ok\nanswer"));
        let snap = health.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn eviction_is_fifo_and_bounded_per_shard() {
        // One shard makes eviction order fully observable.
        let cache = ResponseCache::new(1, 2);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("b", "2");
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a", &health), None, "oldest entry evicted");
        assert_eq!(cache.get("b", &health).as_deref(), Some("2"));
        assert_eq!(cache.get("c", &health).as_deref(), Some("3"));
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let cache = ResponseCache::new(1, 2);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a", &health).as_deref(), Some("1"));
    }

    #[test]
    fn zero_shards_or_capacity_clamp_to_one() {
        let cache = ResponseCache::new(0, 0);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.len(), 1, "capacity clamps to 1");
        assert!(cache.get("b", &health).is_some());
        assert!(!cache.is_empty());
    }

    #[test]
    fn shard_hash_is_deterministic() {
        assert_eq!(fnv1a("eval f=500"), fnv1a("eval f=500"));
        assert_ne!(fnv1a("eval f=500"), fnv1a("eval f=501"));
    }

    #[test]
    fn concurrent_mixed_use_stays_coherent() {
        let cache = std::sync::Arc::new(ResponseCache::new(8, 64));
        let health = std::sync::Arc::new(ServerHealth::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let health = std::sync::Arc::clone(&health);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("q{}", (t * 31 + i) % 50);
                        let value = format!("v{}", (t * 31 + i) % 50);
                        cache.insert(&key, &value);
                        if let Some(got) = cache.get(&key, &health) {
                            assert_eq!(got, value, "a key never maps to foreign bytes");
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 50);
    }
}
