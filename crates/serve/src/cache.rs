//! A sharded, bounded response cache, with an optional crash-safe journal.
//!
//! Generalizes the eDRAM characterization memo cache (one global mutex
//! around a `HashMap`) to the server's concurrency profile: the key space
//! is hashed across independently locked shards so request threads rarely
//! contend, and every shard is bounded with FIFO eviction so a hostile
//! client cycling through distinct queries cannot grow the process without
//! bound. Hits are byte-identical stored responses, which is what makes
//! repeated queries byte-identical at any concurrency *for free* — the
//! first evaluation's rendering is the only rendering.
//!
//! # Crash-safe warm-cache recovery
//!
//! A [`CacheJournal`] persists every insert as one appended-and-flushed
//! line in the PR 5 checkpoint idiom (`ppatc::checkpoint`): a fingerprinted
//! header naming the cache geometry, then hex bit-exact `(key, response)`
//! entries. Because the file is append-only and flushed per entry, the only
//! damage a `kill -9` can cause is a torn final line — recovery skips it at
//! the cost of that one entry. A malformed line *before* the tail cannot be
//! produced by a tear, so it is typed corruption and recovery refuses
//! rather than silently serving a spliced cache. On recovery the journal is
//! compacted: entries are replayed through the same FIFO eviction the live
//! cache uses, then the file is rewritten with only the survivors, so the
//! journal stays proportional to the cache bound across any number of
//! restarts. A restarted server answers previously cached queries from the
//! recovered warm path byte-identically — the journal stores the exact
//! response bytes the first evaluation rendered.

use crate::health::ServerHealth;
use ppatc::PpatcError;
use ppatc_units::rng::SplitMix64;
use std::collections::{HashMap, VecDeque};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Mutex, OnceLock};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Deterministic FNV-1a hash — stable across runs and platforms, unlike
/// `std`'s randomized `DefaultHasher`, so shard assignment (and therefore
/// eviction order) is reproducible under replay.
fn fnv1a(key: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One shard: an insertion-ordered bounded map.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, String>,
    order: VecDeque<String>,
}

/// The sharded cache. Keys are canonical query strings (see
/// [`crate::query::canonical_key`]); values are complete response
/// payloads.
#[derive(Debug)]
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Write-through journal, attached once after recovery (or never, for
    /// a memory-only cache).
    journal: OnceLock<CacheJournal>,
}

/// Locks a shard, recovering from poisoning: a panicking cache user cannot
/// leave the map half-updated (inserts are single statements), so the data
/// is still coherent.
fn lock_shard(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ResponseCache {
    /// A cache with `shards` independently locked shards of
    /// `per_shard_capacity` entries each. Both are clamped to at least 1.
    pub fn new(shards: usize, per_shard_capacity: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity: per_shard_capacity.max(1),
            journal: OnceLock::new(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = (fnv1a(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Looks up `key`, recording the hit or miss in `health`.
    pub fn get(&self, key: &str, health: &ServerHealth) -> Option<String> {
        let found = lock_shard(self.shard(key)).map.get(key).cloned();
        if found.is_some() {
            health.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            health.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Stores `response` under `key`, evicting the shard's oldest entry
    /// when full. Re-inserting an existing key overwrites in place (the
    /// value is identical by construction — evaluation is deterministic).
    ///
    /// Returns `false` when an attached [`CacheJournal`] failed to persist
    /// the entry — the cache itself is still updated and serving, the
    /// entry just will not survive a restart; callers surface the failure
    /// in [`ServerHealth::cache_journal_failures`].
    pub fn insert(&self, key: &str, response: &str) -> bool {
        let fresh = self.insert_in_memory(key, response);
        if !fresh {
            return true; // already present: journaled by its first insert
        }
        match self.journal.get() {
            Some(journal) => journal.append(key, response).is_ok(),
            None => true,
        }
    }

    /// The in-memory half of [`ResponseCache::insert`]: updates the shard
    /// and its FIFO order, returning whether `key` was new.
    fn insert_in_memory(&self, key: &str, response: &str) -> bool {
        let mut shard = lock_shard(self.shard(key));
        if shard
            .map
            .insert(key.to_string(), response.to_string())
            .is_none()
        {
            shard.order.push_back(key.to_string());
            while shard.order.len() > self.per_shard_capacity {
                if let Some(oldest) = shard.order.pop_front() {
                    shard.map.remove(&oldest);
                }
            }
            true
        } else {
            false
        }
    }

    /// Every live entry in deterministic order: shards in index order,
    /// entries in insertion (FIFO) order within each shard. This is the
    /// compaction order of the journal, so a compacted journal is a pure
    /// function of the cache contents.
    pub fn entries_in_order(&self) -> Vec<(String, String)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = lock_shard(shard);
            for key in &shard.order {
                if let Some(value) = shard.map.get(key) {
                    out.push((key.clone(), value.clone()));
                }
            }
        }
        out
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Crash-safe cache journal
// ---------------------------------------------------------------------------

/// Upper bound on a journaled key or response, bytes. Responses are bounded
/// by the frame size on the wire, so anything larger in a journal line is
/// corruption, not data.
const MAX_ENTRY_BYTES: usize = crate::protocol::MAX_FRAME_BYTES;

/// Seed for the journal-header fingerprint (the SplitMix64 golden-gamma
/// constant, same idiom as `ppatc::checkpoint`).
const FINGERPRINT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// One fold step of the header fingerprint.
fn fold(acc: u64, word: u64) -> u64 {
    let mut s = SplitMix64::new(acc ^ word);
    s.next_u64()
}

/// Fingerprint of the cache geometry: a journal written by a cache with a
/// different shard count or capacity replays into a different eviction
/// state, so recovery refuses it.
fn geometry_fingerprint(shards: usize, per_shard_capacity: usize) -> u64 {
    let mut acc = FINGERPRINT_SEED;
    for b in "ppatc-cache".bytes() {
        acc = fold(acc, u64::from(b));
    }
    acc = fold(acc, shards as u64);
    acc = fold(acc, per_shard_capacity as u64);
    acc
}

/// The exact header line a journal with this geometry writes and expects.
fn header_line(shards: usize, per_shard_capacity: usize) -> String {
    format!(
        "ppatc-cache-journal v1 shards={shards} capacity={per_shard_capacity} fingerprint={:016x}",
        geometry_fingerprint(shards, per_shard_capacity)
    )
}

/// Lowercase hex of `bytes` (two digits per byte).
fn hex_encode(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        // Writing into a String cannot fail.
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Inverse of [`hex_encode`]; `None` on odd length or a non-hex digit.
fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    let digits = hex.as_bytes();
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Wraps an I/O failure on the journal file as a [`PpatcError::Checkpoint`]
/// (the cache journal reuses the checkpoint error taxonomy — it *is* a
/// checkpoint of the warm path).
fn journal_error(path: &Path, action: &str, e: &std::io::Error) -> PpatcError {
    PpatcError::Checkpoint {
        detail: format!("could not {action} cache journal {}: {e}", path.display()),
    }
}

/// What parsing one journal body line produced.
enum EntryLine {
    /// A complete, well-formed `(key, response)` entry.
    Entry(String, String),
    /// The line does not parse. At the tail this is a torn write (skipped);
    /// anywhere else it is corruption (recovery refuses).
    Malformed,
}

/// Parses one `e <klen> <vlen> <hexkey> <hexval>` entry line. Both length
/// words are byte counts and must match their hex runs exactly — a tear at
/// any point (including exactly between tokens) leaves a line that fails
/// this parse.
fn parse_entry_line(line: &str) -> EntryLine {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("e") {
        return EntryLine::Malformed;
    }
    let Some(klen) = toks.next().and_then(|t| t.parse::<usize>().ok()) else {
        return EntryLine::Malformed;
    };
    let Some(vlen) = toks.next().and_then(|t| t.parse::<usize>().ok()) else {
        return EntryLine::Malformed;
    };
    if klen > MAX_ENTRY_BYTES || vlen > MAX_ENTRY_BYTES {
        return EntryLine::Malformed;
    }
    let (Some(hexkey), Some(hexval)) = (toks.next(), toks.next()) else {
        return EntryLine::Malformed;
    };
    if toks.next().is_some() || hexkey.len() != klen * 2 || hexval.len() != vlen * 2 {
        return EntryLine::Malformed;
    }
    let (Some(key), Some(value)) = (hex_decode(hexkey), hex_decode(hexval)) else {
        return EntryLine::Malformed;
    };
    match (String::from_utf8(key), String::from_utf8(value)) {
        (Ok(k), Ok(v)) => EntryLine::Entry(k, v),
        _ => EntryLine::Malformed,
    }
}

/// An append-only, crash-safe journal of cache inserts. Construct through
/// [`try_recover_cache`]; the server writes through it on every fresh
/// insert.
pub struct CacheJournal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
}

impl core::fmt::Debug for CacheJournal {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CacheJournal")
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

impl CacheJournal {
    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry as a single flushed line.
    ///
    /// # Errors
    ///
    /// [`PpatcError::Checkpoint`] when the append or flush fails; the
    /// caller keeps serving and counts the failure in health.
    #[must_use = "this returns a Result that must be handled"]
    pub fn append(&self, key: &str, response: &str) -> Result<(), PpatcError> {
        let line = format!(
            "e {} {} {} {}\n",
            key.len(),
            response.len(),
            hex_encode(key.as_bytes()),
            hex_encode(response.as_bytes())
        );
        let mut writer = match self.writer.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| journal_error(&self.path, "append to", &e))
    }
}

/// Reads every entry out of an existing journal file. Returns the entries
/// in file order. Only the *final* line may fail to parse (a torn write
/// from a crash mid-append) — it is skipped; a malformed line anywhere
/// before the tail is typed corruption.
#[must_use = "this returns a Result that must be handled"]
fn try_load_entries(
    path: &Path,
    shards: usize,
    per_shard_capacity: usize,
) -> Result<Option<Vec<(String, String)>>, PpatcError> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(journal_error(path, "open", &e)),
    };
    let mut lines = BufReader::new(file).lines();
    let header = match lines.next() {
        Some(Ok(line)) => line,
        Some(Err(e)) => return Err(journal_error(path, "read the header of", &e)),
        None => String::new(),
    };
    let expected = header_line(shards, per_shard_capacity);
    if header != expected {
        return Err(PpatcError::Checkpoint {
            detail: format!(
                "cache journal {} belongs to a different cache geometry: found header \
                 '{header}', expected '{expected}'",
                path.display()
            ),
        });
    }
    let mut entries = Vec::new();
    let mut pending_malformed: Option<usize> = None;
    for (number, line) in lines.enumerate() {
        let line = line.map_err(|e| journal_error(path, "read", &e))?;
        if let Some(bad) = pending_malformed {
            // A malformed line followed by more lines cannot be a torn
            // tail — append-and-flush tears only the last line.
            return Err(PpatcError::Checkpoint {
                detail: format!(
                    "cache journal {} is corrupt: body line {} is malformed but is not \
                     the final line — refusing to recover from a spliced or damaged \
                     journal",
                    path.display(),
                    bad + 1
                ),
            });
        }
        match parse_entry_line(&line) {
            EntryLine::Entry(k, v) => entries.push((k, v)),
            EntryLine::Malformed => pending_malformed = Some(number),
        }
    }
    Ok(Some(entries))
}

/// Rewrites the journal at `path` from scratch: header, then `entries` in
/// order, flushed; returns the journal left open for appending.
#[must_use = "this returns a Result that must be handled"]
fn try_rewrite(
    path: &Path,
    shards: usize,
    per_shard_capacity: usize,
    entries: &[(String, String)],
) -> Result<CacheJournal, PpatcError> {
    let file = File::create(path).map_err(|e| journal_error(path, "create", &e))?;
    let mut writer = BufWriter::new(file);
    writer
        .write_all(header_line(shards, per_shard_capacity).as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| journal_error(path, "write the header of", &e))?;
    let journal = CacheJournal {
        path: path.to_path_buf(),
        writer: Mutex::new(writer),
    };
    for (key, value) in entries {
        journal.append(key, value)?;
    }
    Ok(journal)
}

/// Builds a [`ResponseCache`] backed by the journal at `path`: recovers
/// every entry a previous server persisted (skipping a torn tail), replays
/// them through FIFO eviction, compacts the journal to the survivors, and
/// attaches it for write-through. Returns the cache and how many entries
/// were recovered from disk (before eviction). A missing file starts an
/// empty journal.
///
/// # Errors
///
/// [`PpatcError::Checkpoint`] on I/O failure, a header from a different
/// cache geometry, or a malformed line before the tail (both mean the
/// journal does not belong to this server and silently dropping it would
/// hide corruption).
#[must_use = "this returns a Result that must be handled"]
pub fn try_recover_cache(
    path: impl Into<PathBuf>,
    shards: usize,
    per_shard_capacity: usize,
) -> Result<(ResponseCache, usize), PpatcError> {
    let path = path.into();
    let shards = shards.max(1);
    let per_shard_capacity = per_shard_capacity.max(1);
    let cache = ResponseCache::new(shards, per_shard_capacity);
    let recovered = match try_load_entries(&path, shards, per_shard_capacity)? {
        Some(entries) => {
            for (key, value) in &entries {
                cache.insert_in_memory(key, value);
            }
            entries.len()
        }
        None => 0,
    };
    let journal = try_rewrite(&path, shards, per_shard_capacity, &cache.entries_in_order())?;
    // A freshly constructed cache has an empty OnceLock; this cannot fail.
    let _ = cache.journal.set(journal);
    Ok((cache, recovered))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_return_the_stored_bytes_and_count() {
        let cache = ResponseCache::new(4, 8);
        let health = ServerHealth::new();
        assert_eq!(cache.get("eval a", &health), None);
        cache.insert("eval a", "ok\nanswer");
        assert_eq!(cache.get("eval a", &health).as_deref(), Some("ok\nanswer"));
        let snap = health.snapshot();
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
    }

    #[test]
    fn eviction_is_fifo_and_bounded_per_shard() {
        // One shard makes eviction order fully observable.
        let cache = ResponseCache::new(1, 2);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("b", "2");
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a", &health), None, "oldest entry evicted");
        assert_eq!(cache.get("b", &health).as_deref(), Some("2"));
        assert_eq!(cache.get("c", &health).as_deref(), Some("3"));
    }

    #[test]
    fn reinsert_does_not_duplicate_order_entries() {
        let cache = ResponseCache::new(1, 2);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a", &health).as_deref(), Some("1"));
    }

    #[test]
    fn zero_shards_or_capacity_clamp_to_one() {
        let cache = ResponseCache::new(0, 0);
        let health = ServerHealth::new();
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.len(), 1, "capacity clamps to 1");
        assert!(cache.get("b", &health).is_some());
        assert!(!cache.is_empty());
    }

    #[test]
    fn shard_hash_is_deterministic() {
        assert_eq!(fnv1a("eval f=500"), fnv1a("eval f=500"));
        assert_ne!(fnv1a("eval f=500"), fnv1a("eval f=501"));
    }

    #[test]
    fn concurrent_mixed_use_stays_coherent() {
        let cache = std::sync::Arc::new(ResponseCache::new(8, 64));
        let health = std::sync::Arc::new(ServerHealth::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let cache = std::sync::Arc::clone(&cache);
                let health = std::sync::Arc::clone(&health);
                scope.spawn(move || {
                    for i in 0..200 {
                        let key = format!("q{}", (t * 31 + i) % 50);
                        let value = format!("v{}", (t * 31 + i) % 50);
                        cache.insert(&key, &value);
                        if let Some(got) = cache.get(&key, &health) {
                            assert_eq!(got, value, "a key never maps to foreign bytes");
                        }
                    }
                });
            }
        });
        assert!(cache.len() <= 50);
    }

    // -- journal ------------------------------------------------------------

    fn journal_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "ppatc-cache-journal-{}-{name}.txt",
            std::process::id()
        ))
    }

    #[test]
    fn recovery_round_trips_byte_identically() {
        let path = journal_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (cache, recovered) = try_recover_cache(&path, 4, 8).expect("fresh journal");
        assert_eq!(recovered, 0, "no prior journal to recover from");
        cache.insert("eval capacity_kb=16", "ok\nresult line\twith tabs");
        cache.insert("mc samples=100", "ok\nmean=1.0 p99=2.0");
        drop(cache);

        let (warm, recovered) = try_recover_cache(&path, 4, 8).expect("recover");
        assert_eq!(recovered, 2);
        let health = ServerHealth::new();
        assert_eq!(
            warm.get("eval capacity_kb=16", &health).as_deref(),
            Some("ok\nresult line\twith tabs"),
            "recovered response is byte-identical"
        );
        assert_eq!(
            warm.get("mc samples=100", &health).as_deref(),
            Some("ok\nmean=1.0 p99=2.0")
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_skipped_and_compacted_away() {
        let path = journal_path("torn");
        let _ = std::fs::remove_file(&path);
        let (cache, _) = try_recover_cache(&path, 2, 4).expect("fresh journal");
        cache.insert("a", "1");
        cache.insert("b", "2");
        drop(cache);
        // Simulate a crash mid-append: half an entry line at the tail.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            write!(f, "e 5 7 68656c").expect("torn tail");
        }
        let (warm, recovered) = try_recover_cache(&path, 2, 4).expect("torn tail tolerated");
        assert_eq!(recovered, 2, "complete entries survive, the tear does not");
        let health = ServerHealth::new();
        assert_eq!(warm.get("a", &health).as_deref(), Some("1"));
        assert_eq!(warm.get("b", &health).as_deref(), Some("2"));
        // Compaction rewrote the file: recovering again sees no tear.
        drop(warm);
        let text = std::fs::read_to_string(&path).expect("read back");
        assert!(!text.contains("68656c"), "compaction dropped the torn tail");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_line_before_the_tail_is_typed_corruption() {
        let path = journal_path("midfile");
        let _ = std::fs::remove_file(&path);
        let (cache, _) = try_recover_cache(&path, 2, 4).expect("fresh journal");
        cache.insert("a", "1");
        drop(cache);
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("open");
            // A malformed line FOLLOWED by a well-formed one cannot be a
            // torn tail: refuse.
            writeln!(f, "e 3 bogus").expect("splice");
            writeln!(f, "e 1 1 62 32").expect("valid entry after splice");
        }
        let err = try_recover_cache(&path, 2, 4).expect_err("mid-file corruption refused");
        assert!(
            matches!(err, PpatcError::Checkpoint { ref detail } if detail.contains("corrupt")),
            "unexpected error: {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn geometry_mismatch_is_refused() {
        let path = journal_path("geometry");
        let _ = std::fs::remove_file(&path);
        let (cache, _) = try_recover_cache(&path, 4, 8).expect("fresh journal");
        cache.insert("a", "1");
        drop(cache);
        let err = try_recover_cache(&path, 2, 8).expect_err("different shard count refused");
        assert!(
            matches!(err, PpatcError::Checkpoint { ref detail } if detail.contains("geometry")),
            "unexpected error: {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn oversize_length_words_are_malformed_not_allocated() {
        // A length word beyond MAX_FRAME_BYTES must not drive a huge
        // allocation; as a non-final line it is corruption.
        let line = format!("e {} 1 00 31", u32::MAX);
        assert!(matches!(parse_entry_line(&line), EntryLine::Malformed));
    }

    #[test]
    fn compaction_replays_eviction_and_bounds_the_file() {
        let path = journal_path("compaction");
        let _ = std::fs::remove_file(&path);
        // One shard, capacity 2: inserting 5 keys keeps only the last 2.
        let (cache, _) = try_recover_cache(&path, 1, 2).expect("fresh journal");
        for i in 0..5 {
            cache.insert(&format!("k{i}"), &format!("v{i}"));
        }
        drop(cache);
        let (warm, recovered) = try_recover_cache(&path, 1, 2).expect("recover");
        // All 5 appends are on disk; replay re-applies FIFO eviction.
        assert_eq!(recovered, 5);
        assert_eq!(warm.len(), 2);
        let health = ServerHealth::new();
        assert_eq!(warm.get("k3", &health).as_deref(), Some("v3"));
        assert_eq!(warm.get("k4", &health).as_deref(), Some("v4"));
        drop(warm);
        // The compacted file holds exactly the survivors: header + 2 lines.
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text.lines().count(), 3, "header plus two surviving entries");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn whitespace_and_newlines_in_entries_survive_hex_round_trip() {
        let path = journal_path("bytes");
        let _ = std::fs::remove_file(&path);
        let (cache, _) = try_recover_cache(&path, 1, 4).expect("fresh journal");
        let gnarly = "ok\nline one\nline two with  spaces\te 9 9 deadbeef\n";
        cache.insert("eval x=1", gnarly);
        drop(cache);
        let (warm, _) = try_recover_cache(&path, 1, 4).expect("recover");
        let health = ServerHealth::new();
        assert_eq!(warm.get("eval x=1", &health).as_deref(), Some(gnarly));
        let _ = std::fs::remove_file(&path);
    }
}
