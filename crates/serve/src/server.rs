//! The server: accept loop, per-connection framing, worker pool, and
//! graceful drain.
//!
//! # Degradation ladder
//!
//! The server never falls over; it steps down a ladder of typed refusals:
//!
//! 1. **serve** — the request is admitted, evaluated under its deadline
//!    budget, cached, and answered.
//! 2. **shed** — the bounded queue is full; the request is refused
//!    *immediately* with `err overloaded queue_depth=… retry_after_ms=…`.
//!    No queue growth, no latency collapse.
//! 3. **drain** — a SIGTERM/ctrl-c (or `drain` query) cancels the drain
//!    token: the accept loop stops, open connections are told
//!    `err draining`, admitted jobs finish or deadline out, workers exit,
//!    and the final health report is flushed. Exit code 0.
//!
//! # Isolation boundaries
//!
//! Two `catch_unwind` rings: one around each *connection handler* (a
//! framing bug cannot kill the accept loop) and one around each
//! *evaluation* in the worker pool (a poison query panics the evaluator,
//! the worker answers `err panic …` and takes the next job). Both feed
//! the [`ServerHealth`] counters.
//!
//! # Supervision
//!
//! Behind the isolation rings sits a supervisor thread that owns every
//! worker join handle. A worker thread that *exits* (a `kill_worker`
//! chaos query, or a panic that escapes the evaluation ring) is detected
//! within one poll interval and respawned into the same seat, up to
//! `worker_restart_budget` restarts across the server's lifetime; past
//! the budget the supervisor marks `supervisor_gave_up` in health and
//! stops replacing that seat. Each worker also publishes a heartbeat
//! epoch (odd while mid-job, even while idle) so the supervisor can
//! count — without killing — workers wedged inside one evaluation for
//! longer than the deadline plus slot grace (`worker_stalls`).

use crate::admission::{retry_after_ms, AdmissionQueue, AdmitError, Job, ResponseSlot};
use crate::cache::{try_recover_cache, ResponseCache};
use crate::health::{HealthSnapshot, ServerHealth};
use crate::protocol::{
    err_response, io_error, ok_response, try_decode_header, try_encode_frame, WireError,
    HEADER_BYTES, MAX_FRAME_BYTES,
};
use crate::query::{canonical_key, try_evaluate, try_parse_request, Query, QueryError};
use ppatc::eval::CancelToken;
use ppatc::{InterruptReason, PpatcError, RunBudget};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the accept loop polls the drain token between accepts.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// Socket read timeout: the granularity at which connection threads
/// notice drains and frame deadlines.
const READ_POLL: Duration = Duration::from_millis(50);
/// Extra slack a connection thread waits past a request's deadline for
/// the worker to publish the deadline-exceeded response itself.
const SLOT_GRACE: Duration = Duration::from_secs(5);
/// How long `join` waits for straggler connections after the workers are
/// gone before giving up on them (they hold no queue slots and die with
/// the process).
const CONNECTION_LINGER: Duration = Duration::from_secs(10);
/// How often the supervisor polls worker liveness and heartbeats.
const SUPERVISOR_POLL: Duration = Duration::from_millis(50);

/// Server tuning knobs. `Default` suits tests and the smoke harness; the
/// binary maps its flags onto the fields.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = OS-assigned).
    pub addr: String,
    /// Evaluation worker threads.
    pub workers: usize,
    /// Admission-queue capacity (jobs waiting for a worker).
    pub queue_capacity: usize,
    /// Per-request wall-clock deadline (clients may lower it per request
    /// with `deadline_ms`, never raise it).
    pub request_deadline: Duration,
    /// A started frame must arrive completely within this window
    /// (slow-loris defense). Idle connections between frames are fine.
    pub frame_timeout: Duration,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// Response-cache entries per shard.
    pub cache_capacity_per_shard: usize,
    /// Whether the `poison` chaos query is honored (panics the evaluator)
    /// instead of rejected as invalid.
    pub enable_poison: bool,
    /// Maximum accepted frame payload, bytes.
    pub max_frame_bytes: usize,
    /// Worker respawns the supervisor will perform over the server's
    /// lifetime before declaring `supervisor_gave_up`.
    pub worker_restart_budget: usize,
    /// Path of the append-only cache journal. `Some` makes the response
    /// cache crash-safe: fresh inserts are written through, and a
    /// restarted server recovers the warm cache byte-identically.
    pub cache_journal: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 64,
            request_deadline: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(2),
            cache_shards: 8,
            cache_capacity_per_shard: 256,
            enable_poison: false,
            max_frame_bytes: MAX_FRAME_BYTES,
            worker_restart_budget: 8,
            cache_journal: None,
        }
    }
}

/// Decrements the live-connection gauge on drop, so even a panicking
/// connection handler releases its slot.
struct ConnectionGuard(Arc<Shared>);

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Shared state every server thread sees.
struct Shared {
    config: ServerConfig,
    cancel: CancelToken,
    health: ServerHealth,
    queue: AdmissionQueue,
    cache: ResponseCache,
    active_connections: AtomicUsize,
    /// Per-seat worker heartbeat epochs: odd while a worker is mid-job,
    /// even while it waits for the next one.
    heartbeats: Vec<AtomicU64>,
}

/// A running server. Dropping the handle does NOT stop the server; call
/// [`ServerHandle::drain`] (or cancel the token) for an orderly stop.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the drain token — cancel it (from a signal handler, a
    /// watchdog, or a test) to start the drain.
    pub fn cancel_token(&self) -> CancelToken {
        self.shared.cancel.clone()
    }

    /// A point-in-time health snapshot.
    pub fn health(&self) -> HealthSnapshot {
        self.shared.health.snapshot()
    }

    /// Starts (or joins an already-started) drain and blocks until the
    /// accept loop, workers, and connections are done. Returns the final
    /// health report.
    pub fn drain(mut self) -> HealthSnapshot {
        self.shared.cancel.cancel();
        self.join_threads();
        self.shared.health.snapshot()
    }

    /// Blocks until the server stops on its own (token cancelled
    /// externally, e.g. by a signal or a `drain` query). Returns the
    /// final health report.
    pub fn join(mut self) -> HealthSnapshot {
        self.join_threads();
        self.shared.health.snapshot()
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // The supervisor owns the worker handles; joining it joins them.
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        // Connections hold no queue slots; give stragglers a bounded
        // window to flush their `draining` responses and close.
        let patience = Instant::now() + CONNECTION_LINGER;
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < patience
        {
            std::thread::sleep(ACCEPT_POLL);
        }
    }
}

/// Binds, spawns the accept loop, worker pool, and supervisor, and
/// returns the handle. With `cache_journal` set, the response cache is
/// first recovered from the journal (previously cached responses come
/// back byte-identical) and every fresh insert is written through.
///
/// # Errors
///
/// Any `std::io::Error` from binding the listener, plus journal recovery
/// failures (corruption before the tail, a journal from a different
/// cache geometry, or plain I/O) wrapped as `std::io::Error`.
#[must_use = "this returns a Result that must be handled"]
pub fn try_spawn(config: ServerConfig) -> Result<ServerHandle, std::io::Error> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let health = ServerHealth::new();
    let cache = match &config.cache_journal {
        Some(path) => {
            let (cache, recovered) =
                try_recover_cache(path, config.cache_shards, config.cache_capacity_per_shard)
                    .map_err(std::io::Error::other)?;
            let recovered = u64::try_from(recovered).unwrap_or(u64::MAX);
            health.cache_recovered.store(recovered, Ordering::Relaxed);
            cache
        }
        None => ResponseCache::new(config.cache_shards, config.cache_capacity_per_shard),
    };
    let worker_count = config.workers.max(1);
    let shared = Arc::new(Shared {
        cancel: CancelToken::new(),
        health,
        queue: AdmissionQueue::new(config.queue_capacity),
        cache,
        active_connections: AtomicUsize::new(0),
        heartbeats: (0..worker_count).map(|_| AtomicU64::new(0)).collect(),
        config,
    });
    let seats = (0..worker_count)
        .map(|slot| spawn_worker(&shared, slot, 0).map(WorkerSeat::new))
        .collect::<Result<Vec<_>, _>>()?;
    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ppatc-serve-supervisor".to_string())
            .spawn(move || supervisor_loop(&shared, seats))?
    };
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("ppatc-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &shared))?
    };
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        supervisor: Some(supervisor),
    })
}

/// Spawns the worker for `slot`; `generation` > 0 marks a respawn (it
/// shows in the thread name, which panics-to-stderr include).
fn spawn_worker(
    shared: &Arc<Shared>,
    slot: usize,
    generation: usize,
) -> Result<JoinHandle<()>, std::io::Error> {
    let shared = Arc::clone(shared);
    let name = if generation == 0 {
        format!("ppatc-serve-worker-{slot}")
    } else {
        format!("ppatc-serve-worker-{slot}r{generation}")
    };
    std::thread::Builder::new()
        .name(name)
        .spawn(move || worker_loop(&shared, slot))
}

/// One worker seat as the supervisor tracks it.
struct WorkerSeat {
    handle: Option<JoinHandle<()>>,
    /// Respawn generation (0 = the original spawn).
    generation: usize,
    /// Last heartbeat epoch observed for this seat.
    last_beat: u64,
    /// When `last_beat` last changed.
    last_change: Instant,
    /// Whether the current wedged episode was already counted.
    stall_flagged: bool,
}

impl WorkerSeat {
    fn new(handle: JoinHandle<()>) -> Self {
        Self {
            handle: Some(handle),
            generation: 0,
            last_beat: 0,
            last_change: Instant::now(),
            stall_flagged: false,
        }
    }
}

/// The supervisor: polls every worker seat, counts heartbeat stalls, and
/// respawns dead workers until the restart budget runs out. On drain it
/// stops respawning and joins the survivors (they exit once the queue
/// runs dry).
fn supervisor_loop(shared: &Arc<Shared>, mut seats: Vec<WorkerSeat>) {
    // A worker legitimately holds a job for up to the request deadline;
    // past deadline + grace the connection thread has already answered
    // for it, so from there on the worker counts as wedged.
    let stall_after = shared.config.request_deadline + SLOT_GRACE;
    let mut budget = shared.config.worker_restart_budget;
    while !(shared.cancel.is_cancelled() || shared.queue.is_draining()) {
        for (slot, seat) in seats.iter_mut().enumerate() {
            let Some(handle) = seat.handle.as_ref() else {
                continue; // seat abandoned: budget exhausted earlier
            };
            let beat = shared.heartbeats[slot].load(Ordering::Relaxed);
            if beat != seat.last_beat {
                seat.last_beat = beat;
                seat.last_change = Instant::now();
                seat.stall_flagged = false;
            } else if !seat.stall_flagged
                && beat % 2 == 1
                && seat.last_change.elapsed() > stall_after
                && !handle.is_finished()
            {
                // Odd epoch = mid-job. The worker is alive but has sat on
                // one evaluation past any deadline; observe, don't kill —
                // the evaluation ring still owns the cleanup.
                seat.stall_flagged = true;
                shared.health.worker_stalls.fetch_add(1, Ordering::Relaxed);
            }
            if !handle.is_finished() {
                continue;
            }
            // The thread exited. Re-check drain *after* observing the
            // exit: a drain-triggered exit must not count as a death.
            if shared.cancel.is_cancelled() || shared.queue.is_draining() {
                continue;
            }
            if let Some(done) = seat.handle.take() {
                let _ = done.join();
            }
            if budget == 0 {
                shared.health.supervisor_gave_up.store(1, Ordering::Relaxed);
                continue;
            }
            budget -= 1;
            seat.generation += 1;
            match spawn_worker(shared, slot, seat.generation) {
                Ok(handle) => {
                    shared
                        .health
                        .worker_restarts
                        .fetch_add(1, Ordering::Relaxed);
                    seat.handle = Some(handle);
                    seat.last_beat = shared.heartbeats[slot].load(Ordering::Relaxed);
                    seat.last_change = Instant::now();
                    seat.stall_flagged = false;
                }
                Err(_) => {
                    // Thread exhaustion: abandon the seat — the remaining
                    // workers keep the queue moving.
                    seat.handle = None;
                    shared.health.supervisor_gave_up.store(1, Ordering::Relaxed);
                }
            }
        }
        std::thread::sleep(SUPERVISOR_POLL);
    }
    for seat in &mut seats {
        if let Some(handle) = seat.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Accepts connections until the drain token cancels, then flips the
/// queue into drain mode (workers exit once it runs dry).
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.cancel.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared
                    .health
                    .connections_opened
                    .fetch_add(1, Ordering::Relaxed);
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("ppatc-serve-conn".to_string())
                    .spawn(move || {
                        let _guard = ConnectionGuard(Arc::clone(&conn_shared));
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(stream, &conn_shared)
                        }));
                        if outcome.is_err() {
                            conn_shared
                                .health
                                .connections_panicked
                                .fetch_add(1, Ordering::Relaxed);
                        }
                    });
                if spawned.is_err() {
                    // Thread exhaustion: release the slot; the client sees
                    // a closed connection and retries.
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    shared.health.draining.store(1, Ordering::Relaxed);
    shared.queue.drain();
}

/// Reads frames off one connection until close, drain, or a framing
/// violation.
fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    // A connection that cannot get its frame clock has no slow-loris
    // defense: close it (the client reconnects) rather than serve it
    // unprotected. `set_nodelay` failing means the socket is already
    // broken (it is a no-op-capable hint on every healthy platform).
    if stream.set_read_timeout(Some(READ_POLL)).is_err() || stream.set_nodelay(true).is_err() {
        shared
            .health
            .conn_setup_failed
            .fetch_add(1, Ordering::Relaxed);
        return;
    }
    loop {
        match read_frame_polled(&mut stream, shared) {
            FrameOutcome::Frame(payload) => {
                let response = process_request(&payload, shared);
                let frame = match try_encode_frame(&response, shared.config.max_frame_bytes) {
                    Ok(f) => f,
                    Err(_) => match try_encode_frame(
                        &err_response("eval_failed", &[("msg", "response too large".to_string())]),
                        shared.config.max_frame_bytes,
                    ) {
                        Ok(f) => f,
                        Err(_) => return,
                    },
                };
                if stream.write_all(&frame).is_err() {
                    return; // mid-response disconnect; nothing to salvage
                }
            }
            FrameOutcome::CleanClose | FrameOutcome::Disconnected => return,
            FrameOutcome::Draining => {
                let _ = write_error(&mut stream, shared, "draining", &[]);
                return;
            }
            FrameOutcome::Malformed(wire) => {
                shared.health.malformed.fetch_add(1, Ordering::Relaxed);
                let _ = write_error(
                    &mut stream,
                    shared,
                    "malformed",
                    &[("msg", wire.to_string())],
                );
                return; // framing is no longer trustworthy
            }
        }
    }
}

/// Best-effort typed error write.
fn write_error(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    kind: &str,
    fields: &[(&str, String)],
) -> Result<(), WireError> {
    let frame = try_encode_frame(&err_response(kind, fields), shared.config.max_frame_bytes)?;
    stream.write_all(&frame).map_err(|e| io_error(&e))
}

/// What one polled frame read produced.
enum FrameOutcome {
    /// A complete, UTF-8 frame payload.
    Frame(String),
    /// EOF between frames.
    CleanClose,
    /// The peer vanished mid-frame or the socket failed.
    Disconnected,
    /// The server is draining and no frame had started.
    Draining,
    /// The frame violated the protocol (including the slow-loris
    /// timeout).
    Malformed(WireError),
}

/// Reads one frame with short poll reads so the thread can notice drains
/// while idle. The frame clock starts at the frame's first byte: a
/// connection may idle indefinitely *between* frames (unless draining),
/// but a started frame must complete within `frame_timeout`.
fn read_frame_polled(stream: &mut TcpStream, shared: &Arc<Shared>) -> FrameOutcome {
    let mut buf = Vec::with_capacity(HEADER_BYTES);
    let mut want = HEADER_BYTES;
    let mut payload_len: Option<usize> = None;
    let mut frame_deadline: Option<Instant> = None;
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(deadline) = frame_deadline {
            if Instant::now() >= deadline {
                return FrameOutcome::Malformed(WireError::Timeout);
            }
        } else if shared.cancel.is_cancelled() {
            return FrameOutcome::Draining;
        }
        let take = (want - buf.len()).min(chunk.len());
        match stream.read(&mut chunk[..take]) {
            Ok(0) => {
                return if buf.is_empty() {
                    FrameOutcome::CleanClose
                } else {
                    FrameOutcome::Disconnected
                };
            }
            Ok(n) => {
                if frame_deadline.is_none() {
                    frame_deadline = Some(Instant::now() + shared.config.frame_timeout);
                }
                buf.extend_from_slice(&chunk[..n]);
                if payload_len.is_none() && buf.len() == HEADER_BYTES {
                    let mut header = [0u8; HEADER_BYTES];
                    header.copy_from_slice(&buf);
                    match try_decode_header(&header, shared.config.max_frame_bytes) {
                        Ok(len) => {
                            payload_len = Some(len);
                            want = HEADER_BYTES + len;
                            buf.reserve(len);
                        }
                        Err(e) => return FrameOutcome::Malformed(e),
                    }
                }
                if let Some(len) = payload_len {
                    if buf.len() == HEADER_BYTES + len {
                        return match String::from_utf8(buf.split_off(HEADER_BYTES)) {
                            Ok(payload) => FrameOutcome::Frame(payload),
                            Err(_) => FrameOutcome::Malformed(WireError::NotUtf8),
                        };
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return FrameOutcome::Disconnected,
        }
    }
}

/// Dispatches one request payload to a response payload.
fn process_request(payload: &str, shared: &Arc<Shared>) -> String {
    let request = match try_parse_request(payload) {
        Ok(r) => r,
        Err(QueryError::Malformed { msg }) => {
            shared.health.malformed.fetch_add(1, Ordering::Relaxed);
            return err_response("malformed", &[("msg", msg)]);
        }
        Err(QueryError::Invalid { field, msg }) => {
            shared.health.invalid.fetch_add(1, Ordering::Relaxed);
            return err_response("invalid", &[("field", field.to_string()), ("msg", msg)]);
        }
    };
    match &request.query {
        Query::Ping => {
            shared.health.served.fetch_add(1, Ordering::Relaxed);
            ok_response("pong")
        }
        Query::Health => {
            shared.health.served.fetch_add(1, Ordering::Relaxed);
            ok_response(&shared.health.snapshot().render())
        }
        Query::Drain => {
            shared.health.served.fetch_add(1, Ordering::Relaxed);
            shared.cancel.cancel();
            ok_response("draining")
        }
        Query::Poison | Query::KillWorker if !shared.config.enable_poison => {
            shared.health.invalid.fetch_add(1, Ordering::Relaxed);
            err_response(
                "invalid",
                &[(
                    "msg",
                    "chaos queries are disabled (start with --enable-poison)".to_string(),
                )],
            )
        }
        Query::Poison | Query::KillWorker | Query::Eval(_) | Query::MonteCarlo { .. } => {
            dispatch_eval(request.query.clone(), request.deadline_ms, shared)
        }
    }
}

/// Cache-checks, admits, and awaits one evaluation query.
fn dispatch_eval(query: Query, deadline_ms: Option<u64>, shared: &Arc<Shared>) -> String {
    let canonical = canonical_key(&query);
    // Chaos queries are side effects, not computations: never cached.
    let cacheable = matches!(query, Query::Eval(_) | Query::MonteCarlo { .. });
    if cacheable {
        if let Some(hit) = shared.cache.get(&canonical, &shared.health) {
            shared.health.served.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
    }
    let now = Instant::now();
    let allowed = match deadline_ms {
        Some(ms) => shared
            .config
            .request_deadline
            .min(Duration::from_millis(ms)),
        None => shared.config.request_deadline,
    };
    let deadline = now + allowed;
    let slot = ResponseSlot::new();
    let job = Job {
        canonical,
        query,
        deadline,
        enqueued: now,
        slot: Arc::clone(&slot),
    };
    match shared.queue.try_admit(job) {
        Ok(()) => {
            shared
                .health
                .queue_depth
                .store(shared.queue.depth(), Ordering::Relaxed);
            match slot.wait_until(deadline + SLOT_GRACE) {
                Some(response) => response,
                None => {
                    // The worker is still wedged past deadline + grace —
                    // answer for it; its late fill lands in a dead slot.
                    shared
                        .health
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                    err_response(
                        "deadline_exceeded",
                        &[("completed", "0".to_string()), ("total", "0".to_string())],
                    )
                }
            }
        }
        Err(AdmitError::Draining) => {
            shared.health.drained.fetch_add(1, Ordering::Relaxed);
            err_response("draining", &[])
        }
        Err(AdmitError::Overloaded { depth }) => {
            shared.health.shed.fetch_add(1, Ordering::Relaxed);
            let hint = retry_after_ms(
                depth,
                shared.config.workers,
                shared.health.ema_service_micros.load(Ordering::Relaxed),
            );
            err_response(
                "overloaded",
                &[
                    ("queue_depth", depth.to_string()),
                    ("retry_after_ms", hint.to_string()),
                ],
            )
        }
    }
}

/// The worker loop: take a job, evaluate it inside the panic-isolation
/// ring under its deadline budget, publish the response, update health.
/// The heartbeat epoch for `slot` is odd while a job is held and even
/// while waiting, so the supervisor can tell wedged from idle.
fn worker_loop(shared: &Arc<Shared>, slot: usize) {
    while let Some(job) = shared.queue.take() {
        shared.heartbeats[slot].fetch_add(1, Ordering::Relaxed);
        shared
            .health
            .queue_depth
            .store(shared.queue.depth(), Ordering::Relaxed);
        if matches!(job.query, Query::KillWorker) {
            // Chaos: answer, then exit the thread. The supervisor notices
            // the death and respawns this seat.
            shared.health.served.fetch_add(1, Ordering::Relaxed);
            job.slot.fill(ok_response("worker_killed"));
            shared.heartbeats[slot].fetch_add(1, Ordering::Relaxed);
            return;
        }
        let started = Instant::now();
        let response = if started >= job.deadline {
            // Expired while queued: report zero progress, skip evaluation.
            shared
                .health
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            err_response(
                "deadline_exceeded",
                &[
                    ("completed", "0".to_string()),
                    ("total", "0".to_string()),
                    ("queued_ms", job.enqueued.elapsed().as_millis().to_string()),
                ],
            )
        } else {
            let budget = RunBudget::unlimited()
                .with_cancel(&shared.cancel)
                .with_deadline(job.deadline);
            match catch_unwind(AssertUnwindSafe(|| try_evaluate(&job.query, &budget))) {
                Ok(Ok(body)) => {
                    let response = ok_response(&body);
                    if !shared.cache.insert(&job.canonical, &response) {
                        // The in-memory insert stands; only the journal
                        // write-through failed. Serving continues warm but
                        // a restart will not recover this entry.
                        shared
                            .health
                            .cache_journal_failures
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    shared.health.served.fetch_add(1, Ordering::Relaxed);
                    response
                }
                Ok(Err(error)) => render_eval_error(&error, shared),
                Err(_) => {
                    shared.health.panicked.fetch_add(1, Ordering::Relaxed);
                    err_response(
                        "panic",
                        &[("msg", "evaluator panicked; request isolated".to_string())],
                    )
                }
            }
        };
        let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        shared.health.record_service_micros(micros);
        job.slot.fill(response);
        shared.heartbeats[slot].fetch_add(1, Ordering::Relaxed);
    }
}

/// Maps a typed evaluation error onto the wire and the health counters.
fn render_eval_error(error: &PpatcError, shared: &Arc<Shared>) -> String {
    match error {
        PpatcError::Interrupted {
            reason: InterruptReason::DeadlineExpired,
            completed,
            total,
        } => {
            shared
                .health
                .deadline_expired
                .fetch_add(1, Ordering::Relaxed);
            let done: usize = completed.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
            err_response(
                "deadline_exceeded",
                &[
                    ("completed", done.to_string()),
                    ("total", total.to_string()),
                ],
            )
        }
        PpatcError::Interrupted {
            reason: InterruptReason::Cancelled,
            completed,
            total,
        } => {
            shared.health.drained.fetch_add(1, Ordering::Relaxed);
            let done: usize = completed.iter().map(|&(s, e)| e.saturating_sub(s)).sum();
            err_response(
                "draining",
                &[
                    ("completed", done.to_string()),
                    ("total", total.to_string()),
                ],
            )
        }
        PpatcError::Interrupted { .. } => {
            // Future interrupt reasons degrade to a generic eval failure.
            shared.health.eval_failed.fetch_add(1, Ordering::Relaxed);
            err_response("eval_failed", &[("msg", error.to_string())])
        }
        PpatcError::Validation(v) => {
            shared.health.invalid.fetch_add(1, Ordering::Relaxed);
            err_response(
                "invalid",
                &[("field", v.field.to_string()), ("msg", v.to_string())],
            )
        }
        PpatcError::WorkerPanic { index } => {
            shared.health.panicked.fetch_add(1, Ordering::Relaxed);
            err_response(
                "panic",
                &[("msg", format!("sample {index} panicked inside the sweep"))],
            )
        }
        other => {
            shared.health.eval_failed.fetch_add(1, Ordering::Relaxed);
            err_response("eval_failed", &[("msg", other.to_string())])
        }
    }
}
