//! The `ppatc-serve` binary: a long-running carbon query service.
//!
//! ```text
//! cargo run --release -p ppatc-serve -- --port 7878 --workers 4
//! ```
//!
//! Flags (all optional):
//!
//! - `--addr HOST` — bind host (default `127.0.0.1`)
//! - `--port N` — bind port; 0 asks the OS (default `7878`)
//! - `--workers N` — evaluation worker threads (default 2)
//! - `--queue N` — admission-queue capacity (default 64)
//! - `--deadline SECS` — per-request wall-clock deadline (default 10)
//! - `--frame-timeout SECS` — slow-loris frame window (default 2)
//! - `--enable-poison` — honor `poison` and `kill_worker` chaos queries
//!   (panic-isolation and supervision demos; also installs a quiet panic
//!   hook so deliberate panics don't spam stderr)
//! - `--cache-journal PATH` — append every cached response to a
//!   crash-safe journal at `PATH`, recovering it (warm cache) on start
//! - `--restart-budget N` — how many dead workers the supervisor will
//!   respawn before giving up on a seat (default 8; 0 disables respawn)
//!
//! On SIGTERM/SIGINT (or a `drain` query) the server stops accepting,
//! finishes or deadlines-out in-flight work, prints the final health
//! report to stdout, and exits 0.

use ppatc_serve::cli;
use ppatc_serve::server::{try_spawn, ServerConfig};
use ppatc_serve::signal;
use std::process::ExitCode;

/// Default bind port when `--port` is not given.
const DEFAULT_PORT: u16 = 7878;

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut host = "127.0.0.1".to_string();
    let mut port: u16 = DEFAULT_PORT;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(h) if !h.trim().is_empty() => host = h.trim().to_string(),
                _ => return usage("--addr requires a host"),
            },
            "--port" => match cli::try_parse_port(args.next().as_deref()) {
                Ok(p) => port = p,
                Err(e) => return usage(&format!("--port: {e}")),
            },
            "--workers" | "--jobs" | "-j" => {
                match cli::try_parse_count("workers", args.next().as_deref()) {
                    Ok(n) => config.workers = n,
                    Err(e) => return usage(&format!("--workers: {e}")),
                }
            }
            "--queue" => match cli::try_parse_count("queue", args.next().as_deref()) {
                Ok(n) => config.queue_capacity = n,
                Err(e) => return usage(&format!("--queue: {e}")),
            },
            "--deadline" => match cli::try_parse_deadline(args.next().as_deref()) {
                Ok(d) => config.request_deadline = d,
                Err(e) => return usage(&format!("--deadline: {e}")),
            },
            "--frame-timeout" => match cli::try_parse_deadline(args.next().as_deref()) {
                Ok(d) => config.frame_timeout = d,
                Err(e) => return usage(&format!("--frame-timeout: {e}")),
            },
            "--enable-poison" => config.enable_poison = true,
            "--cache-journal" => {
                match cli::try_parse_path("cache-journal", args.next().as_deref()) {
                    Ok(path) => config.cache_journal = Some(path),
                    Err(e) => return usage(&format!("--cache-journal: {e}")),
                }
            }
            "--restart-budget" => {
                match cli::try_parse_count_or_zero("restart-budget", args.next().as_deref()) {
                    Ok(n) => config.worker_restart_budget = n,
                    Err(e) => return usage(&format!("--restart-budget: {e}")),
                }
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    config.addr = format!("{host}:{port}");

    if config.enable_poison {
        // Poison queries panic by design; keep stderr readable. The
        // panics are still counted in the health block.
        std::panic::set_hook(Box::new(|_| {}));
    }

    let handle = match try_spawn(config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("ppatc-serve: failed to start: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !signal::install_drain_handler(&handle.cancel_token()) {
        eprintln!("ppatc-serve: warning: drain handler already owned by another token");
    }
    println!("ppatc-serve: listening on {}", handle.addr());
    let recovered = handle.health().cache_recovered;
    if recovered > 0 {
        println!("ppatc-serve: recovered {recovered} cached responses from the journal");
    }

    let report = handle.join();
    println!("ppatc-serve: drained; final health report:");
    print!("{}", report.render());
    if report.connections_panicked > 0 {
        // Connection-handler panics mean a server bug escaped a request
        // boundary (request panics are expected under poison and stay
        // exit-0); surface it in the exit code for CI.
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Prints a usage error and returns the failure exit code.
fn usage(msg: &str) -> ExitCode {
    eprintln!("ppatc-serve: {msg}");
    eprintln!(
        "usage: ppatc-serve [--addr HOST] [--port N] [--workers N] [--queue N] \
         [--deadline SECS] [--frame-timeout SECS] [--enable-poison] \
         [--cache-journal PATH] [--restart-budget N]"
    );
    ExitCode::FAILURE
}
