//! Deterministic transport fault injection.
//!
//! A [`FaultPlan`] is a seeded schedule of transport faults consulted at
//! each *frame boundary* — once per request a client is about to put on
//! the wire. The schedule is a pure function of the seed: the `i`-th
//! frame of a plan always draws the same [`FaultAction`], regardless of
//! wall clock, thread timing, or what the server answered. That is the
//! determinism guarantee the chaos harness leans on — a failing run
//! replays exactly from its seed.
//!
//! The faults model the client side of the transport:
//!
//! - **disconnect** — the connection drops before the request is sent
//!   (the peer vanished; the client must reconnect and replay).
//! - **corrupt** — the frame goes out with a damaged magic; the server
//!   answers `err malformed` and abandons the connection.
//! - **truncate** — only a prefix of the frame is written before the
//!   socket closes (a mid-frame tear; the server sees a disconnect).
//! - **delay** — the send stalls for a bounded number of milliseconds
//!   (congestion; exercises backoff arithmetic, not failure paths).
//!
//! All rates are expressed per mille (0–1000) so integer draws stay
//! exact. Rates are applied in the fixed order above; their sum is
//! clamped to 1000.

use ppatc_units::rng::SplitMix64;

/// The per-mille scale every fault rate is expressed in.
const PER_MILLE: u64 = 1_000;

/// Fault rates and the seed that schedules them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Schedule seed; equal seeds replay the identical fault sequence.
    pub seed: u64,
    /// Disconnect-before-send rate, per mille of frames.
    pub disconnect_per_mille: u64,
    /// Corrupt-magic rate, per mille of frames.
    pub corrupt_per_mille: u64,
    /// Truncated-frame rate, per mille of frames.
    pub truncate_per_mille: u64,
    /// Delayed-send rate, per mille of frames.
    pub delay_per_mille: u64,
    /// Upper bound (exclusive of 0: delays are `1..=max`) on an injected
    /// delay, milliseconds.
    pub max_delay_ms: u64,
}

impl FaultSpec {
    /// A plan that never injects anything (every frame passes).
    pub fn off(seed: u64) -> Self {
        Self {
            seed,
            disconnect_per_mille: 0,
            corrupt_per_mille: 0,
            truncate_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
        }
    }
}

/// What to do to the next frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultAction {
    /// Send the frame untouched.
    Pass,
    /// Sleep this many milliseconds, then send untouched.
    Delay {
        /// Injected stall, milliseconds (always ≥ 1).
        millis: u64,
    },
    /// Send the frame with its magic bytes damaged.
    CorruptMagic,
    /// Drop the connection instead of sending.
    DisconnectBeforeSend,
    /// Write only a prefix of the frame, then drop the connection.
    TruncateFrame {
        /// How many bytes of the frame to let through before the tear.
        keep: usize,
    },
}

/// Running totals of what a plan has injected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames the plan was consulted for.
    pub frames: u64,
    /// Frames that passed untouched.
    pub passed: u64,
    /// Injected disconnects.
    pub disconnects: u64,
    /// Injected corrupt-magic frames.
    pub corrupted: u64,
    /// Injected truncated frames.
    pub truncated: u64,
    /// Injected delays.
    pub delays: u64,
    /// Total injected delay, milliseconds.
    pub delay_ms_total: u64,
}

/// A seeded, deterministic schedule of transport faults.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    spec: FaultSpec,
    rng: SplitMix64,
    counts: FaultCounts,
}

impl FaultPlan {
    /// Builds the schedule for `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        let rng = SplitMix64::new(spec.seed);
        Self {
            spec,
            rng,
            counts: FaultCounts::default(),
        }
    }

    /// A plan that always passes (for code paths that want a plan
    /// unconditionally).
    pub fn off(seed: u64) -> Self {
        Self::new(FaultSpec::off(seed))
    }

    /// The spec the plan was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Totals injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Draws the action for the next frame. `frame_len` is the encoded
    /// frame's size in bytes; a truncation keeps a draw-determined prefix
    /// strictly shorter than the frame.
    ///
    /// Exactly two RNG draws happen per call no matter which action comes
    /// out, so the schedule position depends only on how many frames have
    /// been drawn — never on which faults fired.
    pub fn next(&mut self, frame_len: usize) -> FaultAction {
        self.counts.frames += 1;
        let bucket = self.rng.next_below(PER_MILLE);
        // The second draw parameterizes delay/truncate; consumed always,
        // so fault rates do not shift the sequence (the always-consume
        // discipline of the Monte-Carlo sampler).
        let magnitude = self.rng.next_u64();
        let d = self.spec.disconnect_per_mille;
        let c = d + self.spec.corrupt_per_mille;
        let t = c + self.spec.truncate_per_mille;
        let y = t + self.spec.delay_per_mille;
        if bucket < d.min(PER_MILLE) {
            self.counts.disconnects += 1;
            FaultAction::DisconnectBeforeSend
        } else if bucket < c.min(PER_MILLE) {
            self.counts.corrupted += 1;
            FaultAction::CorruptMagic
        } else if bucket < t.min(PER_MILLE) {
            self.counts.truncated += 1;
            // Keep at least 1 byte and at most frame_len - 1 so the tear
            // is visible to the peer as a started-but-unfinished frame.
            let interior = (frame_len as u64).saturating_sub(1);
            let keep = if interior > 0 {
                1 + (magnitude % interior) as usize
            } else {
                0
            };
            FaultAction::TruncateFrame { keep }
        } else if bucket < y.min(PER_MILLE) && self.spec.max_delay_ms > 0 {
            self.counts.delays += 1;
            let millis = 1 + magnitude % self.spec.max_delay_ms;
            self.counts.delay_ms_total += millis;
            FaultAction::Delay { millis }
        } else {
            self.counts.passed += 1;
            FaultAction::Pass
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic_spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            disconnect_per_mille: 100,
            corrupt_per_mille: 100,
            truncate_per_mille: 100,
            delay_per_mille: 100,
            max_delay_ms: 5,
        }
    }

    #[test]
    fn equal_seeds_replay_the_identical_schedule() {
        let mut a = FaultPlan::new(chaotic_spec(7));
        let mut b = FaultPlan::new(chaotic_spec(7));
        for len in [9, 64, 1, 4096, 12, 100, 2, 33] {
            assert_eq!(a.next(len), b.next(len));
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::new(chaotic_spec(7));
        let mut b = FaultPlan::new(chaotic_spec(8));
        let seq_a: Vec<_> = (0..64).map(|_| a.next(100)).collect();
        let seq_b: Vec<_> = (0..64).map(|_| b.next(100)).collect();
        assert_ne!(seq_a, seq_b);
    }

    #[test]
    fn off_plan_always_passes() {
        let mut plan = FaultPlan::off(3);
        for _ in 0..256 {
            assert_eq!(plan.next(50), FaultAction::Pass);
        }
        let counts = plan.counts();
        assert_eq!(counts.frames, 256);
        assert_eq!(counts.passed, 256);
        assert_eq!(
            counts.disconnects + counts.corrupted + counts.truncated + counts.delays,
            0
        );
    }

    #[test]
    fn rates_land_near_their_targets() {
        let mut plan = FaultPlan::new(chaotic_spec(42));
        for _ in 0..10_000 {
            let _ = plan.next(100);
        }
        let counts = plan.counts();
        // 10% each ± generous slack; this is a sanity bound, not a
        // statistical test.
        for injected in [
            counts.disconnects,
            counts.corrupted,
            counts.truncated,
            counts.delays,
        ] {
            assert!(
                (600..=1_400).contains(&injected),
                "rate off target: {counts:?}"
            );
        }
        assert_eq!(
            counts.frames,
            counts.passed
                + counts.disconnects
                + counts.corrupted
                + counts.truncated
                + counts.delays
        );
    }

    #[test]
    fn truncation_always_tears_inside_the_frame() {
        let spec = FaultSpec {
            truncate_per_mille: PER_MILLE,
            ..FaultSpec::off(11)
        };
        let mut plan = FaultPlan::new(spec);
        for len in [2usize, 3, 9, 64, 4096] {
            match plan.next(len) {
                FaultAction::TruncateFrame { keep } => {
                    assert!(keep >= 1 && keep < len, "keep={keep} len={len}")
                }
                other => panic!("expected truncation, got {other:?}"),
            }
        }
        assert!(matches!(
            plan.next(1),
            FaultAction::TruncateFrame { keep: 0 }
        ));
    }

    #[test]
    fn oversubscribed_rates_saturate_instead_of_wrapping() {
        let spec = FaultSpec {
            seed: 1,
            disconnect_per_mille: 900,
            corrupt_per_mille: 900,
            truncate_per_mille: 900,
            delay_per_mille: 900,
            max_delay_ms: 2,
        };
        let mut plan = FaultPlan::new(spec);
        for _ in 0..1_000 {
            // Every draw must land in disconnect or corrupt (cumulative
            // thresholds clamp at 1000); nothing passes.
            let action = plan.next(100);
            assert!(
                matches!(
                    action,
                    FaultAction::DisconnectBeforeSend | FaultAction::CorruptMagic
                ),
                "unexpected action {action:?}"
            );
        }
    }
}
