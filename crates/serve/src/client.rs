//! A minimal blocking client for the serve protocol — used by the load
//! harness, the integration tests, and scripts.

use crate::protocol::{
    io_error, parse_response, try_encode_frame, try_read_frame, ParsedResponse, WireError,
    MAX_FRAME_BYTES,
};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A connected client. One request is in flight at a time (the protocol
/// is strictly request/response per frame).
#[derive(Debug)]
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to `addr`, reusing `timeout` as both the connect budget
    /// and the per-request read/write budget. Kept for callers whose
    /// requests are as fast as their connects; long-running ops (`mc`
    /// with many samples) should use [`ServeClient::try_connect_split`]
    /// or [`ServeClient::set_request_timeout`] so a slow *response* is
    /// not misread as a dead connection.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the connection cannot be established.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_connect<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<Self, WireError> {
        Self::try_connect_split(addr, timeout, Some(timeout))
    }

    /// Connects to `addr` with separate budgets: `connect_timeout` bounds
    /// connection establishment only, `request_timeout` bounds each
    /// read/write of a request/response exchange (`None` = block
    /// indefinitely on the socket).
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the connection cannot be established.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_connect_split<A: ToSocketAddrs>(
        addr: A,
        connect_timeout: Duration,
        request_timeout: Option<Duration>,
    ) -> Result<Self, WireError> {
        let resolved = addr
            .to_socket_addrs()
            .map_err(|e| io_error(&e))?
            .next()
            .ok_or_else(|| WireError::Io {
                detail: "address resolved to nothing".to_string(),
            })?;
        let stream =
            TcpStream::connect_timeout(&resolved, connect_timeout).map_err(|e| io_error(&e))?;
        let mut client = Self { stream };
        client.set_request_timeout(request_timeout)?;
        Ok(client)
    }

    /// Rebudgets the per-request read/write timeout on the live
    /// connection (`None` = block indefinitely). Retry layers call this
    /// per request to derive the socket budget from the op's deadline.
    ///
    /// # Errors
    ///
    /// [`WireError::Io`] when the socket refuses the timeout.
    #[must_use = "this returns a Result that must be handled"]
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> Result<(), WireError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(|e| io_error(&e))?;
        self.stream
            .set_write_timeout(timeout)
            .map_err(|e| io_error(&e))
    }

    /// Sends one request line and reads the parsed response.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from framing, the socket, or an alien response.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_request(&mut self, line: &str) -> Result<ParsedResponse, WireError> {
        let raw = self.try_request_raw(line)?;
        parse_response(&raw)
    }

    /// Sends one request line and returns the raw response payload.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from framing or the socket; a connection the
    /// server closed without answering surfaces as `Truncated`.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_request_raw(&mut self, line: &str) -> Result<String, WireError> {
        let frame = try_encode_frame(line, MAX_FRAME_BYTES)?;
        self.stream.write_all(&frame).map_err(|e| io_error(&e))?;
        match try_read_frame(&mut self.stream, MAX_FRAME_BYTES)? {
            Some(payload) => Ok(payload),
            None => Err(WireError::Truncated { got: 0, want: 8 }),
        }
    }

    /// The underlying stream (for chaos tests that need partial writes or
    /// abrupt shutdowns).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
