//! Bounded-queue admission control.
//!
//! The server never queues without bound: a request is either admitted
//! into a fixed-capacity queue or *shed immediately* with an `overloaded`
//! response carrying a retry-after hint. The queue doubles as the drain
//! gate — once draining, new work is refused while already-admitted jobs
//! keep flowing to workers until the queue runs dry, at which point
//! workers observe `None` and exit.

use crate::query::Query;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How often a parked worker re-checks the drain flag while the queue is
/// empty.
const TAKE_POLL: Duration = Duration::from_millis(100);

/// One admitted unit of work, handed from a connection thread to a worker.
#[derive(Clone, Debug)]
pub struct Job {
    /// Canonical cache key of the query (see
    /// [`crate::query::canonical_key`]).
    pub canonical: String,
    /// The parsed query to evaluate.
    pub query: Query,
    /// Absolute wall-clock deadline of the request.
    pub deadline: Instant,
    /// When the job entered the queue (for queued-time accounting).
    pub enqueued: Instant,
    /// Where the worker publishes the rendered response.
    pub slot: Arc<ResponseSlot>,
}

/// A one-shot rendezvous for a single response: the worker fills it, the
/// connection thread waits on it.
#[derive(Debug, Default)]
pub struct ResponseSlot {
    value: Mutex<Option<String>>,
    ready: Condvar,
}

/// Recovers a possibly poisoned guard (slot and queue state are updated
/// by single statements; a panicking peer cannot leave them incoherent).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ResponseSlot {
    /// A fresh, empty slot.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Publishes the response. First writer wins; later writers are
    /// silently dropped (a worker filling a slot the connection already
    /// gave up on).
    pub fn fill(&self, response: String) {
        let mut guard = lock_unpoisoned(&self.value);
        if guard.is_none() {
            *guard = Some(response);
            self.ready.notify_all();
        }
    }

    /// Blocks until the slot is filled or `deadline` passes; `None` on
    /// timeout.
    pub fn wait_until(&self, deadline: Instant) -> Option<String> {
        let mut guard = lock_unpoisoned(&self.value);
        loop {
            if let Some(response) = guard.take() {
                return Some(response);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            guard = match self.ready.wait_timeout(guard, deadline - now) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// Why a job was refused admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmitError {
    /// The queue is at capacity; the job was shed. Carries the depth at
    /// refusal time for the `queue_depth` response field.
    Overloaded {
        /// Queue depth when the job was refused.
        depth: usize,
    },
    /// The server is draining and accepts no new work.
    Draining,
}

impl core::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Overloaded { depth } => write!(f, "queue full at depth {depth}"),
            Self::Draining => write!(f, "server is draining"),
        }
    }
}

impl std::error::Error for AdmitError {}

#[derive(Debug, Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

/// The bounded admission queue shared by connection threads (producers)
/// and the worker pool (consumers).
#[derive(Debug)]
pub struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// A queue admitting at most `capacity` outstanding jobs (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (approximate between lock acquisitions; exact inside
    /// one).
    pub fn depth(&self) -> usize {
        lock_unpoisoned(&self.state).jobs.len()
    }

    /// Admits `job`, or refuses with the reason. Never blocks.
    ///
    /// # Errors
    ///
    /// [`AdmitError::Draining`] once draining,
    /// [`AdmitError::Overloaded`] when the queue is at capacity.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_admit(&self, job: Job) -> Result<(), AdmitError> {
        let mut state = lock_unpoisoned(&self.state);
        if state.draining {
            return Err(AdmitError::Draining);
        }
        if state.jobs.len() >= self.capacity {
            return Err(AdmitError::Overloaded {
                depth: state.jobs.len(),
            });
        }
        state.jobs.push_back(job);
        self.available.notify_one();
        Ok(())
    }

    /// Takes the next job, blocking while the queue is empty. Returns
    /// `None` once the queue is draining *and* empty — the worker's exit
    /// signal. Already-admitted jobs are always delivered, even during
    /// drain.
    pub fn take(&self) -> Option<Job> {
        let mut state = lock_unpoisoned(&self.state);
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.draining {
                return None;
            }
            state = match self.available.wait_timeout(state, TAKE_POLL) {
                Ok((g, _)) => g,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Enters drain mode: refuses new admissions and wakes every parked
    /// worker so they can observe the empty queue and exit. Idempotent.
    pub fn drain(&self) {
        lock_unpoisoned(&self.state).draining = true;
        self.available.notify_all();
    }

    /// Whether the queue is draining.
    pub fn is_draining(&self) -> bool {
        lock_unpoisoned(&self.state).draining
    }
}

/// Computes the retry-after hint for a shed response: roughly how long the
/// present backlog needs to clear at the observed service rate, floored at
/// one millisecond so clients always back off a nonzero amount.
pub fn retry_after_ms(depth: usize, workers: usize, ema_service_micros: u64) -> u64 {
    /// Microseconds per millisecond.
    const MICROS_PER_MILLI: u64 = 1_000;
    /// Fallback service estimate before any request has completed, µs.
    const DEFAULT_SERVICE_MICROS: u64 = 10_000;
    let per_job = if ema_service_micros == 0 {
        DEFAULT_SERVICE_MICROS
    } else {
        ema_service_micros
    };
    let backlog_micros = (depth as u64 + 1).saturating_mul(per_job) / workers.max(1) as u64;
    (backlog_micros / MICROS_PER_MILLI).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Query;

    fn job(tag: &str) -> Job {
        Job {
            canonical: tag.to_string(),
            query: Query::Ping,
            deadline: Instant::now() + Duration::from_secs(5),
            enqueued: Instant::now(),
            slot: ResponseSlot::new(),
        }
    }

    #[test]
    fn admits_up_to_capacity_then_sheds_with_depth() {
        let q = AdmissionQueue::new(2);
        q.try_admit(job("a")).expect("first admits");
        q.try_admit(job("b")).expect("second admits");
        assert_eq!(
            q.try_admit(job("c")),
            Err(AdmitError::Overloaded { depth: 2 })
        );
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = AdmissionQueue::new(4);
        for tag in ["a", "b", "c"] {
            q.try_admit(job(tag)).expect("admits");
        }
        let order: Vec<String> = (0..3)
            .filter_map(|_| q.take().map(|j| j.canonical))
            .collect();
        assert_eq!(order, ["a", "b", "c"]);
    }

    #[test]
    fn drain_refuses_new_work_but_delivers_the_backlog() {
        let q = AdmissionQueue::new(4);
        q.try_admit(job("queued")).expect("admits");
        q.drain();
        assert!(q.is_draining());
        assert_eq!(q.try_admit(job("late")), Err(AdmitError::Draining));
        assert_eq!(q.take().map(|j| j.canonical).as_deref(), Some("queued"));
        assert_eq!(q.take().map(|j| j.canonical), None, "drained and empty");
    }

    #[test]
    fn parked_workers_wake_on_drain() {
        let q = Arc::new(AdmissionQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.take().is_none());
        std::thread::sleep(Duration::from_millis(20));
        q.drain();
        assert!(
            waiter.join().expect("waiter joins"),
            "blocked take() returns None on drain"
        );
    }

    #[test]
    fn slot_rendezvous_first_writer_wins() {
        let slot = ResponseSlot::new();
        slot.fill("first".to_string());
        slot.fill("second".to_string());
        let got = slot.wait_until(Instant::now() + Duration::from_millis(50));
        assert_eq!(got.as_deref(), Some("first"));
    }

    #[test]
    fn slot_wait_times_out_when_never_filled() {
        let slot = ResponseSlot::new();
        let started = Instant::now();
        assert_eq!(slot.wait_until(started + Duration::from_millis(30)), None);
        assert!(started.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn slot_wakes_a_waiter_across_threads() {
        let slot = ResponseSlot::new();
        let slot2 = Arc::clone(&slot);
        let waiter =
            std::thread::spawn(move || slot2.wait_until(Instant::now() + Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        slot.fill("answer".to_string());
        assert_eq!(waiter.join().expect("joins").as_deref(), Some("answer"));
    }

    #[test]
    fn retry_hint_scales_with_backlog_and_floors_at_one() {
        assert_eq!(retry_after_ms(0, 4, 0), 2, "default estimate, one job");
        assert!(retry_after_ms(100, 2, 50_000) > retry_after_ms(10, 2, 50_000));
        assert_eq!(retry_after_ms(0, 8, 1), 1, "floor at 1 ms");
    }
}
