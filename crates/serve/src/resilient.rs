//! The recovery half of the client: retries with seeded backoff, a
//! circuit breaker, and reconnect-and-replay.
//!
//! [`ResilientClient`] wraps [`ServeClient`] with the policy a real
//! fleet client needs against a server that sheds, drains, restarts
//! workers, or sits behind a flaky transport:
//!
//! - **Honored backpressure** — an `overloaded` answer is retried after
//!   `max(server retry_after_ms hint, exponential backoff)`, so the
//!   shedding server's own estimate is never undercut.
//! - **Reconnect-and-replay** — a torn connection (`Truncated`, I/O
//!   errors, socket timeouts) drops the socket and replays the request
//!   on a fresh one. This is safe by construction: every query is a pure
//!   function of its parameters, so a replay cannot double-apply
//!   anything (the lone side-effecting ops, `drain` and the chaos
//!   queries, are idempotent or deliberately chaotic).
//! - **Circuit breaker** — consecutive wire-level failures open the
//!   circuit; requests then fail fast with a typed
//!   [`ResilientError::CircuitOpen`] carrying the remaining cooldown
//!   instead of hammering a dead endpoint. After the cooldown one probe
//!   request (half-open) decides between closing and reopening.
//! - **Retry budget** — a lifetime cap on replays, so a pathological
//!   server cannot spin a client forever.
//!
//! All backoff jitter comes from a seeded [`SplitMix64`]: equal seeds
//! and equal failure sequences sleep the identical schedule, which is
//! what lets the chaos harness replay a run from its seed.
//!
//! The state machines are documented in `DESIGN.md` §13.

use crate::client::ServeClient;
use crate::fault::{FaultAction, FaultCounts, FaultPlan};
use crate::protocol::{
    io_error, parse_response, try_encode_frame, try_read_frame, ParsedResponse, WireError,
    MAX_FRAME_BYTES,
};
use ppatc_units::rng::SplitMix64;
use std::io::Write;
use std::time::{Duration, Instant};

/// Slack added on top of a request's own `deadline_ms` when deriving the
/// socket timeout: the server is allowed this much overrun to render and
/// flush its typed `deadline_exceeded` answer before the client gives up
/// on the connection (mirrors the server's slot grace).
const DEADLINE_SOCKET_GRACE: Duration = Duration::from_secs(5);

/// Cap on the exponent of the exponential backoff (2^20 × base already
/// exceeds any sane `max_backoff`; the shift must not overflow).
const BACKOFF_EXPONENT_CAP: u32 = 20;

/// Retry/backoff/breaker tuning. `Default` suits tests and the harness.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Attempts per request (first try + replays).
    pub max_attempts: u32,
    /// First-retry backoff; doubles each further retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (before jitter).
    pub max_backoff: Duration,
    /// Lifetime replay budget across all requests of this client.
    pub retry_budget: u64,
    /// Consecutive wire-level failures that open the circuit.
    pub circuit_failure_threshold: u32,
    /// How long an open circuit rejects before allowing a probe.
    pub circuit_cooldown: Duration,
    /// Budget for establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Socket read/write budget per request when the request line carries
    /// no `deadline_ms` (`None` = block indefinitely).
    pub request_timeout: Option<Duration>,
    /// Seed for the jitter schedule (equal seeds, equal sleeps).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 6,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_secs(2),
            retry_budget: 256,
            circuit_failure_threshold: 5,
            circuit_cooldown: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(2),
            request_timeout: Some(Duration::from_secs(30)),
            seed: 42,
        }
    }
}

/// Why a resilient request gave up. Server-side *typed* refusals
/// (`invalid`, `malformed`, `deadline_exceeded`, …) are NOT errors at
/// this layer — they come back as `Ok(ParsedResponse)`; this enum is
/// only for requests that could not get any authoritative answer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ResilientError {
    /// The circuit is open: the endpoint failed
    /// [`RetryPolicy::circuit_failure_threshold`] consecutive times and
    /// the cooldown has not elapsed. No I/O was attempted.
    CircuitOpen {
        /// Remaining cooldown before a probe will be allowed, ms.
        cooldown_ms: u64,
    },
    /// The retry budget (or the per-request attempt cap) ran out while
    /// the transport kept failing.
    RetryBudgetExhausted {
        /// Attempts made for this request before giving up.
        attempts: u32,
        /// The wire error of the final attempt.
        last: WireError,
    },
    /// A wire-level failure that is not worth replaying (for example an
    /// oversize request), or the failure that opened the circuit.
    Wire(WireError),
}

impl core::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::CircuitOpen { cooldown_ms } => {
                write!(
                    f,
                    "circuit open: endpoint cooling down for {cooldown_ms} ms"
                )
            }
            Self::RetryBudgetExhausted { attempts, last } => {
                write!(
                    f,
                    "retry budget exhausted after {attempts} attempts (last: {last})"
                )
            }
            Self::Wire(e) => write!(f, "wire failure: {e}"),
        }
    }
}

impl std::error::Error for ResilientError {}

/// Observable circuit-breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CircuitState {
    /// Requests flow; failures are being counted.
    Closed,
    /// Requests fail fast until the cooldown elapses.
    Open,
    /// One probe request is deciding between Closed and Open.
    HalfOpen,
}

/// The breaker's internal state machine.
#[derive(Clone, Copy, Debug)]
enum Breaker {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// Running totals of what the client did to get its answers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Requests submitted through [`ResilientClient::try_request`].
    pub requests: u64,
    /// Wire attempts (first tries + replays).
    pub attempts: u64,
    /// Replays after a wire-level failure.
    pub wire_replays: u64,
    /// Retries after an `overloaded` shed.
    pub overload_retries: u64,
    /// Fresh connections established (beyond each request's reuse).
    pub connects: u64,
    /// Backoff sleeps taken.
    pub backoff_sleeps: u64,
    /// Total time slept in backoff, ms.
    pub backoff_ms_total: u64,
    /// Times the circuit transitioned to open.
    pub circuit_opens: u64,
    /// Requests rejected without I/O because the circuit was open.
    pub circuit_fast_fails: u64,
    /// Requests that died on budget/attempt exhaustion.
    pub budget_exhausted: u64,
}

/// A retrying, circuit-breaking wrapper around [`ServeClient`].
#[derive(Debug)]
pub struct ResilientClient {
    addr: String,
    policy: RetryPolicy,
    rng: SplitMix64,
    conn: Option<ServeClient>,
    breaker: Breaker,
    stats: RetryStats,
    budget_left: u64,
    fault: Option<FaultPlan>,
}

impl ResilientClient {
    /// Builds a client for `addr` (no connection is made until the first
    /// request).
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> Self {
        let rng = SplitMix64::new(policy.seed);
        let budget_left = policy.retry_budget;
        Self {
            addr: addr.into(),
            policy,
            rng,
            conn: None,
            breaker: Breaker::Closed {
                consecutive_failures: 0,
            },
            stats: RetryStats::default(),
            budget_left,
            fault: None,
        }
    }

    /// Installs a deterministic transport fault plan: every frame this
    /// client is about to send first consults the plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Totals so far.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// What the installed fault plan has injected (zeroes when no plan).
    pub fn fault_counts(&self) -> FaultCounts {
        self.fault
            .as_ref()
            .map(FaultPlan::counts)
            .unwrap_or_default()
    }

    /// Remaining lifetime replay budget.
    pub fn retry_budget_left(&self) -> u64 {
        self.budget_left
    }

    /// The breaker's current state (Open reports Open even if the
    /// cooldown has elapsed; the transition to half-open happens on the
    /// next request).
    pub fn circuit_state(&self) -> CircuitState {
        match self.breaker {
            Breaker::Closed { .. } => CircuitState::Closed,
            Breaker::Open { .. } => CircuitState::Open,
            Breaker::HalfOpen => CircuitState::HalfOpen,
        }
    }

    /// Sends one request line, retrying per policy, and returns the
    /// server's answer. `Ok` covers *every* authoritative server
    /// response, including typed refusals; `Err` means no authoritative
    /// answer was obtained.
    ///
    /// # Errors
    ///
    /// [`ResilientError::CircuitOpen`] without I/O while the breaker
    /// cools down; [`ResilientError::RetryBudgetExhausted`] when the
    /// transport kept failing past the budget;
    /// [`ResilientError::Wire`] for non-replayable failures (oversize
    /// request, alien response) or the failure that opened the circuit.
    #[must_use = "this returns a Result that must be handled"]
    pub fn try_request(&mut self, line: &str) -> Result<ParsedResponse, ResilientError> {
        self.stats.requests += 1;
        if let Breaker::Open { until } = self.breaker {
            let now = Instant::now();
            if now < until {
                self.stats.circuit_fast_fails += 1;
                let cooldown = until.saturating_duration_since(now);
                return Err(ResilientError::CircuitOpen {
                    cooldown_ms: duration_ms(cooldown),
                });
            }
            self.breaker = Breaker::HalfOpen;
        }
        let frame = try_encode_frame(line, MAX_FRAME_BYTES).map_err(ResilientError::Wire)?;
        let timeout = self.request_timeout_for(line);
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            attempt += 1;
            self.stats.attempts += 1;
            let action = match self.fault.as_mut() {
                Some(plan) => plan.next(frame.len()),
                None => FaultAction::Pass,
            };
            let outcome = self.try_attempt(&frame, timeout, action);
            match outcome {
                Ok(response) => {
                    self.record_success();
                    if response.kind != "overloaded" {
                        return Ok(response);
                    }
                    // Shed: the server is alive and told us when to come
                    // back. Out of attempts or budget, the typed shed
                    // itself is the answer.
                    if attempt >= max_attempts || !self.consume_retry_budget() {
                        return Ok(response);
                    }
                    self.stats.overload_retries += 1;
                    let hint_ms = response
                        .field("retry_after_ms")
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                    let backoff_ms = self.backoff_ms(attempt);
                    self.sleep_ms(hint_ms.max(backoff_ms));
                }
                Err(wire) => {
                    // The connection is no longer trustworthy either way.
                    self.conn = None;
                    let opened = self.record_failure();
                    if opened {
                        return Err(ResilientError::Wire(wire));
                    }
                    if attempt >= max_attempts || !self.consume_retry_budget() {
                        self.stats.budget_exhausted += 1;
                        return Err(ResilientError::RetryBudgetExhausted {
                            attempts: attempt,
                            last: wire,
                        });
                    }
                    self.stats.wire_replays += 1;
                    let backoff_ms = self.backoff_ms(attempt);
                    self.sleep_ms(backoff_ms);
                }
            }
        }
    }

    /// One wire attempt: apply the fault action, send, read, parse.
    #[must_use = "this returns a Result that must be handled"]
    fn try_attempt(
        &mut self,
        frame: &[u8],
        timeout: Option<Duration>,
        action: FaultAction,
    ) -> Result<ParsedResponse, WireError> {
        if matches!(action, FaultAction::DisconnectBeforeSend) {
            // The transport dropped us before the frame went out.
            self.conn = None;
            return Err(WireError::Io {
                detail: "injected: connection dropped before send".to_string(),
            });
        }
        if let FaultAction::Delay { millis } = action {
            std::thread::sleep(Duration::from_millis(millis));
        }
        if self.conn.is_none() {
            let client =
                ServeClient::try_connect_split(&self.addr, self.policy.connect_timeout, timeout)?;
            self.stats.connects += 1;
            self.conn = Some(client);
        }
        let Some(conn) = self.conn.as_mut() else {
            return Err(WireError::Io {
                detail: "connection vanished between connect and send".to_string(),
            });
        };
        conn.set_request_timeout(timeout)?;
        match action {
            FaultAction::CorruptMagic => {
                let mut damaged = frame.to_vec();
                damaged[0] ^= 0x55;
                // The server answers `err malformed` and abandons the
                // connection; from this client's model the frame was
                // corrupted in flight, so the server's rejection of the
                // garbage is not an answer to OUR request — replay it.
                let _ = exchange(conn, &damaged);
                Err(WireError::Io {
                    detail: "injected: frame corrupted in flight".to_string(),
                })
            }
            FaultAction::TruncateFrame { keep } => {
                let keep = keep.min(frame.len());
                let _ = conn.stream().write_all(&frame[..keep]);
                // Dropping the connection closes the socket mid-frame.
                Err(WireError::Truncated {
                    got: keep,
                    want: frame.len(),
                })
            }
            FaultAction::Pass | FaultAction::Delay { .. } | FaultAction::DisconnectBeforeSend => {
                let payload = exchange(conn, frame)?;
                parse_response(&payload)
            }
            // `FaultAction` is non-exhaustive for forward compatibility;
            // unknown future actions degrade to a clean pass.
            #[allow(unreachable_patterns)]
            _ => {
                let payload = exchange(conn, frame)?;
                parse_response(&payload)
            }
        }
    }

    /// Socket budget for one request: its own `deadline_ms` plus grace
    /// when present, else the policy default.
    fn request_timeout_for(&self, line: &str) -> Option<Duration> {
        for tok in line.split_ascii_whitespace() {
            if let Some(ms) = tok.strip_prefix("deadline_ms=") {
                if let Ok(ms) = ms.parse::<u64>() {
                    return Some(Duration::from_millis(ms) + DEADLINE_SOCKET_GRACE);
                }
            }
        }
        self.policy.request_timeout
    }

    /// Registers an authoritative server answer with the breaker.
    fn record_success(&mut self) {
        self.breaker = Breaker::Closed {
            consecutive_failures: 0,
        };
    }

    /// Registers a wire-level failure; returns whether the circuit just
    /// opened.
    fn record_failure(&mut self) -> bool {
        match self.breaker {
            Breaker::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.policy.circuit_failure_threshold.max(1) {
                    self.trip();
                    true
                } else {
                    self.breaker = Breaker::Closed {
                        consecutive_failures: failures,
                    };
                    false
                }
            }
            // The half-open probe failed: straight back to open.
            Breaker::HalfOpen => {
                self.trip();
                true
            }
            Breaker::Open { .. } => true,
        }
    }

    /// Opens the circuit for one cooldown.
    fn trip(&mut self) {
        self.stats.circuit_opens += 1;
        self.breaker = Breaker::Open {
            until: Instant::now() + self.policy.circuit_cooldown,
        };
    }

    /// Takes one unit of the lifetime replay budget; `false` when spent.
    fn consume_retry_budget(&mut self) -> bool {
        if self.budget_left == 0 {
            return false;
        }
        self.budget_left -= 1;
        true
    }

    /// Jittered exponential backoff for retry number `attempt` (1-based
    /// count of attempts already made): uniform in `[capped/2, capped]`
    /// where `capped = min(base · 2^(attempt-1), max_backoff)`.
    fn backoff_ms(&mut self, attempt: u32) -> u64 {
        let base = duration_ms(self.policy.base_backoff).max(1);
        let cap = duration_ms(self.policy.max_backoff).max(base);
        let exponent = attempt.saturating_sub(1).min(BACKOFF_EXPONENT_CAP);
        let raw = base.saturating_mul(1u64 << exponent).min(cap);
        let half = raw / 2;
        half + self.rng.next_below(raw - half + 1)
    }

    /// Sleeps `ms` and accounts it.
    fn sleep_ms(&mut self, ms: u64) {
        if ms == 0 {
            return;
        }
        self.stats.backoff_sleeps += 1;
        self.stats.backoff_ms_total += ms;
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Saturating milliseconds of a duration.
fn duration_ms(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Writes `frame` and reads one response payload off `conn`'s socket.
fn exchange(conn: &mut ServeClient, frame: &[u8]) -> Result<String, WireError> {
    conn.stream().write_all(frame).map_err(|e| io_error(&e))?;
    match try_read_frame(conn.stream(), MAX_FRAME_BYTES)? {
        Some(payload) => Ok(payload),
        None => Err(WireError::Truncated { got: 0, want: 8 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A port with nothing listening (reserved by binding then dropping;
    /// racy in theory, deterministic enough in a test container).
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind probe");
        let addr = listener.local_addr().expect("addr").to_string();
        drop(listener);
        addr
    }

    fn fast_policy(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
            retry_budget: 64,
            circuit_failure_threshold: 4,
            circuit_cooldown: Duration::from_millis(200),
            connect_timeout: Duration::from_millis(200),
            request_timeout: Some(Duration::from_millis(500)),
            seed,
        }
    }

    #[test]
    fn dead_endpoint_exhausts_attempts_with_a_typed_error() {
        let mut client = ResilientClient::new(dead_addr(), fast_policy(1));
        let err = client.try_request("ping").expect_err("nothing listens");
        assert!(
            matches!(
                err,
                ResilientError::RetryBudgetExhausted { attempts: 3, .. }
            ),
            "unexpected: {err:?}"
        );
        let stats = client.stats();
        assert_eq!(stats.attempts, 3);
        assert_eq!(stats.wire_replays, 2);
    }

    #[test]
    fn repeated_failures_open_the_circuit_and_fail_fast() {
        let mut client = ResilientClient::new(dead_addr(), fast_policy(2));
        // First request: 3 attempts = 3 failures (threshold 4 not hit).
        let _ = client.try_request("ping");
        assert_eq!(client.circuit_state(), CircuitState::Closed);
        // Second request's first failure is the 4th consecutive: trips.
        let err = client.try_request("ping").expect_err("still dead");
        assert!(
            matches!(err, ResilientError::Wire(_)),
            "unexpected: {err:?}"
        );
        assert_eq!(client.circuit_state(), CircuitState::Open);
        // While open: typed fast-fail, no I/O, cooldown surfaced.
        let err = client.try_request("ping").expect_err("circuit open");
        match err {
            ResilientError::CircuitOpen { cooldown_ms } => assert!(cooldown_ms <= 200),
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert_eq!(client.stats().circuit_fast_fails, 1);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut policy = fast_policy(3);
        policy.circuit_cooldown = Duration::from_millis(1);
        policy.circuit_failure_threshold = 1;
        let mut client = ResilientClient::new(dead_addr(), policy);
        let _ = client.try_request("ping");
        assert_eq!(client.circuit_state(), CircuitState::Open);
        std::thread::sleep(Duration::from_millis(5));
        // Cooldown elapsed: the next request probes (half-open) and its
        // failure reopens the circuit.
        let _ = client.try_request("ping");
        assert_eq!(client.circuit_state(), CircuitState::Open);
        assert_eq!(client.stats().circuit_opens, 2);
    }

    #[test]
    fn backoff_schedule_is_deterministic_per_seed() {
        let addr = dead_addr();
        let mut a = ResilientClient::new(addr.clone(), fast_policy(9));
        let mut b = ResilientClient::new(addr, fast_policy(9));
        let _ = a.try_request("ping");
        let _ = b.try_request("ping");
        assert_eq!(a.stats().backoff_ms_total, b.stats().backoff_ms_total);
        assert!(a.stats().backoff_ms_total > 0);
    }

    #[test]
    fn retry_budget_is_a_lifetime_cap() {
        let mut policy = fast_policy(4);
        policy.retry_budget = 1;
        policy.circuit_failure_threshold = 100;
        let mut client = ResilientClient::new(dead_addr(), policy);
        let err = client.try_request("ping").expect_err("dead");
        // One replay allowed, then the budget gates attempt 3.
        assert!(
            matches!(
                err,
                ResilientError::RetryBudgetExhausted { attempts: 2, .. }
            ),
            "unexpected: {err:?}"
        );
        assert_eq!(client.retry_budget_left(), 0);
        let err = client.try_request("ping").expect_err("dead, no budget");
        assert!(
            matches!(
                err,
                ResilientError::RetryBudgetExhausted { attempts: 1, .. }
            ),
            "unexpected: {err:?}"
        );
    }

    #[test]
    fn oversize_requests_fail_without_attempts() {
        let mut client = ResilientClient::new(dead_addr(), fast_policy(5));
        let huge = "x".repeat(MAX_FRAME_BYTES + 1);
        let err = client.try_request(&huge).expect_err("oversize");
        assert!(matches!(
            err,
            ResilientError::Wire(WireError::Oversize { .. })
        ));
        assert_eq!(client.stats().attempts, 0, "rejected before any I/O");
    }

    #[test]
    fn deadline_in_the_line_drives_the_socket_budget() {
        let client = ResilientClient::new("127.0.0.1:1".to_string(), fast_policy(6));
        let derived = client.request_timeout_for("eval capacity_kb=16 deadline_ms=250");
        assert_eq!(
            derived,
            Some(Duration::from_millis(250) + DEADLINE_SOCKET_GRACE)
        );
        let fallback = client.request_timeout_for("eval capacity_kb=16");
        assert_eq!(fallback, client.policy.request_timeout);
    }
}
