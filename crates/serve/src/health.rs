//! Server health accounting: the counter block behind the `health` query
//! and the final drain report.
//!
//! Every counter is a relaxed atomic — the numbers are operator telemetry,
//! not synchronization — and a [`HealthSnapshot`] is a plain copy taken at
//! one instant, rendered as deterministic `key=value` lines so scripts can
//! parse it with `split_once('=')`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live health counters shared by the accept loop, connection threads, and
/// the worker pool.
#[derive(Debug, Default)]
pub struct ServerHealth {
    /// Requests answered with an `ok` response (cache hits included).
    pub served: AtomicU64,
    /// Requests refused by the admission controller (`overloaded`).
    pub shed: AtomicU64,
    /// Requests whose evaluation panicked inside the worker's isolation
    /// boundary.
    pub panicked: AtomicU64,
    /// Requests that hit their wall-clock deadline (queued past it or
    /// interrupted mid-evaluation).
    pub deadline_expired: AtomicU64,
    /// Frames that violated the wire protocol (bad magic, oversize,
    /// truncation, non-UTF-8, slow-loris timeout).
    pub malformed: AtomicU64,
    /// Well-framed requests rejected by query validation (unknown op,
    /// out-of-range parameter, duplicate key).
    pub invalid: AtomicU64,
    /// Requests whose evaluation returned a typed model error (timing
    /// failure, failure budget, ...).
    pub eval_failed: AtomicU64,
    /// Requests refused because the server is draining.
    pub drained: AtomicU64,
    /// Connections accepted since startup.
    pub connections_opened: AtomicU64,
    /// Connection handlers that panicked (isolated per connection; the
    /// server keeps accepting).
    pub connections_panicked: AtomicU64,
    /// Response-cache hits.
    pub cache_hits: AtomicU64,
    /// Response-cache misses.
    pub cache_misses: AtomicU64,
    /// Current admission-queue depth (gauge, not a counter).
    pub queue_depth: AtomicUsize,
    /// Exponential moving average of worker service time, microseconds
    /// (feeds the `retry_after_ms` hint on shed responses).
    pub ema_service_micros: AtomicU64,
    /// 1 once the server has entered its drain phase.
    pub draining: AtomicU64,
    /// Worker threads the supervisor respawned after they died (a worker
    /// death is a thread exiting outside a drain — a bug or a chaos kill).
    pub worker_restarts: AtomicU64,
    /// 1 once the supervisor exhausted its restart budget (or could not
    /// spawn a replacement) and stopped respawning dead workers.
    pub supervisor_gave_up: AtomicU64,
    /// Heartbeat-stall episodes: a live worker whose heartbeat epoch froze
    /// past the stall window (wedged in an evaluation the budget cannot
    /// interrupt). Observed, not restarted — the thread still holds its
    /// job.
    pub worker_stalls: AtomicU64,
    /// Connections closed because their sockets refused setup
    /// (`set_read_timeout`/`set_nodelay` failed): a connection without a
    /// frame clock has no slow-loris protection and must not be served.
    pub conn_setup_failed: AtomicU64,
    /// Cache entries recovered from the cache journal at startup.
    pub cache_recovered: AtomicU64,
    /// Cache-journal append failures (the entry is still served and cached
    /// in memory; it just will not survive a restart).
    pub cache_journal_failures: AtomicU64,
}

/// EMA smoothing: new average = 7/8 old + 1/8 sample.
const EMA_KEEP: u64 = 7;
/// EMA denominator (see [`EMA_KEEP`]).
const EMA_DIV: u64 = 8;

impl ServerHealth {
    /// A zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observed service time into the moving average.
    pub fn record_service_micros(&self, micros: u64) {
        // A lost race just drops one sample from the average — harmless.
        let old = self.ema_service_micros.load(Ordering::Relaxed);
        let new = if old == 0 {
            micros
        } else {
            (old * EMA_KEEP + micros) / EMA_DIV
        };
        self.ema_service_micros.store(new, Ordering::Relaxed);
    }

    /// Copies every counter at one instant.
    pub fn snapshot(&self) -> HealthSnapshot {
        HealthSnapshot {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            invalid: self.invalid.load(Ordering::Relaxed),
            eval_failed: self.eval_failed.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            connections_opened: self.connections_opened.load(Ordering::Relaxed),
            connections_panicked: self.connections_panicked.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            draining: self.draining.load(Ordering::Relaxed) != 0,
            worker_restarts: self.worker_restarts.load(Ordering::Relaxed),
            supervisor_gave_up: self.supervisor_gave_up.load(Ordering::Relaxed) != 0,
            worker_stalls: self.worker_stalls.load(Ordering::Relaxed),
            conn_setup_failed: self.conn_setup_failed.load(Ordering::Relaxed),
            cache_recovered: self.cache_recovered.load(Ordering::Relaxed),
            cache_journal_failures: self.cache_journal_failures.load(Ordering::Relaxed),
        }
    }
}

/// One instant's view of the [`ServerHealth`] counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// See [`ServerHealth::served`].
    pub served: u64,
    /// See [`ServerHealth::shed`].
    pub shed: u64,
    /// See [`ServerHealth::panicked`].
    pub panicked: u64,
    /// See [`ServerHealth::deadline_expired`].
    pub deadline_expired: u64,
    /// See [`ServerHealth::malformed`].
    pub malformed: u64,
    /// See [`ServerHealth::invalid`].
    pub invalid: u64,
    /// See [`ServerHealth::eval_failed`].
    pub eval_failed: u64,
    /// See [`ServerHealth::drained`].
    pub drained: u64,
    /// See [`ServerHealth::connections_opened`].
    pub connections_opened: u64,
    /// See [`ServerHealth::connections_panicked`].
    pub connections_panicked: u64,
    /// See [`ServerHealth::cache_hits`].
    pub cache_hits: u64,
    /// See [`ServerHealth::cache_misses`].
    pub cache_misses: u64,
    /// See [`ServerHealth::queue_depth`].
    pub queue_depth: usize,
    /// See [`ServerHealth::draining`].
    pub draining: bool,
    /// See [`ServerHealth::worker_restarts`].
    pub worker_restarts: u64,
    /// See [`ServerHealth::supervisor_gave_up`].
    pub supervisor_gave_up: bool,
    /// See [`ServerHealth::worker_stalls`].
    pub worker_stalls: u64,
    /// See [`ServerHealth::conn_setup_failed`].
    pub conn_setup_failed: u64,
    /// See [`ServerHealth::cache_recovered`].
    pub cache_recovered: u64,
    /// See [`ServerHealth::cache_journal_failures`].
    pub cache_journal_failures: u64,
}

impl HealthSnapshot {
    /// Cache hit rate over `[0, 1]` (0 when the cache is untouched).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the counter block as `key=value` lines (the `health` query
    /// body and the final drain report). Keys are stable; values are plain
    /// decimal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, value) in [
            ("served", self.served),
            ("shed", self.shed),
            ("panicked", self.panicked),
            ("deadline_expired", self.deadline_expired),
            ("malformed", self.malformed),
            ("invalid", self.invalid),
            ("eval_failed", self.eval_failed),
            ("drained", self.drained),
            ("connections_opened", self.connections_opened),
            ("connections_panicked", self.connections_panicked),
            ("cache_hits", self.cache_hits),
            ("cache_misses", self.cache_misses),
            ("queue_depth", self.queue_depth as u64),
            ("draining", u64::from(self.draining)),
            ("worker_restarts", self.worker_restarts),
            ("supervisor_gave_up", u64::from(self.supervisor_gave_up)),
            ("worker_stalls", self.worker_stalls),
            ("conn_setup_failed", self.conn_setup_failed),
            ("cache_recovered", self.cache_recovered),
            ("cache_journal_failures", self.cache_journal_failures),
        ] {
            out.push_str(key);
            out.push('=');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out.push_str(&format!("cache_hit_rate={:.4}\n", self.cache_hit_rate()));
        out
    }

    /// Parses a rendered counter block back (the client-side view; unknown
    /// keys are ignored so old clients read new servers).
    pub fn parse(body: &str) -> Self {
        let mut snap = Self::default();
        for line in body.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let n = value.parse::<u64>().unwrap_or(0);
            match key {
                "served" => snap.served = n,
                "shed" => snap.shed = n,
                "panicked" => snap.panicked = n,
                "deadline_expired" => snap.deadline_expired = n,
                "malformed" => snap.malformed = n,
                "invalid" => snap.invalid = n,
                "eval_failed" => snap.eval_failed = n,
                "drained" => snap.drained = n,
                "connections_opened" => snap.connections_opened = n,
                "connections_panicked" => snap.connections_panicked = n,
                "cache_hits" => snap.cache_hits = n,
                "cache_misses" => snap.cache_misses = n,
                "queue_depth" => snap.queue_depth = n as usize,
                "draining" => snap.draining = n != 0,
                "worker_restarts" => snap.worker_restarts = n,
                "supervisor_gave_up" => snap.supervisor_gave_up = n != 0,
                "worker_stalls" => snap.worker_stalls = n,
                "conn_setup_failed" => snap.conn_setup_failed = n,
                "cache_recovered" => snap.cache_recovered = n,
                "cache_journal_failures" => snap.cache_journal_failures = n,
                _ => {}
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_render_and_parse() {
        let health = ServerHealth::new();
        health.served.store(41, Ordering::Relaxed);
        health.shed.store(7, Ordering::Relaxed);
        health.panicked.store(2, Ordering::Relaxed);
        health.cache_hits.store(30, Ordering::Relaxed);
        health.cache_misses.store(10, Ordering::Relaxed);
        health.queue_depth.store(3, Ordering::Relaxed);
        health.draining.store(1, Ordering::Relaxed);
        health.worker_restarts.store(4, Ordering::Relaxed);
        health.supervisor_gave_up.store(1, Ordering::Relaxed);
        health.worker_stalls.store(1, Ordering::Relaxed);
        health.conn_setup_failed.store(5, Ordering::Relaxed);
        health.cache_recovered.store(12, Ordering::Relaxed);
        health.cache_journal_failures.store(6, Ordering::Relaxed);
        let snap = health.snapshot();
        let back = HealthSnapshot::parse(&snap.render());
        assert_eq!(back, snap);
        assert!(back.draining);
        assert!(back.supervisor_gave_up);
        assert_eq!(back.worker_restarts, 4);
        assert_eq!(back.cache_recovered, 12);
        assert!((back.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_rate_of_an_untouched_cache_is_zero_not_nan() {
        let snap = ServerHealth::new().snapshot();
        assert_eq!(snap.cache_hit_rate(), 0.0);
        assert!(snap.render().contains("cache_hit_rate=0.0000"));
    }

    #[test]
    fn ema_tracks_service_time() {
        let health = ServerHealth::new();
        health.record_service_micros(800);
        assert_eq!(health.ema_service_micros.load(Ordering::Relaxed), 800);
        for _ in 0..64 {
            health.record_service_micros(100);
        }
        let ema = health.ema_service_micros.load(Ordering::Relaxed);
        assert!(ema < 200, "EMA converges toward recent samples, got {ema}");
    }

    #[test]
    fn parse_ignores_unknown_keys_and_garbage() {
        let snap = HealthSnapshot::parse("served=5\nfuture_counter=9\nnot a pair\n");
        assert_eq!(snap.served, 5);
        assert_eq!(snap.shed, 0);
    }
}
