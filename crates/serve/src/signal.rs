//! SIGTERM/SIGINT → [`CancelToken`] bridging for graceful drain.
//!
//! The only unsafe code in the workspace: a minimal FFI declaration of
//! POSIX `signal(2)`. The handler does exactly one async-signal-safe
//! thing — a relaxed atomic store through a process-global
//! [`CancelToken`] clone — and the server's accept loop polls that token,
//! turning the signal into the ordinary drain path (stop accepting,
//! finish in-flight work, flush the final health report, exit 0).

use ppatc::eval::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// POSIX signal number for termination requests (`kill <pid>`).
const SIGTERM: i32 = 15;
/// POSIX signal number for keyboard interrupts (ctrl-c).
const SIGINT: i32 = 2;

/// The token the handler cancels. Installed once per process.
static DRAIN_TOKEN: OnceLock<CancelToken> = OnceLock::new();

/// Guards the one-time installation (separate from [`DRAIN_TOKEN`] so the
/// "did *my* call install it?" answer is race-free).
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// The C signal-handler type.
type SigHandler = extern "C" fn(i32);

extern "C" {
    /// POSIX `signal(2)`. The previous disposition is deliberately
    /// ignored — the server installs its handlers once at startup.
    fn signal(signum: i32, handler: SigHandler) -> usize;
}

/// The installed handler: one relaxed atomic store, nothing else —
/// `CancelToken::cancel` is a `store(true)` on an `AtomicBool`, which is
/// async-signal-safe (no locks, no allocation).
extern "C" fn on_signal(_signum: i32) {
    if let Some(token) = DRAIN_TOKEN.get() {
        token.cancel();
    }
}

/// Installs SIGTERM and SIGINT handlers that cancel `token`. The first
/// call per process wins and returns `true`; later calls install nothing
/// and return `false` (their token will NOT be cancelled on signal — the
/// caller should poll the winner's token instead, or treat `false` as a
/// configuration error).
pub fn install_drain_handler(token: &CancelToken) -> bool {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return false;
    }
    let _ = DRAIN_TOKEN.set(token.clone());
    // SAFETY: `on_signal` matches the C handler ABI and only performs an
    // atomic store; `signal` is the POSIX libc symbol.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_install_wins() {
        let token = CancelToken::new();
        let other = CancelToken::new();
        let first = install_drain_handler(&token);
        let second = install_drain_handler(&other);
        assert!(first, "first install succeeds");
        assert!(!second, "a second token cannot displace the first");
        // Raising SIGTERM in-process would race other tests; the handler
        // path is exercised end-to-end by the CI serve job instead.
    }
}
