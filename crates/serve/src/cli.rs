//! Shared flag parsing for the front-end binaries (`ppatc-serve`, `paper`,
//! `eval_bench`, `serve_bench`).
//!
//! All four binaries take the same supervision flags (`--jobs`/`--workers`,
//! `--deadline`); parsing them here keeps the front ends in agreement on
//! validation — in particular, `--jobs 0` is a structured
//! [`ValidationError`], never a silent clamp to one worker, and operands
//! are normalized the same way everywhere: surrounding whitespace is
//! trimmed and one leading `+` sign is accepted, so `--jobs +8` and
//! `--deadline " 1.5"` parse while `--jobs ""` reports *empty*, not a
//! baffling `NaN is not a worker count`.

use ppatc::ValidationError;
use std::path::PathBuf;
use std::time::Duration;

/// Normalizes one CLI operand: trims surrounding ASCII whitespace and
/// strips at most one leading `+` sign (so `+8` and `8` are the same
/// worker count). Returns `None` for an operand that is empty after
/// trimming — callers report that as its own requirement text instead of
/// surfacing a parse artifact like `NaN`.
fn normalize(raw: &str) -> Option<&str> {
    let trimmed = raw.trim();
    let unsigned = trimmed.strip_prefix('+').unwrap_or(trimmed);
    if unsigned.is_empty() {
        None
    } else if unsigned.starts_with('+') {
        // `++8`: Rust's own parsers accept one leading sign, so hand the
        // doubly-signed original through and let them reject it.
        Some(trimmed)
    } else {
        Some(unsigned)
    }
}

/// Parses a strictly positive count operand (worker pools, queue bounds,
/// request budgets). `None` (a dangling flag) and empty, non-numeric, or
/// zero values are structured errors; `--flag 0` is rejected rather than
/// silently clamped.
///
/// # Errors
///
/// [`ValidationError`] on a missing, empty, malformed, or zero operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_count(field: &'static str, raw: Option<&str>) -> Result<usize, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "present: the flag takes a count >= 1",
        ));
    };
    let Some(digits) = normalize(raw) else {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "non-empty: the flag takes a count >= 1",
        ));
    };
    match digits.parse::<usize>() {
        Ok(0) => Err(ValidationError::new(field, 0.0, "a count >= 1")),
        Ok(n) => Ok(n),
        Err(_) => Err(ValidationError::new(field, f64::NAN, "a count >= 1")),
    }
}

/// Parses a `--jobs`/`--workers` operand via [`try_parse_count`]: a worker
/// count must be an integer of at least 1.
///
/// # Errors
///
/// [`ValidationError`] on a missing, empty, malformed, or zero operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_jobs(raw: Option<&str>) -> Result<usize, ValidationError> {
    try_parse_count("jobs", raw)
}

/// Parses a `--deadline` operand as seconds into a [`Duration`]. The value
/// must be a finite, positive number of seconds; whitespace and a leading
/// `+` are tolerated like every other operand.
///
/// # Errors
///
/// [`ValidationError`] on a missing, empty, malformed, non-finite, or
/// non-positive operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_deadline(raw: Option<&str>) -> Result<Duration, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            "deadline",
            f64::NAN,
            "present: the flag takes a positive number of seconds",
        ));
    };
    let Some(number) = normalize(raw) else {
        return Err(ValidationError::new(
            "deadline",
            f64::NAN,
            "non-empty: the flag takes a positive number of seconds",
        ));
    };
    let secs = number.parse::<f64>().unwrap_or(f64::NAN);
    if !(secs.is_finite() && secs > 0.0) {
        return Err(ValidationError::new(
            "deadline",
            secs,
            "a positive number of seconds",
        ));
    }
    Ok(Duration::from_secs_f64(secs))
}

/// Parses a count operand that may legitimately be zero (restart
/// budgets: `--restart-budget 0` means "never respawn a dead worker").
/// Unlike [`try_parse_count`], `0` is accepted; everything else —
/// missing, empty, or malformed operands — is still a structured error.
///
/// # Errors
///
/// [`ValidationError`] on a missing, empty, or malformed operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_count_or_zero(
    field: &'static str,
    raw: Option<&str>,
) -> Result<usize, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "present: the flag takes a count >= 0",
        ));
    };
    let Some(digits) = normalize(raw) else {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "non-empty: the flag takes a count >= 0",
        ));
    };
    digits
        .parse::<usize>()
        .map_err(|_| ValidationError::new(field, f64::NAN, "a count >= 0"))
}

/// Parses a filesystem-path operand (`--cache-journal`). The only
/// validation is non-emptiness after trimming: the file need not exist
/// (the server creates the journal when absent), and nearly any byte
/// sequence is a legal path, so no `+`-stripping or numeric normalizing
/// applies here.
///
/// # Errors
///
/// [`ValidationError`] on a missing or empty operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_path(field: &'static str, raw: Option<&str>) -> Result<PathBuf, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "present: the flag takes a file path",
        ));
    };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err(ValidationError::new(
            field,
            f64::NAN,
            "non-empty: the flag takes a file path",
        ));
    }
    Ok(PathBuf::from(trimmed))
}

/// Parses a `--port` operand: any integer in `[0, 65535]` (0 asks the OS
/// for an ephemeral port).
///
/// # Errors
///
/// [`ValidationError`] on a missing, empty, malformed, or out-of-range
/// operand.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_port(raw: Option<&str>) -> Result<u16, ValidationError> {
    let Some(raw) = raw else {
        return Err(ValidationError::new(
            "port",
            f64::NAN,
            "present: the flag takes a port in [0, 65535]",
        ));
    };
    let Some(digits) = normalize(raw) else {
        return Err(ValidationError::new(
            "port",
            f64::NAN,
            "non-empty: the flag takes a port in [0, 65535]",
        ));
    };
    digits
        .parse::<u16>()
        .map_err(|_| ValidationError::new("port", f64::NAN, "a port in [0, 65535]"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_accepts_positive_integers() {
        assert_eq!(try_parse_jobs(Some("1")), Ok(1));
        assert_eq!(try_parse_jobs(Some("8")), Ok(8));
    }

    #[test]
    fn jobs_accepts_leading_plus_and_surrounding_whitespace() {
        assert_eq!(try_parse_jobs(Some("+8")), Ok(8));
        assert_eq!(try_parse_jobs(Some(" 8 ")), Ok(8));
        assert_eq!(try_parse_jobs(Some("\t+4\n")), Ok(4));
    }

    #[test]
    fn jobs_zero_is_a_structured_error_not_a_clamp() {
        let e = try_parse_jobs(Some("0")).expect_err("zero workers rejected");
        assert_eq!(e.field, "jobs");
        assert_eq!(e.value, 0.0);
        assert!(try_parse_jobs(Some("+0")).is_err(), "+0 is still zero");
    }

    #[test]
    fn jobs_empty_operand_names_the_emptiness() {
        for raw in ["", "   ", "+", " + "] {
            let e = try_parse_jobs(Some(raw)).expect_err("empty rejected");
            assert_eq!(e.field, "jobs");
            assert!(
                e.requirement.contains("non-empty"),
                "message must say the operand was empty, got: {}",
                e.requirement
            );
        }
    }

    #[test]
    fn jobs_rejects_garbage_and_missing_operands() {
        for raw in ["two", "-3", "++8", "8 8", "0x10"] {
            let e = try_parse_jobs(Some(raw)).expect_err("garbage rejected");
            assert_eq!(e.field, "jobs");
        }
        let e = try_parse_jobs(None).expect_err("dangling flag rejected");
        assert_eq!(e.field, "jobs");
        assert!(e.requirement.contains("present"), "{}", e.requirement);
    }

    #[test]
    fn deadline_parses_fractional_seconds() {
        let d = try_parse_deadline(Some("1.5")).expect("1.5 s parses");
        assert_eq!(d, Duration::from_millis(1_500));
    }

    #[test]
    fn deadline_accepts_leading_plus_and_whitespace() {
        assert_eq!(
            try_parse_deadline(Some("+1.5")).expect("+1.5 s parses"),
            Duration::from_millis(1_500)
        );
        assert_eq!(
            try_parse_deadline(Some(" 2 ")).expect("' 2 ' parses"),
            Duration::from_secs(2)
        );
    }

    #[test]
    fn deadline_rejects_bad_operands() {
        for raw in [Some("0"), Some("-2"), Some("inf"), Some("soon"), None] {
            let e = try_parse_deadline(raw).expect_err("bad deadline rejected");
            assert_eq!(e.field, "deadline");
        }
    }

    #[test]
    fn deadline_empty_operand_names_the_emptiness() {
        let e = try_parse_deadline(Some("  ")).expect_err("empty rejected");
        assert!(e.requirement.contains("non-empty"), "{}", e.requirement);
    }

    #[test]
    fn count_reports_its_own_field_name() {
        assert_eq!(try_parse_count("queue", Some("64")), Ok(64));
        let e = try_parse_count("queue", Some("no")).expect_err("rejected");
        assert_eq!(e.field, "queue");
    }

    #[test]
    fn count_or_zero_accepts_zero_but_rejects_garbage() {
        assert_eq!(try_parse_count_or_zero("restart-budget", Some("0")), Ok(0));
        assert_eq!(try_parse_count_or_zero("restart-budget", Some("+8")), Ok(8));
        for raw in [Some("-1"), Some("no"), Some(" "), None] {
            let e = try_parse_count_or_zero("restart-budget", raw).expect_err("rejected");
            assert_eq!(e.field, "restart-budget");
        }
    }

    #[test]
    fn path_trims_but_does_not_mangle() {
        assert_eq!(
            try_parse_path("cache-journal", Some(" /tmp/j.txt ")),
            Ok(PathBuf::from("/tmp/j.txt"))
        );
        // A path may legitimately start with `+`; no sign-stripping.
        assert_eq!(
            try_parse_path("cache-journal", Some("+cache.journal")),
            Ok(PathBuf::from("+cache.journal"))
        );
        for raw in [Some(""), Some("   "), None] {
            let e = try_parse_path("cache-journal", raw).expect_err("rejected");
            assert_eq!(e.field, "cache-journal");
        }
    }

    #[test]
    fn port_parses_the_full_range() {
        assert_eq!(try_parse_port(Some("0")), Ok(0));
        assert_eq!(try_parse_port(Some("65535")), Ok(65_535));
        assert_eq!(try_parse_port(Some("+7878")), Ok(7_878));
        assert!(try_parse_port(Some("65536")).is_err());
        assert!(try_parse_port(Some("-1")).is_err());
        assert!(try_parse_port(Some("")).is_err());
        assert!(try_parse_port(None).is_err());
    }
}
