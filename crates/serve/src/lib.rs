//! `ppatc-serve`: a fault-tolerant, dependency-free TCP query service
//! over the deterministic PPAtC evaluation core.
//!
//! The paper's tCDP framework becomes a design-exploration *service*
//! here: many concurrent clients submit design-point queries (process
//! comparison at a clock, eDRAM capacity, carbon intensity, workload,
//! Monte-Carlo sweeps) and get byte-identical answers at any concurrency,
//! because every query is a pure function of its parameters and the
//! engine underneath merges parallel work in index order.
//!
//! The robustness architecture (see `DESIGN.md` §11):
//!
//! - [`protocol`] — length-prefixed `PPQ1` framing; every malformed input
//!   is a typed [`protocol::WireError`], never a panic.
//! - [`query`] — the request grammar, range validation, canonical cache
//!   keys, and evaluation under a [`ppatc::RunBudget`] deadline.
//! - [`admission`] — the bounded queue: admit, shed (`overloaded` with a
//!   retry-after hint), or refuse (`draining`). Never unbounded.
//! - [`cache`] — a sharded, bounded response cache generalizing the eDRAM
//!   characterization memo cache, with an optional crash-safe append-only
//!   journal so a restarted server comes back warm.
//! - [`health`] — the counter block behind the `health` query and the
//!   final drain report.
//! - [`server`] — accept loop, per-connection and per-request
//!   `catch_unwind` isolation rings, the worker pool, and graceful drain.
//! - [`signal`] — SIGTERM/SIGINT → drain-token bridging.
//! - [`client`] — a minimal blocking client for tests and the load
//!   harness.
//! - [`resilient`] — the recovery half of the client: seeded backoff with
//!   jitter honoring `retry_after_ms`, reconnect-and-replay, a circuit
//!   breaker, and a retry budget (see `DESIGN.md` §13).
//! - [`fault`] — deterministic seeded transport fault injection for the
//!   chaos harness.
//! - [`cli`] — flag parsers shared with `ppatc-bench`'s binaries so the
//!   front ends cannot drift.

#![warn(missing_docs)]

pub mod admission;
pub mod cache;
pub mod cli;
pub mod client;
pub mod fault;
pub mod health;
pub mod protocol;
pub mod query;
pub mod resilient;
pub mod server;
pub mod signal;

pub use client::ServeClient;
pub use fault::{FaultAction, FaultCounts, FaultPlan, FaultSpec};
pub use health::{HealthSnapshot, ServerHealth};
pub use protocol::{ParsedResponse, WireError};
pub use query::{EvalParams, Query, QueryError, Request};
pub use resilient::{ResilientClient, ResilientError, RetryPolicy, RetryStats};
pub use server::{try_spawn, ServerConfig, ServerHandle};
