//! Design-point queries: the request grammar, parameter validation,
//! canonical cache keys, and evaluation against the deterministic core.
//!
//! A request is one line, `op key=value ...`:
//!
//! ```text
//! ping
//! health
//! drain
//! eval f_clk_mhz=500 capacity_kb=64 ci_g_per_kwh=380 workload=matmul-int
//! mc samples=256 seed=42 capacity_kb=128
//! poison
//! ```
//!
//! Every omitted key takes the paper's nominal value, so the empty `eval`
//! query reproduces Table II's comparison point. Evaluation is a pure
//! function of the parameters — the same query returns byte-identical
//! bytes at any concurrency, which the response cache then makes cheap.
//!
//! Deadlines thread through as [`RunBudget`]s: evaluation polls the budget
//! between pipeline steps (and the Monte-Carlo engine polls at chunk
//! boundaries), so an expired request surfaces as
//! [`PpatcError::Interrupted`] with partial-progress counts instead of
//! pinning a worker.

use ppatc::montecarlo::{self, MonteCarloConfig, UncertaintyRanges};
use ppatc::{
    CaseStudy, EmbodiedPipeline, Lifetime, PpatcError, RunBudget, Supervisor, SystemDesign,
    Technology, UsagePattern,
};
use ppatc_edram::Organization;
use ppatc_pdk::SiVtFlavor;
use ppatc_units::{CarbonIntensity, Frequency};
use ppatc_workloads::{Workload, WorkloadRun};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Servable clock range, MHz. Designs outside it are rejected as invalid
/// before any characterization runs (timing failures *inside* the range
/// still surface as typed `eval_failed` responses).
const F_CLK_MHZ_RANGE: (f64, f64) = (1.0, 4096.0);
/// Servable per-macro eDRAM capacity range, kB. The capacity must also be
/// even so the 2 kB sub-array divides it ([`Organization::new`]'s
/// contract, enforced here so the worker never reaches that panic).
const CAPACITY_KB_RANGE: (u32, u32) = (2, 1024);
/// Sub-array size fixed by the paper's organization, bytes.
const SUBARRAY_BYTES: u32 = 2 * 1024;
/// Word width fixed by the paper's organization, bits.
const WORD_BITS: u32 = 32;
/// Servable lifetime range, months.
const LIFETIME_MONTHS_RANGE: (f64, f64) = (1.0, 1200.0);
/// Upper bound on Monte-Carlo samples per request; larger sweeps belong in
/// the batch binaries, not a shared server.
const MAX_MC_SAMPLES: usize = 65_536;
/// Pipeline steps of one `eval` query (workload, all-Si design, M3D
/// design, study assembly) — the `total` of a partial-progress report.
const EVAL_STEPS: usize = 4;

/// How a request line was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum QueryError {
    /// The line violates the grammar: unknown op, missing `=`, duplicate
    /// or unknown key.
    Malformed {
        /// What was wrong, for the `msg` response field.
        msg: String,
    },
    /// The grammar was fine but a parameter is outside the servable range.
    Invalid {
        /// The offending key.
        field: &'static str,
        /// What the key requires, for the `msg` response field.
        msg: String,
    },
}

impl core::fmt::Display for QueryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Malformed { msg } => write!(f, "malformed request: {msg}"),
            Self::Invalid { field, msg } => write!(f, "invalid '{field}': {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The design-point parameters of an `eval` (and `mc`) query. Defaults
/// are the paper's nominal comparison point.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalParams {
    /// Evaluation clock, MHz.
    pub f_clk_mhz: f64,
    /// Per-macro eDRAM capacity, kB (program and data memories both).
    pub capacity_kb: u32,
    /// Use-phase carbon intensity, gCO₂e/kWh.
    pub ci_g_per_kwh: f64,
    /// Active hours per day.
    pub hours_per_day: f64,
    /// Workload name (any member of [`Workload::suite`]).
    pub workload: String,
    /// Comparison lifetime, months.
    pub lifetime_months: f64,
}

impl Default for EvalParams {
    fn default() -> Self {
        Self {
            f_clk_mhz: 500.0,
            capacity_kb: 64,
            ci_g_per_kwh: 380.0,
            hours_per_day: 2.0,
            workload: "matmul-int".to_string(),
            lifetime_months: 24.0,
        }
    }
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Liveness probe; answered inline.
    Ping,
    /// Health-counter snapshot; answered inline.
    Health,
    /// Ask the server to drain (stop accepting, finish in-flight work).
    Drain,
    /// Deliberately panic inside the evaluator (chaos testing; the server
    /// rejects it unless spawned with poison enabled).
    Poison,
    /// Deliberately exit the worker thread that picks this job up (chaos
    /// testing for the supervisor's respawn path; gated like `poison`).
    KillWorker,
    /// One deterministic design-point evaluation.
    Eval(EvalParams),
    /// A Monte-Carlo sweep over the paper's uncertainty ranges around a
    /// design point.
    MonteCarlo {
        /// The design point swept around.
        params: EvalParams,
        /// Samples to draw.
        samples: usize,
        /// PRNG seed (equal seeds reproduce the sweep exactly).
        seed: u64,
    },
}

/// A parsed request: the query plus its transport options.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// What to evaluate.
    pub query: Query,
    /// Client-requested deadline, ms — may only lower the server's
    /// per-request deadline, never raise it.
    pub deadline_ms: Option<u64>,
}

/// Splits `key=value` tokens, rejecting duplicates and unknown keys.
fn collect_fields<'a>(
    tokens: impl Iterator<Item = &'a str>,
    known: &[&str],
) -> Result<HashMap<&'a str, &'a str>, QueryError> {
    let mut fields = HashMap::new();
    for tok in tokens {
        let Some((key, value)) = tok.split_once('=') else {
            return Err(QueryError::Malformed {
                msg: format!("token `{tok}` is not key=value"),
            });
        };
        if !known.contains(&key) {
            return Err(QueryError::Malformed {
                msg: format!("unknown key `{key}`"),
            });
        }
        if fields.insert(key, value).is_some() {
            return Err(QueryError::Malformed {
                msg: format!("duplicate key `{key}`"),
            });
        }
    }
    Ok(fields)
}

/// Parses one field as `f64` within an inclusive range.
fn f64_field(
    fields: &HashMap<&str, &str>,
    field: &'static str,
    default: f64,
    range: (f64, f64),
) -> Result<f64, QueryError> {
    let Some(raw) = fields.get(field) else {
        return Ok(default);
    };
    let value = raw.parse::<f64>().map_err(|_| QueryError::Invalid {
        field,
        msg: format!("`{raw}` is not a number"),
    })?;
    if !(value.is_finite() && value >= range.0 && value <= range.1) {
        return Err(QueryError::Invalid {
            field,
            msg: format!("{value} is not in [{}, {}]", range.0, range.1),
        });
    }
    Ok(value)
}

/// Parses one field as `u64` (no range beyond the type's).
fn u64_field(
    fields: &HashMap<&str, &str>,
    field: &'static str,
    default: u64,
) -> Result<u64, QueryError> {
    let Some(raw) = fields.get(field) else {
        return Ok(default);
    };
    raw.parse::<u64>().map_err(|_| QueryError::Invalid {
        field,
        msg: format!("`{raw}` is not a non-negative integer"),
    })
}

/// The shared `eval`/`mc` design-point keys.
const EVAL_KEYS: &[&str] = &[
    "f_clk_mhz",
    "capacity_kb",
    "ci_g_per_kwh",
    "hours_per_day",
    "workload",
    "lifetime_months",
    "deadline_ms",
];

/// Extra keys accepted by `mc`.
const MC_KEYS: &[&str] = &[
    "samples",
    "seed",
    "f_clk_mhz",
    "capacity_kb",
    "ci_g_per_kwh",
    "hours_per_day",
    "workload",
    "lifetime_months",
    "deadline_ms",
];

/// Builds [`EvalParams`] from parsed fields, validating every range.
fn eval_params(fields: &HashMap<&str, &str>) -> Result<EvalParams, QueryError> {
    let defaults = EvalParams::default();
    let f_clk_mhz = f64_field(fields, "f_clk_mhz", defaults.f_clk_mhz, F_CLK_MHZ_RANGE)?;
    let capacity_kb = match fields.get("capacity_kb") {
        None => defaults.capacity_kb,
        Some(raw) => {
            let kb = raw.parse::<u32>().map_err(|_| QueryError::Invalid {
                field: "capacity_kb",
                msg: format!("`{raw}` is not a positive integer"),
            })?;
            let (lo, hi) = CAPACITY_KB_RANGE;
            if kb < lo || kb > hi || kb % 2 != 0 {
                return Err(QueryError::Invalid {
                    field: "capacity_kb",
                    msg: format!("{kb} is not an even capacity in [{lo}, {hi}] kB"),
                });
            }
            kb
        }
    };
    let ci_g_per_kwh = f64_field(
        fields,
        "ci_g_per_kwh",
        defaults.ci_g_per_kwh,
        (0.0, 100_000.0), // gCO₂e/kWh — far above any real grid
    )?;
    let hours_per_day = f64_field(
        fields,
        "hours_per_day",
        defaults.hours_per_day,
        (0.01, 24.0),
    )?;
    let lifetime_months = f64_field(
        fields,
        "lifetime_months",
        defaults.lifetime_months,
        LIFETIME_MONTHS_RANGE,
    )?;
    let workload = match fields.get("workload") {
        None => defaults.workload,
        Some(name) => {
            if workload_by_name(name).is_none() {
                let suite = Workload::suite()
                    .iter()
                    .map(Workload::name)
                    .collect::<Vec<_>>()
                    .join(", ");
                return Err(QueryError::Invalid {
                    field: "workload",
                    msg: format!("unknown workload `{name}`; the suite is: {suite}"),
                });
            }
            (*name).to_string()
        }
    };
    Ok(EvalParams {
        f_clk_mhz,
        capacity_kb,
        ci_g_per_kwh,
        hours_per_day,
        workload,
        lifetime_months,
    })
}

/// Parses one request line.
///
/// # Errors
///
/// [`QueryError::Malformed`] for grammar violations, [`QueryError::Invalid`]
/// for out-of-range parameters.
#[must_use = "this returns a Result that must be handled"]
pub fn try_parse_request(line: &str) -> Result<Request, QueryError> {
    let mut tokens = line.split_ascii_whitespace();
    let Some(op) = tokens.next() else {
        return Err(QueryError::Malformed {
            msg: "empty request".to_string(),
        });
    };
    match op {
        "ping" | "health" | "drain" | "poison" | "kill_worker" => {
            if tokens.next().is_some() {
                return Err(QueryError::Malformed {
                    msg: format!("`{op}` takes no arguments"),
                });
            }
            let query = match op {
                "ping" => Query::Ping,
                "health" => Query::Health,
                "drain" => Query::Drain,
                "kill_worker" => Query::KillWorker,
                _ => Query::Poison,
            };
            Ok(Request {
                query,
                deadline_ms: None,
            })
        }
        "eval" => {
            let fields = collect_fields(tokens, EVAL_KEYS)?;
            let deadline_ms = deadline_field(&fields)?;
            Ok(Request {
                query: Query::Eval(eval_params(&fields)?),
                deadline_ms,
            })
        }
        "mc" => {
            let fields = collect_fields(tokens, MC_KEYS)?;
            let deadline_ms = deadline_field(&fields)?;
            let samples = u64_field(&fields, "samples", 256)? as usize;
            if samples == 0 || samples > MAX_MC_SAMPLES {
                return Err(QueryError::Invalid {
                    field: "samples",
                    msg: format!("{samples} is not in [1, {MAX_MC_SAMPLES}]"),
                });
            }
            let seed = u64_field(&fields, "seed", 42)?;
            Ok(Request {
                query: Query::MonteCarlo {
                    params: eval_params(&fields)?,
                    samples,
                    seed,
                },
                deadline_ms,
            })
        }
        other => Err(QueryError::Malformed {
            msg: format!("unknown op `{other}`"),
        }),
    }
}

/// Parses the optional `deadline_ms` transport key (must be >= 1).
fn deadline_field(fields: &HashMap<&str, &str>) -> Result<Option<u64>, QueryError> {
    match fields.get("deadline_ms") {
        None => Ok(None),
        Some(_) => {
            let ms = u64_field(fields, "deadline_ms", 0)?;
            if ms == 0 {
                return Err(QueryError::Invalid {
                    field: "deadline_ms",
                    msg: "a deadline must be at least 1 ms".to_string(),
                });
            }
            Ok(Some(ms))
        }
    }
}

/// The canonical cache key of a query: every parameter in a fixed order,
/// floats as exact bit patterns — two requests share a key iff their
/// answers are bit-identical by construction. Control queries get
/// distinct, uncacheable keys.
pub fn canonical_key(query: &Query) -> String {
    fn eval_part(p: &EvalParams) -> String {
        format!(
            "cap={} ci={:016x} f={:016x} h={:016x} life={:016x} wl={}",
            p.capacity_kb,
            p.ci_g_per_kwh.to_bits(),
            p.f_clk_mhz.to_bits(),
            p.hours_per_day.to_bits(),
            p.lifetime_months.to_bits(),
            p.workload
        )
    }
    match query {
        Query::Ping => "ping".to_string(),
        Query::Health => "health".to_string(),
        Query::Drain => "drain".to_string(),
        Query::Poison => "poison".to_string(),
        Query::KillWorker => "kill_worker".to_string(),
        Query::Eval(p) => format!("eval {}", eval_part(p)),
        Query::MonteCarlo {
            params,
            samples,
            seed,
        } => format!("mc n={samples} seed={seed} {}", eval_part(params)),
    }
}

/// Looks a workload up by its suite name.
fn workload_by_name(name: &str) -> Option<Workload> {
    Workload::suite().into_iter().find(|w| w.name() == name)
}

/// Recovers a possibly poisoned mutex guard (map inserts are single
/// statements; a panicking sibling cannot leave the map incoherent).
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Executes a workload once per process and memoizes the run — the serve
/// generalization of `ppatc-bench`'s `matmul_run` `OnceLock`.
fn memoized_run(name: &str) -> Result<Arc<WorkloadRun>, PpatcError> {
    static RUNS: OnceLock<Mutex<HashMap<String, Arc<WorkloadRun>>>> = OnceLock::new();
    let runs = RUNS.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(run) = lock_unpoisoned(runs).get(name) {
        return Ok(Arc::clone(run));
    }
    // Execute outside the lock: concurrent first-misses duplicate work but
    // never block each other, and the result is deterministic either way.
    let workload = workload_by_name(name).ok_or(PpatcError::Validation(
        ppatc::ValidationError::new("workload", f64::NAN, "a member of the workload suite"),
    ))?;
    let run = Arc::new(workload.execute()?);
    lock_unpoisoned(runs)
        .entry(name.to_string())
        .or_insert_with(|| Arc::clone(&run));
    Ok(run)
}

/// Maps a budget poll failure into [`PpatcError::Interrupted`] carrying
/// the steps finished so far.
fn step_checkpoint(budget: &RunBudget, done: usize) -> Result<(), PpatcError> {
    budget.check().map_err(|reason| PpatcError::Interrupted {
        reason,
        completed: if done == 0 {
            Vec::new()
        } else {
            vec![(0, done)]
        },
        total: EVAL_STEPS,
    })
}

/// Builds the case study and lifetime for a design point, polling `budget`
/// between pipeline steps.
fn build_study(
    params: &EvalParams,
    budget: &RunBudget,
) -> Result<(CaseStudy, Lifetime), PpatcError> {
    step_checkpoint(budget, 0)?;
    let run = memoized_run(&params.workload)?;
    step_checkpoint(budget, 1)?;
    // Safe by construction: capacity_kb is validated even and in range, so
    // the organization's divisibility contract holds.
    let org = Organization::new(params.capacity_kb * 1024, SUBARRAY_BYTES, WORD_BITS);
    let f = Frequency::from_megahertz(params.f_clk_mhz);
    let si =
        SystemDesign::with_flavor_and_memory(Technology::AllSi, f, SiVtFlavor::Rvt, org.clone())?;
    step_checkpoint(budget, 2)?;
    let m3d =
        SystemDesign::with_flavor_and_memory(Technology::M3dIgzoCnfetSi, f, SiVtFlavor::Rvt, org)?;
    step_checkpoint(budget, 3)?;
    let usage = UsagePattern::try_new(
        params.hours_per_day,
        CarbonIntensity::from_g_per_kwh(params.ci_g_per_kwh),
    )?;
    let lifetime = Lifetime::try_months(params.lifetime_months)?;
    let study = CaseStudy::from_designs(si, m3d, &run, EmbodiedPipeline::paper_default(), usage);
    Ok((study, lifetime))
}

/// Evaluates a query against the deterministic core under `budget`.
/// Control queries ([`Query::Ping`]/[`Query::Health`]/[`Query::Drain`])
/// never reach this — the server answers them inline.
///
/// # Errors
///
/// [`PpatcError::Interrupted`] with partial-progress counts when the
/// budget expires, [`PpatcError::Validation`] for model-level rejections,
/// and any evaluation error from the core (timing, failure budgets, ...).
#[must_use = "this returns a Result that must be handled"]
pub fn try_evaluate(query: &Query, budget: &RunBudget) -> Result<String, PpatcError> {
    match query {
        Query::Ping | Query::Health | Query::Drain | Query::KillWorker => Ok(String::new()),
        Query::Poison => {
            poison_panic();
        }
        Query::Eval(params) => {
            let (study, lifetime) = build_study(params, budget)?;
            let ratio = study.tcdp_ratio(lifetime);
            let mut body = String::new();
            body.push_str(&format!("workload={}\n", params.workload));
            body.push_str(&format!("f_clk_mhz={}\n", params.f_clk_mhz));
            body.push_str(&format!("capacity_kb={}\n", params.capacity_kb));
            body.push_str(&format!("ci_g_per_kwh={}\n", params.ci_g_per_kwh));
            body.push_str(&format!("hours_per_day={}\n", params.hours_per_day));
            body.push_str(&format!("lifetime_months={}\n", params.lifetime_months));
            body.push_str(&format!("tcdp_ratio={ratio}\n"));
            body.push_str(&format!("m3d_wins={}\n", u8::from(ratio < 1.0)));
            body.push_str(&format!(
                "area_si_mm2={}\n",
                study
                    .design(Technology::AllSi)
                    .area()
                    .as_square_millimeters()
            ));
            body.push_str(&format!(
                "area_m3d_mm2={}\n",
                study
                    .design(Technology::M3dIgzoCnfetSi)
                    .area()
                    .as_square_millimeters()
            ));
            body.push_str(&format!(
                "embodied_si_g={}\n",
                study.embodied(Technology::AllSi).per_good_die().as_grams()
            ));
            body.push_str(&format!(
                "embodied_m3d_g={}\n",
                study
                    .embodied(Technology::M3dIgzoCnfetSi)
                    .per_good_die()
                    .as_grams()
            ));
            Ok(body)
        }
        Query::MonteCarlo {
            params,
            samples,
            seed,
        } => {
            let (study, lifetime) = build_study(params, budget)?;
            let map = study.tcdp_map(lifetime);
            let config = MonteCarloConfig::new(*samples, *seed)?;
            // jobs = 1: the worker pool is the server's parallelism; the
            // engine still guarantees byte-identical reductions.
            let supervisor = Supervisor::new().with_budget(budget.clone());
            let result = montecarlo::try_run_supervised(
                &map,
                &UncertaintyRanges::paper_default(),
                &config,
                1,
                &supervisor,
            )?;
            let mut body = String::new();
            body.push_str(&format!("samples={}\n", result.samples));
            body.push_str(&format!("evaluated={}\n", result.evaluated));
            body.push_str(&format!("failed={}\n", result.failures.total()));
            body.push_str(&format!("p_m3d_wins={}\n", result.p_m3d_wins));
            body.push_str(&format!("ratio_p05={}\n", result.ratio_quantiles.0));
            body.push_str(&format!("ratio_p50={}\n", result.ratio_quantiles.1));
            body.push_str(&format!("ratio_p95={}\n", result.ratio_quantiles.2));
            Ok(body)
        }
    }
}

/// The poison query's panic site, kept separate so the panic contract is
/// explicit and the worker's `catch_unwind` boundary is what contains it.
///
/// # Panics
///
/// Always — that is the point of the `poison` chaos query.
fn poison_panic() -> ! {
    panic!("poison query: deliberate evaluator panic for chaos testing")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc::eval::CancelToken;
    use std::time::{Duration, Instant};

    #[test]
    fn empty_eval_takes_the_paper_defaults() {
        let req = try_parse_request("eval").expect("parses");
        assert_eq!(req.query, Query::Eval(EvalParams::default()));
        assert_eq!(req.deadline_ms, None);
    }

    #[test]
    fn control_ops_parse_and_reject_arguments() {
        assert_eq!(
            try_parse_request("ping").expect("parses").query,
            Query::Ping
        );
        assert_eq!(
            try_parse_request("health").expect("parses").query,
            Query::Health
        );
        assert_eq!(
            try_parse_request("drain").expect("parses").query,
            Query::Drain
        );
        assert_eq!(
            try_parse_request("poison").expect("parses").query,
            Query::Poison
        );
        assert!(matches!(
            try_parse_request("ping now"),
            Err(QueryError::Malformed { .. })
        ));
    }

    #[test]
    fn grammar_violations_are_malformed() {
        for line in [
            "",
            "warp",
            "eval f_clk_mhz",
            "eval nope=1",
            "eval f_clk_mhz=1 f_clk_mhz=2",
        ] {
            assert!(
                matches!(try_parse_request(line), Err(QueryError::Malformed { .. })),
                "{line:?} must be malformed"
            );
        }
    }

    #[test]
    fn out_of_range_parameters_are_invalid_with_field_names() {
        for (line, field) in [
            ("eval f_clk_mhz=0", "f_clk_mhz"),
            ("eval f_clk_mhz=nan", "f_clk_mhz"),
            ("eval capacity_kb=63", "capacity_kb"),
            ("eval capacity_kb=0", "capacity_kb"),
            ("eval capacity_kb=2048", "capacity_kb"),
            ("eval hours_per_day=25", "hours_per_day"),
            ("eval lifetime_months=-1", "lifetime_months"),
            ("eval workload=fft", "workload"),
            ("mc samples=0", "samples"),
            ("eval deadline_ms=0", "deadline_ms"),
        ] {
            match try_parse_request(line) {
                Err(QueryError::Invalid { field: got, .. }) => {
                    assert_eq!(got, field, "{line}");
                }
                other => panic!("{line}: expected Invalid({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_workload_message_lists_the_suite() {
        let err = try_parse_request("eval workload=fft").expect_err("rejected");
        let QueryError::Invalid { msg, .. } = err else {
            panic!("wrong kind");
        };
        assert!(msg.contains("matmul-int"), "{msg}");
    }

    #[test]
    fn canonical_keys_are_order_insensitive_and_value_exact() {
        let a = try_parse_request("eval capacity_kb=128 f_clk_mhz=600").expect("parses");
        let b = try_parse_request("eval f_clk_mhz=600.0 capacity_kb=128").expect("parses");
        assert_eq!(canonical_key(&a.query), canonical_key(&b.query));
        let c = try_parse_request("eval f_clk_mhz=600.5 capacity_kb=128").expect("parses");
        assert_ne!(canonical_key(&a.query), canonical_key(&c.query));
        // deadline_ms is transport, not identity.
        let d =
            try_parse_request("eval capacity_kb=128 f_clk_mhz=600 deadline_ms=5").expect("parses");
        assert_eq!(canonical_key(&a.query), canonical_key(&d.query));
    }

    #[test]
    fn mc_and_eval_cache_keys_never_collide() {
        let e = try_parse_request("eval").expect("parses");
        let m = try_parse_request("mc").expect("parses");
        assert_ne!(canonical_key(&e.query), canonical_key(&m.query));
    }

    #[test]
    fn paper_point_eval_matches_the_case_study() {
        let req = try_parse_request("eval").expect("parses");
        let body =
            try_evaluate(&req.query, &RunBudget::unlimited()).expect("paper point evaluates");
        let ratio_line = body
            .lines()
            .find(|l| l.starts_with("tcdp_ratio="))
            .expect("ratio line");
        let ratio: f64 = ratio_line
            .trim_start_matches("tcdp_ratio=")
            .parse()
            .expect("numeric ratio");
        let expected = ppatc_bench_free_reference();
        assert!(
            (ratio - expected).abs() < 1e-12,
            "served {ratio} vs direct {expected}"
        );
    }

    /// The same paper-point ratio computed directly against the core.
    fn ppatc_bench_free_reference() -> f64 {
        let run = memoized_run("matmul-int").expect("matmul runs");
        let study = CaseStudy::paper(&run).expect("paper study builds");
        study.tcdp_ratio(Lifetime::months(24.0))
    }

    #[test]
    fn evaluation_is_deterministic_across_repeats() {
        let req = try_parse_request("eval capacity_kb=32").expect("parses");
        let a = try_evaluate(&req.query, &RunBudget::unlimited()).expect("evaluates");
        let b = try_evaluate(&req.query, &RunBudget::unlimited()).expect("evaluates");
        assert_eq!(a, b, "byte-identical on repeat");
    }

    #[test]
    fn expired_budget_interrupts_with_progress_counts() {
        let budget = RunBudget::unlimited().with_deadline(Instant::now() - Duration::from_secs(1));
        let req = try_parse_request("eval").expect("parses");
        match try_evaluate(&req.query, &budget) {
            Err(PpatcError::Interrupted {
                completed, total, ..
            }) => {
                assert_eq!(total, EVAL_STEPS);
                assert!(completed.is_empty(), "no step finished: {completed:?}");
            }
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_mc_reports_partial_samples() {
        let token = CancelToken::new();
        token.cancel();
        let budget = RunBudget::unlimited().with_cancel(&token);
        let req = try_parse_request("mc samples=64").expect("parses");
        match try_evaluate(&req.query, &budget) {
            Err(PpatcError::Interrupted { total, .. }) => assert_eq!(total, EVAL_STEPS),
            other => panic!("expected Interrupted, got {other:?}"),
        }
    }

    #[test]
    fn mc_with_equal_seeds_is_byte_identical() {
        let req = try_parse_request("mc samples=32 seed=7").expect("parses");
        let a = try_evaluate(&req.query, &RunBudget::unlimited()).expect("runs");
        let b = try_evaluate(&req.query, &RunBudget::unlimited()).expect("runs");
        assert_eq!(a, b);
        assert!(a.contains("samples=32"), "{a}");
    }

    #[test]
    fn poison_panics_and_is_catchable() {
        let caught = std::panic::catch_unwind(|| {
            let _ = try_evaluate(&Query::Poison, &RunBudget::unlimited());
        });
        assert!(caught.is_err(), "poison must panic");
    }
}
