//! End-to-end tests of the serve stack: framing, admission control,
//! deadlines, panic isolation, determinism under concurrency, and drain.

use ppatc_serve::client::ServeClient;
use ppatc_serve::protocol::{MAGIC, MAX_FRAME_BYTES};
use ppatc_serve::server::{try_spawn, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(config: ServerConfig) -> ServerHandle {
    try_spawn(config).expect("server binds on an ephemeral port")
}

fn connect(handle: &ServerHandle) -> ServeClient {
    ServeClient::try_connect(handle.addr(), CLIENT_TIMEOUT).expect("client connects")
}

#[test]
fn ping_health_and_eval_round_trip() {
    let handle = spawn(ServerConfig::default());
    let mut client = connect(&handle);

    let pong = client.try_request("ping").expect("ping answers");
    assert!(pong.ok);
    assert_eq!(pong.body, "pong");

    let eval = client.try_request("eval").expect("eval answers");
    assert!(eval.ok, "paper-point eval succeeds: {}", eval.body);
    assert!(eval.body.contains("tcdp_ratio="), "{}", eval.body);
    assert!(eval.body.contains("area_si_mm2="), "{}", eval.body);

    let health = client.try_request("health").expect("health answers");
    assert!(health.ok);
    let snap = ppatc_serve::HealthSnapshot::parse(&health.body);
    assert!(snap.served >= 2, "ping + eval counted: {:?}", snap);
    assert_eq!(snap.panicked, 0);

    let report = handle.drain();
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn repeated_queries_are_byte_identical_at_any_concurrency() {
    let mut config = ServerConfig::default();
    config.workers = 4;
    let handle = spawn(config);
    let queries = [
        "eval capacity_kb=16",
        "eval capacity_kb=16 f_clk_mhz=700",
        "mc samples=64 seed=3 capacity_kb=16",
    ];
    // First pass: one client collects the reference bytes.
    let mut reference = Vec::new();
    let mut client = connect(&handle);
    for q in &queries {
        reference.push(client.try_request_raw(q).expect("reference answers"));
    }
    // Storm: 8 clients × 5 rounds, interleaved, all must match exactly.
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let handle = &handle;
            let reference = &reference;
            scope.spawn(move || {
                let mut client = connect(handle);
                for _round in 0..5 {
                    for (i, q) in queries.iter().enumerate() {
                        let got = client.try_request_raw(q).expect("storm answers");
                        assert_eq!(got, reference[i], "query {q} must be byte-identical");
                    }
                }
            });
        }
    });
    let report = handle.drain();
    assert_eq!(report.panicked, 0);
    assert!(report.cache_hits > 0, "the storm must hit the cache");
}

#[test]
fn malformed_frames_get_typed_errors_and_the_server_survives() {
    let handle = spawn(ServerConfig::default());

    // Bad magic.
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    stream.write_all(b"HTTP/1.1 GET /\r\n").expect("writes");
    let got = ppatc_serve::protocol::try_read_frame(&mut stream, MAX_FRAME_BYTES);
    match got {
        Ok(Some(payload)) => assert!(payload.starts_with("err malformed"), "{payload}"),
        other => panic!("expected a malformed-error frame, got {other:?}"),
    }

    // Oversize length word.
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    let mut frame = Vec::from(MAGIC);
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&frame).expect("writes");
    let got = ppatc_serve::protocol::try_read_frame(&mut stream, MAX_FRAME_BYTES);
    match got {
        Ok(Some(payload)) => assert!(payload.starts_with("err malformed"), "{payload}"),
        other => panic!("expected a malformed-error frame, got {other:?}"),
    }

    // Non-UTF-8 payload.
    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    let mut frame = Vec::from(MAGIC);
    frame.extend_from_slice(&2u32.to_be_bytes());
    frame.extend_from_slice(&[0xff, 0xfe]);
    stream.write_all(&frame).expect("writes");
    let got = ppatc_serve::protocol::try_read_frame(&mut stream, MAX_FRAME_BYTES);
    match got {
        Ok(Some(payload)) => assert!(payload.starts_with("err malformed"), "{payload}"),
        other => panic!("expected a malformed-error frame, got {other:?}"),
    }

    // Bad grammar inside a well-formed frame.
    let mut client = connect(&handle);
    let resp = client.try_request("warp speed=9").expect("answers");
    assert!(!resp.ok);
    assert_eq!(resp.kind, "malformed");

    // The server is still fully alive.
    let pong = client.try_request("ping").expect("still serving");
    assert!(pong.ok);
    let report = handle.drain();
    assert!(
        report.malformed >= 4,
        "all four violations counted: {report:?}"
    );
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn mid_request_disconnects_leave_the_server_serving() {
    let handle = spawn(ServerConfig::default());
    for _ in 0..5 {
        let mut stream = TcpStream::connect(handle.addr()).expect("connects");
        // Half a header, then vanish.
        stream.write_all(&MAGIC[..3]).expect("writes");
        drop(stream);
    }
    let mut client = connect(&handle);
    let pong = client.try_request("ping").expect("still serving");
    assert!(pong.ok);
    let report = handle.drain();
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn slow_loris_frames_time_out_as_malformed() {
    let mut config = ServerConfig::default();
    config.frame_timeout = Duration::from_millis(200);
    let handle = spawn(config);

    let mut stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("timeout");
    stream.write_all(&MAGIC[..2]).expect("drips two bytes");
    std::thread::sleep(Duration::from_millis(600));
    let got = ppatc_serve::protocol::try_read_frame(&mut stream, MAX_FRAME_BYTES);
    match got {
        Ok(Some(payload)) => {
            assert!(payload.starts_with("err malformed"), "{payload}");
            assert!(payload.contains("timeout"), "{payload}");
        }
        other => panic!("expected a slow-loris timeout frame, got {other:?}"),
    }
    let report = handle.drain();
    assert!(report.malformed >= 1);
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn overload_sheds_with_a_retry_hint_instead_of_queueing() {
    let mut config = ServerConfig::default();
    config.workers = 1;
    config.queue_capacity = 1;
    let handle = spawn(config);
    // Distinct cold eval points (each characterizes a fresh eDRAM macro)
    // keep the single worker busy; 8 concurrent submitters must overflow
    // the 1-deep queue.
    let shed_seen = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for i in 0..8u32 {
            let handle = &handle;
            let shed_seen = &shed_seen;
            scope.spawn(move || {
                let mut client = connect(handle);
                let q = format!("eval capacity_kb={}", 18 + 2 * i);
                let resp = client.try_request(&q).expect("typed answer either way");
                if !resp.ok {
                    assert_eq!(resp.kind, "overloaded", "only shedding refuses: {resp:?}");
                    let hint: u64 = resp
                        .field("retry_after_ms")
                        .expect("hint present")
                        .parse()
                        .expect("numeric hint");
                    assert!(hint >= 1);
                    shed_seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    let report = handle.drain();
    assert_eq!(
        shed_seen.load(std::sync::atomic::Ordering::Relaxed) as u64,
        report.shed,
        "client-observed sheds match the health counter"
    );
    assert!(
        report.shed + report.served >= 8,
        "every request got a typed outcome: {report:?}"
    );
}

#[test]
fn expired_deadlines_return_typed_partial_progress() {
    let mut config = ServerConfig::default();
    config.workers = 1;
    let handle = spawn(config);
    let mut blocker = connect(&handle);
    let mut hurried = connect(&handle);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            // Occupies the only worker with a cold design point.
            let resp = blocker.try_request("eval capacity_kb=34").expect("answers");
            assert!(resp.ok || resp.kind == "deadline_exceeded", "{resp:?}");
        });
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            // 1 ms budget, stuck behind the blocker: must expire.
            let resp = hurried
                .try_request("eval capacity_kb=36 deadline_ms=1")
                .expect("typed answer");
            assert!(!resp.ok, "{resp:?}");
            assert_eq!(resp.kind, "deadline_exceeded");
            let completed: usize = resp
                .field("completed")
                .expect("progress count present")
                .parse()
                .expect("numeric");
            let total: usize = resp
                .field("total")
                .expect("total present")
                .parse()
                .expect("numeric");
            assert!(completed <= total.max(1), "{resp:?}");
        });
    });
    let report = handle.drain();
    assert!(report.deadline_expired >= 1, "{report:?}");
}

#[test]
fn poison_queries_panic_in_isolation_and_service_continues() {
    let mut config = ServerConfig::default();
    config.enable_poison = true;
    let handle = spawn(config);
    let mut client = connect(&handle);
    for _ in 0..3 {
        let resp = client.try_request("poison").expect("typed panic answer");
        assert!(!resp.ok);
        assert_eq!(resp.kind, "panic");
    }
    let pong = client
        .try_request("ping")
        .expect("still serving after panics");
    assert!(pong.ok);
    let eval = client.try_request("eval").expect("evaluation still works");
    assert!(eval.ok);
    let report = handle.drain();
    assert_eq!(report.panicked, 3, "{report:?}");
    assert_eq!(
        report.connections_panicked, 0,
        "panics never escape the request ring: {report:?}"
    );
}

#[test]
fn poison_is_rejected_as_invalid_when_disabled() {
    let handle = spawn(ServerConfig::default());
    let mut client = connect(&handle);
    let resp = client.try_request("poison").expect("typed answer");
    assert!(!resp.ok);
    assert_eq!(resp.kind, "invalid");
    let report = handle.drain();
    assert_eq!(report.panicked, 0);
}

#[test]
fn drain_query_stops_the_server_gracefully() {
    let handle = spawn(ServerConfig::default());
    let mut client = connect(&handle);
    let eval = client.try_request("eval capacity_kb=16").expect("answers");
    assert!(eval.ok);
    let drain = client.try_request("drain").expect("drain acknowledged");
    assert!(drain.ok);
    assert_eq!(drain.body, "draining");
    let started = Instant::now();
    let report = handle.join();
    assert!(
        started.elapsed() < Duration::from_secs(15),
        "join returns promptly after a drain query"
    );
    assert!(report.draining);
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn drain_refuses_new_connections_and_requests() {
    let handle = spawn(ServerConfig::default());
    let addr = handle.addr();
    let token = handle.cancel_token();
    let mut open_before = connect(&handle);
    token.cancel();
    let report = handle.drain();
    assert!(report.draining, "{report:?}");
    // The connection that was open across the drain gets `err draining`
    // (or a clean close) rather than a hang.
    match open_before.try_request("eval capacity_kb=16") {
        Ok(resp) => {
            assert!(!resp.ok);
            assert_eq!(resp.kind, "draining");
        }
        Err(_) => {} // already closed — equally graceful
    }
    // New connections are not accepted once the listener is gone.
    std::thread::sleep(Duration::from_millis(50));
    let late = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
    if let Ok(stream) = late {
        // The OS may still complete the handshake on a dead listener
        // socket; a request must then fail rather than be served.
        let mut stream = stream;
        stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .expect("timeout");
        let frame =
            ppatc_serve::protocol::try_encode_frame("ping", MAX_FRAME_BYTES).expect("encodes");
        let _ = stream.write_all(&frame);
        let got = ppatc_serve::protocol::try_read_frame(&mut stream, MAX_FRAME_BYTES);
        assert!(
            !matches!(got, Ok(Some(ref p)) if p.starts_with("ok")),
            "a drained server must not serve: {got:?}"
        );
    }
}

#[test]
fn invalid_parameters_name_the_field() {
    let handle = spawn(ServerConfig::default());
    let mut client = connect(&handle);
    let resp = client
        .try_request("eval capacity_kb=63")
        .expect("typed answer");
    assert!(!resp.ok);
    assert_eq!(resp.kind, "invalid");
    assert_eq!(resp.field("field"), Some("capacity_kb"));
    let report = handle.drain();
    assert!(report.invalid >= 1);
}
