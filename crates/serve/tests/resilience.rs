//! End-to-end tests of the recovery half of the serve stack: the
//! retry/backoff client against a live server, worker-kill supervision,
//! fault-injected transport, and crash-safe cache recovery.

use ppatc_serve::fault::{FaultPlan, FaultSpec};
use ppatc_serve::resilient::{ResilientClient, RetryPolicy};
use ppatc_serve::server::{try_spawn, ServerConfig, ServerHandle};
use ppatc_serve::ServeClient;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(config: ServerConfig) -> ServerHandle {
    try_spawn(config).expect("server binds on an ephemeral port")
}

fn policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_attempts: 8,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(50),
        retry_budget: 10_000,
        circuit_failure_threshold: 50,
        circuit_cooldown: Duration::from_millis(100),
        connect_timeout: Duration::from_secs(5),
        request_timeout: Some(CLIENT_TIMEOUT),
        seed,
    }
}

fn journal_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ppatc-resilience-journal-{}-{name}.txt",
        std::process::id()
    ))
}

/// Polls the server's health until `pred` holds or the timeout passes.
fn wait_for_health(
    handle: &ServerHandle,
    timeout: Duration,
    pred: impl Fn(&ppatc_serve::HealthSnapshot) -> bool,
) -> ppatc_serve::HealthSnapshot {
    let deadline = Instant::now() + timeout;
    loop {
        let snap = handle.health();
        if pred(&snap) || Instant::now() >= deadline {
            return snap;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn resilient_client_round_trips_against_a_live_server() {
    let handle = spawn(ServerConfig::default());
    let mut client = ResilientClient::new(handle.addr().to_string(), policy(1));
    let pong = client.try_request("ping").expect("ping answers");
    assert!(pong.ok);
    assert_eq!(pong.body, "pong");
    let eval = client
        .try_request("eval capacity_kb=16")
        .expect("eval answers");
    assert!(eval.ok, "{}", eval.body);
    // Typed server refusals surface as Ok, not errors.
    let bad = client
        .try_request("eval capacity_kb=7")
        .expect("typed refusal");
    assert!(!bad.ok);
    assert_eq!(bad.kind, "invalid");
    assert_eq!(client.stats().requests, 3);
    assert_eq!(client.stats().wire_replays, 0);
    handle.drain();
}

#[test]
fn killed_workers_are_respawned_and_service_continues() {
    let mut config = ServerConfig::default();
    config.workers = 2;
    config.enable_poison = true;
    let handle = spawn(config);
    let mut client = ResilientClient::new(handle.addr().to_string(), policy(2));

    let killed = client
        .try_request("kill_worker")
        .expect("kill answers first");
    assert!(killed.ok, "{}", killed.body);
    assert_eq!(killed.body, "worker_killed");

    let snap = wait_for_health(&handle, Duration::from_secs(10), |s| s.worker_restarts >= 1);
    assert!(snap.worker_restarts >= 1, "supervisor respawned: {snap:?}");
    assert!(!snap.supervisor_gave_up, "budget not exhausted: {snap:?}");

    // The respawned pool still evaluates.
    let eval = client
        .try_request("eval capacity_kb=16")
        .expect("eval after respawn");
    assert!(eval.ok, "{}", eval.body);
    let report = handle.drain();
    assert!(report.worker_restarts >= 1);
}

#[test]
fn supervisor_gives_up_past_the_restart_budget() {
    let mut config = ServerConfig::default();
    config.workers = 2;
    config.enable_poison = true;
    config.worker_restart_budget = 1;
    let handle = spawn(config);
    let mut client = ResilientClient::new(handle.addr().to_string(), policy(3));

    // First kill: consumed by the budget, respawned.
    let first = client
        .try_request("kill_worker")
        .expect("first kill answers");
    assert!(first.ok);
    wait_for_health(&handle, Duration::from_secs(10), |s| s.worker_restarts >= 1);
    // Second kill: past the budget; the seat is abandoned.
    let second = client
        .try_request("kill_worker")
        .expect("second kill answers");
    assert!(second.ok);
    let snap = wait_for_health(&handle, Duration::from_secs(10), |s| s.supervisor_gave_up);
    assert!(snap.supervisor_gave_up, "{snap:?}");
    assert_eq!(snap.worker_restarts, 1);

    // One worker seat survives (2 workers - 1 dead seat): still serving.
    let eval = client
        .try_request("eval capacity_kb=16")
        .expect("eval still works");
    assert!(eval.ok, "{}", eval.body);
    handle.drain();
}

#[test]
fn fault_injected_transport_still_gets_every_request_answered() {
    let mut config = ServerConfig::default();
    config.workers = 2;
    let handle = spawn(config);
    let spec = FaultSpec {
        seed: 77,
        disconnect_per_mille: 100,
        corrupt_per_mille: 100,
        truncate_per_mille: 100,
        delay_per_mille: 100,
        max_delay_ms: 3,
    };
    let mut chaos_policy = policy(4);
    chaos_policy.max_attempts = 16;
    let mut client = ResilientClient::new(handle.addr().to_string(), chaos_policy)
        .with_fault_plan(FaultPlan::new(spec));
    let queries = ["ping", "eval capacity_kb=16", "eval capacity_kb=32", "ping"];
    for round in 0..10 {
        for q in &queries {
            let resp = client
                .try_request(q)
                .unwrap_or_else(|e| panic!("round {round} query {q} unanswered: {e}"));
            assert!(resp.ok, "round {round} query {q}: {}", resp.body);
        }
    }
    let counts = client.fault_counts();
    assert!(
        counts.disconnects + counts.corrupted + counts.truncated > 0,
        "the plan must actually have injected faults: {counts:?}"
    );
    let stats = client.stats();
    assert!(stats.wire_replays > 0, "replays happened: {stats:?}");
    assert_eq!(stats.requests, 40);
    let report = handle.drain();
    assert_eq!(report.connections_panicked, 0, "chaos stayed typed");
}

#[test]
fn cache_journal_survives_kill_and_restart_byte_identically() {
    let path = journal_path("restart");
    let _ = std::fs::remove_file(&path);
    let queries = [
        "eval capacity_kb=16",
        "eval capacity_kb=16 f_clk_mhz=700",
        "mc samples=32 seed=9 capacity_kb=16",
    ];

    let mut config = ServerConfig::default();
    config.cache_journal = Some(path.clone());
    let handle = spawn(config.clone());
    let mut client = ServeClient::try_connect(handle.addr(), CLIENT_TIMEOUT).expect("connects");
    let mut reference = Vec::new();
    for q in &queries {
        reference.push(client.try_request_raw(q).expect("warm-up answers"));
    }
    drop(client);
    // An abrupt stop: drain tears down threads, but the journal's state
    // is already on disk after every insert (append + flush), so this is
    // equivalent to a kill for cache purposes.
    let report = handle.drain();
    assert_eq!(
        report.cache_journal_failures, 0,
        "write-through stayed clean"
    );

    // Restart on the same journal.
    let handle = spawn(config);
    let recovered = handle.health();
    assert!(
        recovered.cache_recovered >= queries.len() as u64,
        "recovered entries: {recovered:?}"
    );
    let mut client = ServeClient::try_connect(handle.addr(), CLIENT_TIMEOUT).expect("reconnects");
    for (q, want) in queries.iter().zip(&reference) {
        let got = client.try_request_raw(q).expect("post-restart answers");
        assert_eq!(&got, want, "query {q} must be byte-identical after restart");
    }
    let report = handle.drain();
    assert!(
        report.cache_hits >= queries.len() as u64,
        "post-restart answers came from the warm cache: {report:?}"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn overload_sheds_are_retried_until_answered() {
    let mut config = ServerConfig::default();
    config.workers = 1;
    config.queue_capacity = 1;
    let handle = spawn(config);
    // A storm of distinct (uncached) mc queries through resilient
    // clients: every one must end answered, with the shed/retry loop
    // absorbing the contention.
    std::thread::scope(|scope| {
        for t in 0..4u64 {
            let addr = handle.addr().to_string();
            scope.spawn(move || {
                let mut client = ResilientClient::new(addr, policy(100 + t));
                for i in 0..3 {
                    let q = format!("mc samples=64 seed={} capacity_kb=16", t * 10 + i);
                    let resp = client
                        .try_request(&q)
                        .unwrap_or_else(|e| panic!("query {q} unanswered: {e}"));
                    // `ok` or a typed shed that outlived the per-request
                    // attempts — both are authoritative answers.
                    assert!(resp.ok || resp.kind == "overloaded", "{q}: {}", resp.body);
                }
            });
        }
    });
    let report = handle.drain();
    assert_eq!(report.connections_panicked, 0);
}

#[test]
fn chaos_queries_are_rejected_without_enable_poison() {
    let handle = spawn(ServerConfig::default());
    let mut client = ResilientClient::new(handle.addr().to_string(), policy(5));
    let resp = client.try_request("kill_worker").expect("typed rejection");
    assert!(!resp.ok);
    assert_eq!(resp.kind, "invalid");
    let snap = handle.drain();
    assert_eq!(snap.worker_restarts, 0);
    assert_eq!(snap.invalid, 1);
}
