//! Protocol boundary-frame coverage: payloads at exactly the frame
//! limit, zero-length payloads, absurd length prefixes, and frames split
//! across arbitrary read chunk boundaries (table-driven).

use ppatc_serve::protocol::{
    try_encode_frame, try_read_frame, WireError, HEADER_BYTES, MAGIC, MAX_FRAME_BYTES,
};
use ppatc_serve::server::{try_spawn, ServerConfig, ServerHandle};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

fn spawn(config: ServerConfig) -> ServerHandle {
    try_spawn(config).expect("server binds on an ephemeral port")
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connects");
    stream
        .set_read_timeout(Some(CLIENT_TIMEOUT))
        .expect("read timeout");
    stream
}

#[test]
fn payload_at_exactly_max_frame_bytes_round_trips_the_codec() {
    let payload = "y".repeat(MAX_FRAME_BYTES);
    let frame = try_encode_frame(&payload, MAX_FRAME_BYTES).expect("exactly max encodes");
    assert_eq!(frame.len(), HEADER_BYTES + MAX_FRAME_BYTES);
    let mut cursor = &frame[..];
    let back = try_read_frame(&mut cursor, MAX_FRAME_BYTES).expect("exactly max decodes");
    assert_eq!(back.as_deref(), Some(payload.as_str()));
}

#[test]
fn payload_one_over_the_limit_is_oversize_not_a_panic() {
    let payload = "y".repeat(MAX_FRAME_BYTES + 1);
    let err = try_encode_frame(&payload, MAX_FRAME_BYTES).expect_err("one over rejects");
    assert!(matches!(err, WireError::Oversize { .. }), "{err:?}");
}

#[test]
fn server_accepts_a_frame_at_exactly_the_limit() {
    // The payload is protocol-valid but grammar-garbage: the server must
    // *frame* it fine and answer with a typed grammar error — proving
    // the boundary frame fully crossed the wire.
    let handle = spawn(ServerConfig::default());
    let payload = "z".repeat(MAX_FRAME_BYTES);
    let frame = try_encode_frame(&payload, MAX_FRAME_BYTES).expect("encodes");
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).expect("writes");
    let answer = try_read_frame(&mut stream, MAX_FRAME_BYTES)
        .expect("server answers")
        .expect("with a frame");
    // The grammar error would echo the 64 KiB token and overflow the
    // frame, so the server's oversize-response fallback kicks in — the
    // point stands: a typed error, never a hang or a torn connection.
    assert!(
        answer.starts_with("err malformed") || answer.starts_with("err eval_failed"),
        "{answer}"
    );
    handle.drain();
}

#[test]
fn zero_length_payload_is_framed_and_typed_malformed() {
    let handle = spawn(ServerConfig::default());
    let frame = try_encode_frame("", MAX_FRAME_BYTES).expect("empty payload encodes");
    assert_eq!(frame.len(), HEADER_BYTES);
    let mut stream = raw_connect(&handle);
    stream.write_all(&frame).expect("writes");
    let answer = try_read_frame(&mut stream, MAX_FRAME_BYTES)
        .expect("server answers")
        .expect("with a frame");
    // An empty request line is a grammar violation, not a framing one.
    assert!(answer.starts_with("err malformed"), "{answer}");
    handle.drain();
}

#[test]
fn u32_max_length_prefix_is_refused_before_allocation() {
    let handle = spawn(ServerConfig::default());
    let mut stream = raw_connect(&handle);
    let mut frame = Vec::from(MAGIC);
    frame.extend_from_slice(&u32::MAX.to_be_bytes());
    stream.write_all(&frame).expect("writes");
    let answer = try_read_frame(&mut stream, MAX_FRAME_BYTES)
        .expect("server answers")
        .expect("with a frame");
    assert!(answer.starts_with("err malformed"), "{answer}");
    handle.drain();
}

#[test]
fn frames_split_at_arbitrary_chunk_boundaries_still_parse() {
    let handle = spawn(ServerConfig::default());
    let frame = try_encode_frame("ping", MAX_FRAME_BYTES).expect("encodes");
    // Every interior split point of the 12-byte ping frame: inside the
    // magic, on the magic/length seam, inside the length word, on the
    // header/payload seam, and inside the payload.
    let splits: Vec<usize> = (1..frame.len()).collect();
    for split in splits {
        let mut stream = raw_connect(&handle);
        stream.write_all(&frame[..split]).expect("first chunk");
        stream.flush().expect("flush");
        // Let the server's polled reader observe the partial frame.
        std::thread::sleep(Duration::from_millis(20));
        stream.write_all(&frame[split..]).expect("second chunk");
        let answer = try_read_frame(&mut stream, MAX_FRAME_BYTES)
            .expect("server answers")
            .expect("with a frame");
        assert_eq!(answer, "ok\npong", "split at byte {split}");
    }
    let report = handle.drain();
    assert_eq!(report.malformed, 0, "no split was misread as malformed");
}

#[test]
fn three_way_splits_of_a_larger_frame_parse() {
    let handle = spawn(ServerConfig::default());
    let frame = try_encode_frame("eval capacity_kb=16", MAX_FRAME_BYTES).expect("encodes");
    let table = [
        (1usize, 2usize),
        (3, 5),
        (4, 8), // header/payload seam twice
        (7, 8), // length-word tail then seam
        (8, 9),
        (5, frame.len() - 1),
        (frame.len() - 2, frame.len() - 1),
    ];
    for (a, b) in table {
        let mut stream = raw_connect(&handle);
        for chunk in [&frame[..a], &frame[a..b], &frame[b..]] {
            stream.write_all(chunk).expect("chunk");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(10));
        }
        let answer = try_read_frame(&mut stream, MAX_FRAME_BYTES)
            .expect("server answers")
            .expect("with a frame");
        assert!(answer.starts_with("ok\n"), "split ({a},{b}): {answer}");
    }
    handle.drain();
}
