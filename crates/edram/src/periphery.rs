//! Periphery characterization: decoder, wordline driver, and sense
//! amplifier, derived from the standard-cell library and SPICE rather than
//! assumed.
//!
//! The access path of the paper's Fig. 3b macro is
//!
//! ```text
//! address → row decoder → wordline driver → cell (simulated in `cell`)
//!                                            → bitline → sense amplifier
//! ```
//!
//! - the **decoder** is a `log₂(words)`-deep NAND tree characterized from
//!   the [`ppatc_pdk::stdcell`] library;
//! - the **wordline driver** is an upsized inverter driving the wordline's
//!   wire + gate load;
//! - the **sense amplifier** is a latch-type cross-coupled pair whose
//!   regeneration time is measured by transient simulation from the 100 mV
//!   input split the cell develops.

use crate::organization::Organization;
use crate::EdramError;
use ppatc_device::{si, SiVtFlavor};
use ppatc_pdk::stdcell::{CellKind, StdCellLibrary};
use ppatc_pdk::wire::WireModel;
use ppatc_pdk::Technology;
use ppatc_spice::{Circuit, Edge, TransientConfig, Waveform};
use ppatc_units::{Capacitance, Length, Time, Voltage};

/// Wordline-driver upsizing relative to the x1 inverter.
const WL_DRIVER_SIZE: f64 = 8.0;

/// Sense-amplifier device width.
fn sa_width() -> Length {
    Length::from_nanometers(120.0)
}

/// The characterized periphery timing.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeripheryTiming {
    /// Row-decoder delay (NAND tree).
    pub decode: Time,
    /// Wordline driver + wire RC delay.
    pub wordline: Time,
    /// Sense-amplifier regeneration time from a 100 mV split.
    pub sense: Time,
    /// Clocking/margin overhead (setup, timing margins).
    pub margin: Time,
}

impl PeripheryTiming {
    /// Total periphery contribution to an access.
    pub fn total(&self) -> Time {
        self.decode + self.wordline + self.sense + self.margin
    }
}

/// Characterizes the periphery for a macro organization in a technology
/// (the periphery is Si CMOS in both processes; only the wordline load
/// differs through the cell geometry).
///
/// # Errors
///
/// Returns [`EdramError`] if the sense-amplifier simulation fails.
pub fn characterize(
    technology: Technology,
    org: &Organization,
) -> Result<PeripheryTiming, EdramError> {
    let lib = StdCellLibrary::asap7(SiVtFlavor::Rvt);

    // Decoder: a NAND tree resolving log2(words) address bits, fanout-4
    // loading between stages.
    let nand = lib.cell(CellKind::Nand2);
    let stages = (f64::from(org.words())).log2().ceil();
    let stage_delay = nand.delay(nand.input_cap() * 4.0);
    let decode = stage_delay * stages;

    // Wordline driver: an upsized inverter into the wordline wire plus the
    // write-FET gates hanging on it.
    let inv = lib.cell(CellKind::Inverter);
    let wire = WireModel::for_pitch(Length::from_nanometers(36.0))
        .segment(org.wordline_length(technology));
    let cell = crate::cell::BitCell::for_technology(technology);
    let c_wl = Capacitance::from_farads(
        wire.capacitance.as_farads()
            + f64::from(org.subarray_cols()) * cell.write_fet().gate_capacitance().as_farads(),
    );
    // Distributed wire RC adds the Elmore half-term.
    let wordline = Time::from_seconds(
        inv.intrinsic_delay().as_seconds()
            + inv.drive_resistance().as_ohms() / WL_DRIVER_SIZE * c_wl.as_farads()
            + 0.5 * wire.resistance.as_ohms() * wire.capacitance.as_farads(),
    );

    let sense = simulate_sense_amp(technology, org)?;

    Ok(PeripheryTiming {
        decode,
        wordline,
        sense,
        margin: Time::from_picoseconds(100.0),
    })
}

/// Transient simulation of the latch-type sense amplifier: bitlines
/// precharged with a 100 mV split, cross-coupled pair enabled at t = 50 ps,
/// regeneration measured until the falling side passes 10% of V_DD.
fn simulate_sense_amp(technology: Technology, org: &Organization) -> Result<Time, EdramError> {
    let vdd = Voltage::from_volts(0.7);
    let w = sa_width();
    let nfet = si::nfet(SiVtFlavor::Lvt).sized(w);
    let pfet = si::pfet(SiVtFlavor::Lvt).sized(w);

    // Bitline load on each side of the amplifier.
    let bl_wire =
        WireModel::for_pitch(Length::from_nanometers(36.0)).segment(org.bitline_length(technology));
    let cell = crate::cell::BitCell::for_technology(technology);
    let c_bl = Capacitance::from_farads(
        bl_wire.capacitance.as_farads()
            + f64::from(org.subarray_rows()) * cell.write_fet().drain_capacitance().as_farads(),
    );

    let mut ckt = Circuit::new();
    let nvdd = ckt.node("vdd");
    let blt = ckt.node("blt");
    let blc = ckt.node("blc");
    let sen = ckt.node("sen");
    ckt.voltage_source("VDD", nvdd, Circuit::GROUND, Waveform::dc(vdd));
    // Sense-enable tail: held at VDD (off), yanked to ground at 50 ps.
    ckt.voltage_source(
        "VSEN",
        sen,
        Circuit::GROUND,
        Waveform::fall_at(
            vdd,
            Time::from_picoseconds(50.0),
            Time::from_picoseconds(10.0),
        ),
    );
    // Cross-coupled NMOS pair into the tail.
    ckt.fet("MN1", blt, blc, sen, nfet.clone());
    ckt.fet("MN2", blc, blt, sen, nfet);
    // Cross-coupled PMOS pair to the rail.
    ckt.fet("MP1", blt, blc, nvdd, pfet.clone());
    ckt.fet("MP2", blc, blt, nvdd, pfet);
    ckt.capacitor("CBLT", blt, Circuit::GROUND, c_bl);
    ckt.capacitor("CBLC", blc, Circuit::GROUND, c_bl);

    let cfg = TransientConfig::new(Time::from_nanoseconds(2.0), Time::from_picoseconds(1.0))
        .without_dc()
        .with_initial_voltage(blt, vdd)
        .with_initial_voltage(blc, Voltage::from_volts(vdd.as_volts() - 0.1))
        .with_initial_voltage(sen, vdd);
    let trace = ckt.transient(&cfg)?;
    let t = trace
        .crossing(
            blc,
            Voltage::from_volts(0.1 * vdd.as_volts()),
            Edge::Falling,
            Time::from_picoseconds(50.0),
        )
        .ok_or(EdramError::MissingTransition {
            what: "sense-amplifier regeneration",
        })?;
    Ok(t - Time::from_picoseconds(50.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(tech: Technology) -> PeripheryTiming {
        characterize(tech, &Organization::paper_default()).expect("periphery characterizes")
    }

    #[test]
    fn components_are_plausible() {
        let t = timing(Technology::AllSi);
        assert!(t.decode.as_picoseconds() > 20.0 && t.decode.as_picoseconds() < 400.0);
        assert!(t.wordline.as_picoseconds() > 1.0 && t.wordline.as_picoseconds() < 200.0);
        assert!(t.sense.as_picoseconds() > 10.0 && t.sense.as_picoseconds() < 1000.0);
        let total = t.total().as_picoseconds();
        assert!(
            total > 100.0 && total < 1200.0,
            "periphery total {total} ps"
        );
    }

    #[test]
    fn sense_amp_regenerates_faster_on_short_bitlines() {
        // The M3D array's smaller cells make shorter bitlines → less load
        // on the amplifier.
        let si = timing(Technology::AllSi);
        let m3d = timing(Technology::M3dIgzoCnfetSi);
        assert!(m3d.sense <= si.sense);
    }

    #[test]
    fn decoder_depth_follows_capacity() {
        let small = characterize(
            Technology::AllSi,
            &Organization::new(8 * 1024, 2 * 1024, 32),
        )
        .expect("characterizes");
        let large =
            characterize(Technology::AllSi, &Organization::paper_default()).expect("characterizes");
        assert!(small.decode < large.decode);
    }

    #[test]
    fn sense_amp_is_regenerative_not_linear() {
        // Regeneration from a 100 mV split to full rail in well under a
        // nanosecond requires gain — a passive RC with these loads would
        // take far longer.
        let t = timing(Technology::AllSi);
        assert!(t.sense.as_picoseconds() < 800.0, "sense {:?}", t.sense);
    }
}
