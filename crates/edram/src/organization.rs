//! Array organization and geometry.

use ppatc_pdk::Technology;
use ppatc_units::{Area, Length, Time};

/// Bit-cell footprints and periphery overheads.
///
/// The M3D cell (IGZO + 2 CNFETs stacked in the BEOL) occupies ~37 F² at
/// the 36 nm metal pitch and its Si periphery hides underneath it; the
/// all-Si 3T cell lives in the substrate at ~80 F² and its periphery sits
/// beside the array. Calibrated to Table II's 0.025 / 0.068 mm² per 64 kB.
mod geometry {
    /// All-Si 3T cell area, µm².
    pub const CELL_SI_UM2: f64 = 0.104;
    /// M3D stacked 3T cell area, µm².
    pub const CELL_M3D_UM2: f64 = 0.0477;
    /// Periphery area overhead beside an all-Si array.
    pub const PERIPHERY_OVERHEAD_SI: f64 = 0.247;
    /// Periphery overhead for M3D (periphery under the array).
    pub const PERIPHERY_OVERHEAD_M3D: f64 = 0.0;
}

/// Logical and physical organization of an eDRAM macro.
///
/// ```
/// use ppatc_edram::Organization;
///
/// let org = Organization::paper_default();
/// assert_eq!(org.capacity_bytes(), 64 * 1024);
/// assert_eq!(org.subarray_count(), 32);
/// assert_eq!(org.words_per_subarray(), 512);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Organization {
    capacity_bytes: u32,
    subarray_bytes: u32,
    word_bits: u32,
}

impl Organization {
    /// The paper's Step 2 organization: 64 kB partitioned into 2 kB
    /// sub-arrays, each 512 words × 32 bits.
    pub fn paper_default() -> Self {
        Self {
            capacity_bytes: 64 * 1024,
            subarray_bytes: 2 * 1024,
            word_bits: 32,
        }
    }

    /// A custom organization.
    ///
    /// # Panics
    ///
    /// Panics unless `subarray_bytes` divides `capacity_bytes`, the word
    /// width divides the sub-array size, and all values are positive.
    pub fn new(capacity_bytes: u32, subarray_bytes: u32, word_bits: u32) -> Self {
        assert!(capacity_bytes > 0 && subarray_bytes > 0 && word_bits > 0);
        assert!(
            capacity_bytes.is_multiple_of(subarray_bytes),
            "sub-array size must divide capacity"
        );
        assert!(
            word_bits.is_multiple_of(8),
            "word width must be whole bytes"
        );
        assert!(
            subarray_bytes.is_multiple_of(word_bits / 8),
            "word width must divide the sub-array"
        );
        Self {
            capacity_bytes,
            subarray_bytes,
            word_bits,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u32 {
        self.capacity_bytes
    }

    /// Total bit count.
    pub fn bits(&self) -> u64 {
        u64::from(self.capacity_bytes) * 8
    }

    /// Word width in bits.
    pub fn word_bits(&self) -> u32 {
        self.word_bits
    }

    /// Number of addressable words.
    pub fn words(&self) -> u32 {
        self.capacity_bytes / (self.word_bits / 8)
    }

    /// Number of sub-arrays.
    pub fn subarray_count(&self) -> u32 {
        self.capacity_bytes / self.subarray_bytes
    }

    /// Words per sub-array (512 in the paper).
    pub fn words_per_subarray(&self) -> u32 {
        self.subarray_bytes / (self.word_bits / 8)
    }

    /// Rows per (square-ish) sub-array mat. A mat always has at least one
    /// row, so [`Self::subarray_cols`] never divides by zero.
    pub fn subarray_rows(&self) -> u32 {
        let bits = self.subarray_bytes * 8;
        ((f64::from(bits)).sqrt().round() as u32).max(1)
    }

    /// Bit columns per sub-array mat.
    pub fn subarray_cols(&self) -> u32 {
        let bits = self.subarray_bytes * 8;
        bits / self.subarray_rows()
    }

    /// Bit-cell footprint in this technology.
    pub fn cell_area(&self, technology: Technology) -> Area {
        let um2 = match technology {
            Technology::AllSi => geometry::CELL_SI_UM2,
            Technology::M3dIgzoCnfetSi => geometry::CELL_M3D_UM2,
        };
        Area::from_square_micrometers(um2)
    }

    /// Total macro area: cell array plus periphery overhead.
    pub fn macro_area(&self, technology: Technology) -> Area {
        let overhead = match technology {
            Technology::AllSi => geometry::PERIPHERY_OVERHEAD_SI,
            Technology::M3dIgzoCnfetSi => geometry::PERIPHERY_OVERHEAD_M3D,
        };
        self.cell_area(technology) * (self.bits() as f64) * (1.0 + overhead)
    }

    /// Physical length of one sub-array wordline.
    pub fn wordline_length(&self, technology: Technology) -> Length {
        let cell_side = self.cell_area(technology).as_square_micrometers().sqrt();
        Length::from_micrometers(cell_side * f64::from(self.subarray_cols()))
    }

    /// Physical length of one sub-array bitline.
    pub fn bitline_length(&self, technology: Technology) -> Length {
        let cell_side = self.cell_area(technology).as_square_micrometers().sqrt();
        Length::from_micrometers(cell_side * f64::from(self.subarray_rows()))
    }

    /// Retention horizon above which refresh is pointless: if a cell holds
    /// data for longer than a day, the system lifetime model treats the
    /// macro as refresh-free (the IGZO case, >10⁵ s).
    pub fn refresh_horizon() -> Time {
        Time::from_days(1.0)
    }
}

impl Default for Organization {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    #[test]
    fn paper_organization_counts() {
        let org = Organization::paper_default();
        assert_eq!(org.bits(), 524_288);
        assert_eq!(org.words(), 16_384);
        assert_eq!(org.subarray_count(), 32);
        assert_eq!(org.words_per_subarray(), 512);
        // 2 kB = 16384 bits → 128 × 128 mat.
        assert_eq!(org.subarray_rows(), 128);
        assert_eq!(org.subarray_cols(), 128);
    }

    #[test]
    fn areas_match_table2() {
        let org = Organization::paper_default();
        assert!(approx_eq(
            org.macro_area(Technology::AllSi).as_square_millimeters(),
            0.068,
            0.02
        ));
        assert!(approx_eq(
            org.macro_area(Technology::M3dIgzoCnfetSi)
                .as_square_millimeters(),
            0.025,
            0.02
        ));
    }

    #[test]
    fn m3d_wires_are_shorter() {
        let org = Organization::paper_default();
        assert!(
            org.bitline_length(Technology::M3dIgzoCnfetSi) < org.bitline_length(Technology::AllSi)
        );
    }

    #[test]
    #[should_panic(expected = "must divide capacity")]
    fn bad_subarray_size_panics() {
        let _ = Organization::new(64 * 1024, 3000, 32);
    }

    #[test]
    fn custom_organization() {
        let org = Organization::new(32 * 1024, 4 * 1024, 64);
        assert_eq!(org.subarray_count(), 8);
        assert_eq!(org.words(), 4096);
    }
}
