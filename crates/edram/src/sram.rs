//! A 6T SRAM baseline macro — the comparator behind the paper's Sec. III-A
//! bullet "*Low static power: ... DRAM cells do not consume static power,
//! unlike SRAM cells*".
//!
//! This is a logic-rule (not foundry push-rule) 6T SRAM implemented in the
//! same ASAP7-style Si process as the all-Si eDRAM, with the same 2 kB
//! sub-array organization and periphery model, so the three-way comparison
//! (M3D eDRAM / Si eDRAM / Si SRAM) isolates the *cell* trade-offs:
//!
//! - 6T cells are about 2× the area of the 3T eDRAM cell;
//! - every cell leaks continuously through its cross-coupled inverters
//!   (HVT devices, but half a million of them add up);
//! - there is no refresh and no retention limit.

use crate::energy::{self, AccessEnergyBreakdown};
use crate::organization::Organization;
use ppatc_device::{si, Fet, SiVtFlavor};
use ppatc_pdk::Technology;
use ppatc_units::{Area, Energy, Frequency, Length, Power, Time, Voltage};

/// Logic-rule 6T SRAM cell area, µm² (≈ 2× the 3T eDRAM cell).
const CELL_SRAM_UM2: f64 = 0.21;

/// Periphery overhead beside the array (same as the planar eDRAM).
const PERIPHERY_OVERHEAD: f64 = 0.247;

/// A characterized 6T SRAM macro in the all-Si process.
#[derive(Clone, Debug, PartialEq)]
pub struct SramMacro {
    organization: Organization,
    cell_leakage: Power,
    periphery_leakage: Power,
    access_energy: AccessEnergyBreakdown,
    area: Area,
    access_latency: Time,
}

impl SramMacro {
    /// Characterizes the 64 kB baseline with the paper's organization.
    pub fn baseline_64kb() -> Self {
        Self::characterize(Organization::paper_default())
    }

    /// Characterizes an SRAM macro with a custom organization.
    pub fn characterize(organization: Organization) -> Self {
        let vdd = Voltage::from_volts(0.7);
        // Each 6T cell has two potential leakage paths (one inverter pulls
        // high, the other low); HVT devices at minimum width.
        let w = Length::from_nanometers(54.0);
        let nfet: Fet = si::nfet(SiVtFlavor::Hvt).sized(w);
        let pfet: Fet = si::pfet(SiVtFlavor::Hvt).sized(w);
        let leak_per_cell = vdd * (nfet.i_off(vdd) + pfet.i_off(vdd));
        let cells = organization.bits() as f64;
        let cell_leakage = Power::from_watts(leak_per_cell.as_watts() * cells);
        let area =
            Area::from_square_micrometers(CELL_SRAM_UM2 * cells * (1.0 + PERIPHERY_OVERHEAD));
        // Same periphery models as the eDRAM: decoder/SA/driver energy and
        // leakage, with the routing term scaled by this macro's footprint.
        let cell = crate::cell::BitCell::for_technology(Technology::AllSi);
        let access_energy = energy::access_energy(Technology::AllSi, &organization, &cell, area);
        let periphery_leakage = energy::leakage_power(Technology::AllSi, &organization);
        Self {
            organization,
            cell_leakage,
            periphery_leakage,
            access_energy,
            area,
            // Differential read with a full 6T cell is a little faster than
            // the single-ended 3T read; periphery dominates either way.
            access_latency: Time::from_picoseconds(550.0),
        }
    }

    /// Array organization.
    pub fn organization(&self) -> &Organization {
        &self.organization
    }

    /// Macro footprint.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Continuous leakage of the cell array alone.
    pub fn cell_leakage(&self) -> Power {
        self.cell_leakage
    }

    /// Total static power (cells + periphery). SRAM has no refresh term.
    pub fn leakage_power(&self) -> Power {
        self.cell_leakage + self.periphery_leakage
    }

    /// Energy of one word access.
    pub fn access_energy(&self) -> Energy {
        self.access_energy.total()
    }

    /// Worst-case access latency.
    pub fn access_latency(&self) -> Time {
        self.access_latency
    }

    /// Whether an access fits one cycle at `f_clk`.
    pub fn meets_timing(&self, f_clk: Frequency) -> bool {
        self.access_latency <= f_clk.period()
    }

    /// Average energy per cycle with `accesses` over `cycles` at `f_clk` —
    /// directly comparable to
    /// [`EdramMacro::average_energy_per_cycle`](crate::EdramMacro::average_energy_per_cycle).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn average_energy_per_cycle(&self, accesses: u64, cycles: u64, f_clk: Frequency) -> Energy {
        assert!(cycles > 0, "cycle count must be positive");
        let access = self.access_energy.total() * (accesses as f64 / cycles as f64);
        access + self.leakage_power() * f_clk.period()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EdramMacro;
    use ppatc_units::approx_eq;

    #[test]
    fn sram_is_larger_than_si_edram() {
        // Sec. III-A "high memory density": the 3T eDRAM beats 6T SRAM on
        // footprint even before M3D stacking.
        let sram = SramMacro::baseline_64kb();
        let edram = EdramMacro::characterize(Technology::AllSi).expect("characterizes");
        let ratio = sram.area() / edram.area();
        assert!(ratio > 1.5, "SRAM/eDRAM area ratio {ratio:.2}");
    }

    #[test]
    fn sram_cells_leak_continuously() {
        // Sec. III-A "low static power": the DRAM array draws none, the
        // SRAM array draws tens of µW.
        let sram = SramMacro::baseline_64kb();
        assert!(
            sram.cell_leakage().as_microwatts() > 10.0,
            "cell leakage {:?}",
            sram.cell_leakage()
        );
        let edram = EdramMacro::characterize(Technology::M3dIgzoCnfetSi).expect("characterizes");
        // The M3D eDRAM's total static power (periphery only, no refresh)
        // undercuts the SRAM's (periphery + cells).
        assert!(edram.leakage_power() + edram.refresh_power() < sram.leakage_power());
    }

    #[test]
    fn sram_needs_no_refresh_but_si_edram_does() {
        let sram = SramMacro::baseline_64kb();
        let si_edram = EdramMacro::characterize(Technology::AllSi).expect("characterizes");
        // SRAM's background power is flat; Si eDRAM adds refresh on top of
        // its periphery. The all-Si *total* standby comparison can go
        // either way — that's the trade the paper's cell choice navigates.
        assert!(si_edram.refresh_power().as_microwatts() > 0.0);
        assert!(sram.leakage_power().as_microwatts() > 0.0);
    }

    #[test]
    fn sram_meets_500mhz() {
        assert!(SramMacro::baseline_64kb().meets_timing(Frequency::from_megahertz(500.0)));
    }

    #[test]
    fn energy_per_cycle_composition() {
        let sram = SramMacro::baseline_64kb();
        let f = Frequency::from_megahertz(500.0);
        let idle = sram.average_energy_per_cycle(0, 1000, f);
        let expected_idle = sram.leakage_power() * f.period();
        assert!(approx_eq(
            idle.as_joules(),
            expected_idle.as_joules(),
            1e-12
        ));
        let busy = sram.average_energy_per_cycle(800, 1000, f);
        assert!(busy > idle);
    }
}
