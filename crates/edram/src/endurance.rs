//! Write-endurance analysis — quantifying Table I's "*High endurance:
//! eDRAM is charge-based, vs. devices that are not solid-state and exhibit
//! relatively low endurance (e.g. RRAM)*".
//!
//! Given a workload's write traffic and a deployment scenario, this module
//! computes the per-cell write count over the system lifetime and checks it
//! against a memory technology's endurance budget. Charge-based memories
//! (eDRAM, SRAM) are effectively unlimited; filamentary RRAM wears out
//! after 10⁶–10¹² switching events — which is why the paper's bit cell is
//! a DRAM, not an RRAM, even though RRAM would also be BEOL-compatible.

use ppatc_units::Time;

/// Endurance budgets (writes per cell) for candidate memory devices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MemoryEndurance {
    /// Charge-based storage (eDRAM/SRAM): no intrinsic wear mechanism;
    /// bounded only by dielectric lifetime (~10¹⁶ cycles equivalent).
    ChargeBased,
    /// Filamentary/ionic devices with an explicit cycle budget.
    Limited {
        /// Writes per cell before failure.
        cycles: f64,
    },
}

impl MemoryEndurance {
    /// A typical oxide RRAM budget (mid-range of the 10⁶–10¹² literature
    /// spread; Belmonte's IGZO eDRAM comparison point is >10¹¹).
    pub fn typical_rram() -> Self {
        MemoryEndurance::Limited { cycles: 1.0e9 }
    }

    /// The writes-per-cell budget.
    // ppatc-lint: allow(raw-unit-api) — write-endurance budget is a dimensionless count
    pub fn budget(&self) -> f64 {
        match *self {
            MemoryEndurance::ChargeBased => 1.0e16,
            MemoryEndurance::Limited { cycles } => cycles,
        }
    }
}

/// Per-cell write stress of a deployment: workload write traffic spread
/// over the memory's words, integrated over the lifetime's active hours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WriteStress {
    /// Average writes per second across the whole array while active.
    pub writes_per_second: f64,
    /// Words in the array.
    pub words: u32,
    /// Active seconds over the full lifetime.
    pub active_seconds: f64,
}

impl WriteStress {
    /// Builds the stress profile from workload counts and a scenario.
    ///
    /// # Panics
    ///
    /// Panics if any input is non-positive.
    pub fn new(
        data_writes: u64,
        cycles: u64,
        f_clk_hz: f64,
        words: u32,
        lifetime: Time,
        hours_per_day: f64,
    ) -> Self {
        assert!(cycles > 0 && words > 0, "cycles and words must be positive");
        assert!(
            f_clk_hz > 0.0 && hours_per_day > 0.0,
            "rates must be positive"
        );
        let writes_per_second = data_writes as f64 / (cycles as f64 / f_clk_hz);
        let active_seconds = lifetime.as_seconds() * hours_per_day / 24.0;
        Self {
            writes_per_second,
            words,
            active_seconds,
        }
    }

    /// Mean writes per cell over the lifetime (uniform wear assumption —
    /// multiply by a hot-spot factor for worst-case cells).
    // ppatc-lint: allow(raw-unit-api) — lifetime write count is dimensionless
    pub fn writes_per_cell(&self) -> f64 {
        self.writes_per_second * self.active_seconds / f64::from(self.words)
    }

    /// Whether a device with the given endurance survives, with a wear
    /// hot-spot factor (worst cell sees `hotspot_factor ×` the mean).
    pub fn survives(&self, endurance: MemoryEndurance, hotspot_factor: f64) -> bool {
        self.writes_per_cell() * hotspot_factor <= endurance.budget()
    }

    /// Lifetime margin: endurance budget over worst-cell writes
    /// (> 1 means it survives).
    pub fn margin(&self, endurance: MemoryEndurance, hotspot_factor: f64) -> f64 {
        endurance.budget() / (self.writes_per_cell() * hotspot_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's scenario with matmul-int-like write traffic.
    fn paper_stress() -> WriteStress {
        WriteStress::new(
            224_000,    // data writes per run
            20_036_652, // cycles per run
            500e6,
            16_384, // 64 kB / 4 B
            Time::from_months(24.0),
            2.0,
        )
    }

    #[test]
    fn edram_survives_the_paper_lifetime_comfortably() {
        let stress = paper_stress();
        // ~10⁹ writes per cell over 24 months of 2 h/day.
        let wpc = stress.writes_per_cell();
        assert!((1e8..1e10).contains(&wpc), "writes/cell {wpc:.2e}");
        assert!(stress.survives(MemoryEndurance::ChargeBased, 100.0));
        assert!(stress.margin(MemoryEndurance::ChargeBased, 100.0) > 1e4);
    }

    #[test]
    fn rram_wears_out_in_the_same_socket() {
        // Table I's point: an RRAM bit cell in this write-heavy socket
        // would exceed a 10⁹-cycle budget even with perfectly uniform wear.
        let stress = paper_stress();
        assert!(!stress.survives(MemoryEndurance::typical_rram(), 1.0));
        assert!(stress.margin(MemoryEndurance::typical_rram(), 1.0) < 1.0);
    }

    #[test]
    fn light_duty_rescues_rram() {
        // The same system used 5 minutes a day stays within budget.
        let stress = WriteStress::new(
            224_000,
            20_036_652,
            500e6,
            16_384,
            Time::from_months(24.0),
            5.0 / 60.0,
        );
        assert!(stress.survives(MemoryEndurance::typical_rram(), 1.0));
    }

    #[test]
    fn margin_scales_inversely_with_hotspot() {
        let stress = paper_stress();
        let m1 = stress.margin(MemoryEndurance::ChargeBased, 1.0);
        let m10 = stress.margin(MemoryEndurance::ChargeBased, 10.0);
        assert!((m1 / m10 - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "cycles and words must be positive")]
    fn zero_words_panics() {
        let _ = WriteStress::new(1, 1, 1.0, 0, Time::from_months(1.0), 1.0);
    }
}
