//! The 64 kB eDRAM macro of the paper's case study, characterized for both
//! technologies.
//!
//! The M3D design (Fig. 3) uses a 3-transistor bit cell — an IGZO write
//! transistor (ultra-low I_OFF → >1000 s retention) and a two-CNFET read
//! stack (high I_EFF → fast reads) — fabricated *above* the Si CMOS
//! periphery, so the memory's footprint is just the cell array. The all-Si
//! baseline implements the same 3T topology in the substrate, next to its
//! periphery.
//!
//! [`EdramMacro::characterize`] derives, per technology:
//!
//! - **timing** — write/read latencies from transient [`ppatc_spice`]
//!   simulations of the cell with lumped wordline/bitline parasitics
//!   ([`cell`]), plus a fixed periphery (decode + sense) latency; both
//!   designs must meet the paper's single-cycle 500 MHz constraint
//! - **retention** — the storage-node hold time implied by the write
//!   transistor's under-driven off-current, and the refresh power it forces
//!   (all-Si needs ~ms-period refresh; IGZO effectively none)
//! - **energy** — per-access energy split into periphery, array, and global
//!   routing; routing scales with √area, which is where the M3D design's
//!   Table II advantage (15.5 vs 18.0 pJ/cycle) comes from
//! - **area** — cell-array area plus periphery overhead (zero for M3D,
//!   whose periphery hides under the array), matching Table II's
//!   0.025 / 0.068 mm² per 64 kB
//!
//! # Example
//!
//! ```
//! use ppatc_edram::EdramMacro;
//! use ppatc_pdk::Technology;
//!
//! let m3d = EdramMacro::characterize(Technology::M3dIgzoCnfetSi)?;
//! let si = EdramMacro::characterize(Technology::AllSi)?;
//! assert!(m3d.area() < si.area());
//! assert!(m3d.retention() > si.retention());
//! # Ok::<(), ppatc_edram::EdramError>(())
//! ```

#![warn(missing_docs)]

pub mod cell;
pub mod endurance;
mod energy;
mod organization;
pub mod periphery;
pub mod sram;

pub use cell::BitCell;
pub use endurance::{MemoryEndurance, WriteStress};
pub use energy::AccessEnergyBreakdown;
pub use organization::Organization;
pub use sram::SramMacro;

use ppatc_pdk::Technology;
use ppatc_units::{Area, Energy, Frequency, Power, Time, Voltage};
use std::sync::atomic::AtomicUsize;
use std::sync::{Mutex, OnceLock};

/// Error from eDRAM characterization.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum EdramError {
    /// A characterization circuit failed to simulate.
    Simulation(ppatc_spice::SpiceError),
    /// A required signal transition never happened in simulation.
    MissingTransition {
        /// Which measurement failed.
        what: &'static str,
    },
}

impl core::fmt::Display for EdramError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EdramError::Simulation(e) => write!(f, "characterization simulation failed: {e}"),
            EdramError::MissingTransition { what } => {
                write!(f, "characterization found no {what} transition")
            }
        }
    }
}

impl std::error::Error for EdramError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EdramError::Simulation(e) => Some(e),
            EdramError::MissingTransition { .. } => None,
        }
    }
}

impl From<ppatc_spice::SpiceError> for EdramError {
    fn from(e: ppatc_spice::SpiceError) -> Self {
        EdramError::Simulation(e)
    }
}

/// A fully characterized eDRAM macro.
#[derive(Clone, Debug, PartialEq)]
pub struct EdramMacro {
    technology: Technology,
    organization: Organization,
    write_latency: Time,
    read_latency: Time,
    retention: Time,
    access_energy: AccessEnergyBreakdown,
    leakage: Power,
    area: Area,
}

impl EdramMacro {
    /// Characterizes the paper's 64 kB macro (2 kB sub-arrays of 512
    /// 32-bit words) in the given technology.
    ///
    /// # Errors
    ///
    /// Returns [`EdramError`] if a characterization circuit fails to
    /// simulate or never produces the measured transition.
    pub fn characterize(technology: Technology) -> Result<Self, EdramError> {
        Self::characterize_with(technology, Organization::paper_default())
    }

    /// Characterizes a macro with a custom organization.
    ///
    /// Results are memoized per `(technology, organization)` in a
    /// process-wide, thread-safe cache: capacity sweeps and design-space
    /// rankings re-request the same handful of macros hundreds of times,
    /// and the SPICE-backed transient characterization is by far the most
    /// expensive step of the evaluation pipeline. Characterization is
    /// deterministic, so a cached clone is indistinguishable from a fresh
    /// run. Failures are not cached. Use
    /// [`EdramMacro::characterize_uncached`] to bypass the cache (e.g. to
    /// benchmark the characterization itself).
    ///
    /// # Errors
    ///
    /// See [`EdramMacro::characterize`].
    pub fn characterize_with(
        technology: Technology,
        organization: Organization,
    ) -> Result<Self, EdramError> {
        use std::sync::atomic::Ordering;
        if let Ok(cache) = characterization_cache().lock() {
            if let Some((_, _, cached)) = cache
                .iter()
                .find(|(t, o, _)| *t == technology && *o == organization)
            {
                CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                return Ok(cached.clone());
            }
        }
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let characterized = Self::characterize_uncached(technology, organization)?;
        if let Ok(mut cache) = characterization_cache().lock() {
            if !cache
                .iter()
                .any(|(t, o, _)| *t == technology && *o == *characterized.organization())
            {
                cache.push((
                    technology,
                    characterized.organization().clone(),
                    characterized.clone(),
                ));
            }
        }
        Ok(characterized)
    }

    /// Characterizes a macro without consulting or populating the memo
    /// cache (see [`EdramMacro::characterize_with`]).
    ///
    /// # Errors
    ///
    /// See [`EdramMacro::characterize`].
    pub fn characterize_uncached(
        technology: Technology,
        organization: Organization,
    ) -> Result<Self, EdramError> {
        let cell = BitCell::for_technology(technology);
        let timing = cell.characterize_timing(&organization)?;
        let periphery = periphery::characterize(technology, &organization)?;
        let retention = cell.retention();
        let area = organization.macro_area(technology);
        let access_energy = energy::access_energy(technology, &organization, &cell, area);
        let leakage = energy::leakage_power(technology, &organization);
        Ok(Self {
            technology,
            organization,
            write_latency: timing.write_latency
                + periphery.decode
                + periphery.wordline
                + periphery.margin,
            read_latency: timing.read_latency + periphery.total(),
            retention,
            access_energy,
            leakage,
            area,
        })
    }

    /// Technology of this macro.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Array organization.
    pub fn organization(&self) -> &Organization {
        &self.organization
    }

    /// Worst-case write access latency (periphery + cell).
    pub fn write_latency(&self) -> Time {
        self.write_latency
    }

    /// Worst-case read access latency (periphery + cell + sense).
    pub fn read_latency(&self) -> Time {
        self.read_latency
    }

    /// Whether both access types fit in one clock period at `f_clk` — the
    /// paper's Step 2 timing requirement.
    pub fn meets_timing(&self, f_clk: Frequency) -> bool {
        let period = f_clk.period();
        self.write_latency <= period && self.read_latency <= period
    }

    /// Storage-node retention time (write-FET leakage limited).
    pub fn retention(&self) -> Time {
        self.retention
    }

    /// Energy of one (word) access, averaged over reads and writes.
    pub fn access_energy(&self) -> Energy {
        self.access_energy.total()
    }

    /// The periphery/array/routing decomposition of the access energy.
    pub fn access_energy_breakdown(&self) -> &AccessEnergyBreakdown {
        &self.access_energy
    }

    /// Static leakage power of the macro (periphery-dominated; the DRAM
    /// cells themselves hold charge, not current).
    pub fn leakage_power(&self) -> Power {
        self.leakage
    }

    /// Refresh power: rewriting every word each half-retention period.
    /// Effectively zero when retention exceeds [`Organization::refresh_horizon`].
    pub fn refresh_power(&self) -> Power {
        let horizon = Organization::refresh_horizon();
        if self.retention >= horizon {
            return Power::zero();
        }
        let period = self.retention * 0.5;
        let secs = period.as_seconds();
        if secs <= 0.0 {
            // Characterization never yields a non-positive retention; if
            // one is constructed anyway, report no refresh rather than an
            // infinite power that poisons every downstream total.
            return Power::zero();
        }
        let words = self.organization.words() as f64;
        let refreshes_per_second = words / secs;
        Power::from_watts(self.access_energy.total().as_joules() * refreshes_per_second)
    }

    /// Macro area footprint.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Average energy drawn by this macro per clock cycle, given an access
    /// profile: `accesses` word accesses over `cycles` cycles at `f_clk`
    /// (the paper's Table II "average memory energy per cycle").
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero.
    pub fn average_energy_per_cycle(&self, accesses: u64, cycles: u64, f_clk: Frequency) -> Energy {
        assert!(cycles > 0, "cycle count must be positive");
        let period = f_clk.period();
        let access = self.access_energy.total() * (accesses as f64 / cycles as f64);
        let background = (self.leakage + self.refresh_power()) * period;
        access + background
    }

    /// Total operational energy for running an application once (Eq. 6's
    /// `E_operational^(eDRAM)` for this macro).
    pub fn operational_energy(&self, accesses: u64, cycles: u64, f_clk: Frequency) -> Energy {
        self.average_energy_per_cycle(accesses, cycles, f_clk) * (cycles as f64)
    }

    /// The supply voltage of the macro (ASAP7-recommended 0.7 V).
    pub fn vdd(&self) -> Voltage {
        cell::VDD
    }
}

/// The process-wide characterization memo cache. A linear-scan `Vec` keyed
/// by `(technology, organization)`: real sweeps touch at most a few dozen
/// distinct macros, so a scan beats hashing and keeps `Organization` free
/// of `Hash` obligations.
type CharacterizationCache = Mutex<Vec<(Technology, Organization, EdramMacro)>>;

static CHARACTERIZATION_CACHE: OnceLock<CharacterizationCache> = OnceLock::new();
static CACHE_HITS: AtomicUsize = AtomicUsize::new(0);
static CACHE_MISSES: AtomicUsize = AtomicUsize::new(0);

fn characterization_cache() -> &'static CharacterizationCache {
    CHARACTERIZATION_CACHE.get_or_init(|| Mutex::new(Vec::new()))
}

/// Cumulative `(hits, misses)` of the characterization memo cache for this
/// process. A sweep that re-requests identical macros shows up here as a
/// hit count with no matching characterizations.
pub fn characterization_cache_stats() -> (usize, usize) {
    use std::sync::atomic::Ordering;
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Number of distinct `(technology, organization)` macros currently
/// memoized.
pub fn characterization_cache_len() -> usize {
    characterization_cache().lock().map_or(0, |c| c.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn both() -> (EdramMacro, EdramMacro) {
        (
            EdramMacro::characterize(Technology::AllSi).expect("all-Si characterizes"),
            EdramMacro::characterize(Technology::M3dIgzoCnfetSi).expect("M3D characterizes"),
        )
    }

    #[test]
    fn table2_area_anchors() {
        let (si, m3d) = both();
        assert!(
            approx_eq(si.area().as_square_millimeters(), 0.068, 0.02),
            "all-Si 64 kB area {} mm²",
            si.area().as_square_millimeters()
        );
        assert!(
            approx_eq(m3d.area().as_square_millimeters(), 0.025, 0.02),
            "M3D 64 kB area {} mm²",
            m3d.area().as_square_millimeters()
        );
    }

    #[test]
    fn both_meet_500mhz_timing() {
        let (si, m3d) = both();
        let f = Frequency::from_megahertz(500.0);
        assert!(
            si.meets_timing(f),
            "all-Si read {:?} write {:?}",
            si.read_latency(),
            si.write_latency()
        );
        assert!(
            m3d.meets_timing(f),
            "M3D read {:?} write {:?}",
            m3d.read_latency(),
            m3d.write_latency()
        );
    }

    #[test]
    fn igzo_retention_exceeds_1000s() {
        let (si, m3d) = both();
        assert!(
            m3d.retention().as_seconds() > 1000.0,
            "M3D retention {:?}",
            m3d.retention()
        );
        assert!(
            si.retention().as_seconds() < 1.0,
            "all-Si retention {:?}",
            si.retention()
        );
    }

    #[test]
    fn only_all_si_needs_refresh() {
        let (si, m3d) = both();
        assert!(si.refresh_power().as_microwatts() > 1.0);
        assert!(m3d.refresh_power().as_watts() == 0.0);
    }

    #[test]
    fn m3d_access_is_cheaper() {
        let (si, m3d) = both();
        let ratio = si.access_energy() / m3d.access_energy();
        assert!(ratio > 1.05 && ratio < 1.4, "access energy ratio {ratio}");
    }

    #[test]
    fn energy_per_cycle_includes_background() {
        let (si, _) = both();
        let f = Frequency::from_megahertz(500.0);
        let idle = si.average_energy_per_cycle(0, 1_000, f);
        let busy = si.average_energy_per_cycle(900, 1_000, f);
        assert!(busy.as_picojoules() > idle.as_picojoules() + 1.0);
        assert!(idle.as_picojoules() > 0.0);
    }

    #[test]
    fn characterization_is_memoized_per_technology_and_organization() {
        let org = Organization::new(8 * 1024, 2 * 1024, 32);
        let first =
            EdramMacro::characterize_with(Technology::AllSi, org.clone()).expect("characterizes");
        let (hits_before, _) = characterization_cache_stats();
        let second =
            EdramMacro::characterize_with(Technology::AllSi, org.clone()).expect("characterizes");
        let (hits_after, _) = characterization_cache_stats();
        assert_eq!(first, second);
        assert!(
            hits_after > hits_before,
            "repeat request must hit the cache"
        );
        // A cached clone is indistinguishable from a fresh characterization.
        let fresh =
            EdramMacro::characterize_uncached(Technology::AllSi, org).expect("characterizes");
        assert_eq!(first, fresh);
        assert!(characterization_cache_len() >= 1);
    }

    #[test]
    fn cache_distinguishes_technologies_and_organizations() {
        let org = Organization::new(4 * 1024, 2 * 1024, 32);
        let si = EdramMacro::characterize_with(Technology::AllSi, org.clone())
            .expect("all-Si characterizes");
        let m3d = EdramMacro::characterize_with(Technology::M3dIgzoCnfetSi, org)
            .expect("M3D characterizes");
        assert_ne!(si, m3d);
        let bigger = EdramMacro::characterize_with(
            Technology::AllSi,
            Organization::new(16 * 1024, 2 * 1024, 32),
        )
        .expect("characterizes");
        assert!(bigger.area() > si.area());
    }

    #[test]
    fn operational_energy_scales_with_cycles() {
        let (_, m3d) = both();
        let f = Frequency::from_megahertz(500.0);
        let short = m3d.operational_energy(100, 1_000, f);
        let long = m3d.operational_energy(1_000, 10_000, f);
        assert!(approx_eq(long.as_joules(), 10.0 * short.as_joules(), 1e-9));
    }
}
