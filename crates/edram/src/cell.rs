//! The 3T bit cell and its SPICE characterization.
//!
//! Topology (paper Fig. 3a): a write transistor connects the write bitline
//! (WBL) to the storage node (SN) under control of the write wordline
//! (WWL); a two-transistor read stack (SN-gated device in series with a
//! read-wordline device) discharges the read bitline (RBL) when the cell
//! holds a `1`.
//!
//! | | write FET | read stack | why |
//! |---|---|---|---|
//! | M3D | IGZO (overdriven WWL) | CNFET × 2 | ultra-low I_OFF retention + high I_EFF reads |
//! | all-Si | Si HVT | Si LVT × 2 | best leakage/drive split available in one Si flavor set |

use crate::organization::Organization;
use crate::EdramError;
use ppatc_device::{cnfet, igzo, si, Fet, SiVtFlavor};
use ppatc_pdk::wire::WireModel;
use ppatc_pdk::Technology;
use ppatc_spice::{Circuit, Edge, TransientConfig, Waveform};
use ppatc_units::{Capacitance, Current, Length, Time, Voltage};

/// Memory supply voltage (ASAP7-recommended, paper Step 2).
pub const VDD: Voltage = Voltage::new(0.7);

/// Write-wordline overdrive for the IGZO write FET (paper Step 2: 1.3 V).
pub const V_WWL_IGZO: Voltage = Voltage::new(1.3);

/// Write-wordline boost for the all-Si write FET. Must exceed
/// `V_DD + V_T(HVT)` to write a full `1` through the NMOS pass device.
pub const V_WWL_SI: Voltage = Voltage::new(1.1);

/// Negative hold voltage applied to an idle write wordline, suppressing
/// sub-threshold leakage of the write FET. IGZO eDRAM demonstrations hold
/// the WWL well below ground (≈ −1 V in Belmonte VLSI'23) to push the cell
/// onto its bandgap-limited leakage floor.
pub const V_HOLD_UNDER: Voltage = Voltage::new(0.7);

/// Storage-node capacitance (read-FET gate plus parasitics).
fn storage_cap(technology: Technology) -> Capacitance {
    match technology {
        // The planar Si cell adds a deliberate MOS cap to survive between
        // refreshes.
        Technology::AllSi => Capacitance::from_femtofarads(5.0),
        Technology::M3dIgzoCnfetSi => Capacitance::from_femtofarads(1.0),
    }
}

/// Cell transistor width.
fn cell_width() -> Length {
    Length::from_nanometers(80.0)
}

/// Cell-level timing measured by [`BitCell::characterize_timing`]. The
/// decoder/driver/sense-amplifier contribution is characterized separately
/// in [`crate::periphery`] and added by the macro model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CellTiming {
    /// Storage-node write time through the write transistor.
    pub write_latency: Time,
    /// Bitline sense-margin development time through the read stack.
    pub read_latency: Time,
}

/// A technology-specific 3T bit cell.
#[derive(Clone, Debug)]
pub struct BitCell {
    technology: Technology,
    write_fet: Fet,
    read_gate_fet: Fet,
    read_select_fet: Fet,
    c_storage: Capacitance,
    v_wwl: Voltage,
}

impl BitCell {
    /// Builds the paper's cell for the given technology.
    pub fn for_technology(technology: Technology) -> Self {
        let w = cell_width();
        match technology {
            Technology::M3dIgzoCnfetSi => Self {
                technology,
                write_fet: igzo::nfet().sized(w),
                read_gate_fet: cnfet::nfet().sized(w),
                read_select_fet: cnfet::nfet().sized(w),
                c_storage: storage_cap(technology),
                v_wwl: V_WWL_IGZO,
            },
            Technology::AllSi => Self {
                technology,
                write_fet: si::nfet(SiVtFlavor::Hvt).sized(w),
                read_gate_fet: si::nfet(SiVtFlavor::Lvt).sized(w),
                read_select_fet: si::nfet(SiVtFlavor::Lvt).sized(w),
                c_storage: storage_cap(technology),
                v_wwl: V_WWL_SI,
            },
        }
    }

    /// Technology of this cell.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Returns the cell re-derived at an operating temperature (kelvin):
    /// retention collapses with the write FET's thermally activated leakage
    /// while access timing barely moves — the classic DRAM-at-85 °C story.
    ///
    /// # Panics
    ///
    /// Panics if `kelvin` is outside the device models' 200–500 K range.
    #[must_use]
    pub fn at_temperature(&self, kelvin: f64) -> Self {
        Self {
            technology: self.technology,
            write_fet: self.write_fet.at_temperature(kelvin),
            read_gate_fet: self.read_gate_fet.at_temperature(kelvin),
            read_select_fet: self.read_select_fet.at_temperature(kelvin),
            c_storage: self.c_storage,
            v_wwl: self.v_wwl,
        }
    }

    /// The write transistor.
    pub fn write_fet(&self) -> &Fet {
        &self.write_fet
    }

    /// Storage-node capacitance.
    pub fn storage_cap(&self) -> Capacitance {
        self.c_storage
    }

    /// Write-wordline high level.
    pub fn v_wwl(&self) -> Voltage {
        self.v_wwl
    }

    /// Storage-node hold current with the WWL held at `-V_HOLD_UNDER`.
    pub fn hold_leakage(&self) -> Current {
        self.write_fet.i_off_underdriven(VDD, V_HOLD_UNDER)
    }

    /// Leakage-limited retention time: the time for the storage node to sag
    /// by the 0.2 V sense margin at the hold leakage.
    ///
    /// A transient simulation of >1000 s is impractical at picosecond steps,
    /// so this is the standard charge-balance estimate `C·ΔV / I_leak` —
    /// the same first-order model behind the paper's >1000 s IGZO citation.
    pub fn retention(&self) -> Time {
        let margin = Voltage::from_volts(0.2);
        let leak = self.hold_leakage().as_amperes().max(1e-30);
        Time::from_seconds(self.c_storage.as_farads() * margin.as_volts() / leak)
    }

    /// Runs the write and read transient characterizations with the
    /// sub-array's wire parasitics.
    ///
    /// # Errors
    ///
    /// [`EdramError`] if a simulation fails or a transition never occurs.
    pub fn characterize_timing(&self, org: &Organization) -> Result<CellTiming, EdramError> {
        let write = self.simulate_write(org)?;
        let read = self.simulate_read(org)?;
        Ok(CellTiming {
            write_latency: write,
            read_latency: read,
        })
    }

    /// Write transient: WBL at V_DD, WWL pulsed to `v_wwl`; measures the
    /// time for SN to reach 90% of V_DD.
    fn simulate_write(&self, org: &Organization) -> Result<Time, EdramError> {
        let wwl_wire = WireModel::for_pitch(Length::from_nanometers(36.0))
            .segment(org.wordline_length(self.technology));
        let wbl_wire = WireModel::for_pitch(Length::from_nanometers(36.0))
            .segment(org.bitline_length(self.technology));

        let mut ckt = Circuit::new();
        let wbl_drv = ckt.node("wbl_drv");
        let wbl = ckt.node("wbl");
        let wwl = ckt.node("wwl");
        let sn = ckt.node("sn");
        ckt.voltage_source("VWBL", wbl_drv, Circuit::GROUND, Waveform::dc(VDD));
        ckt.resistor("RWBL", wbl_drv, wbl, wbl_wire.resistance);
        ckt.capacitor("CWBL", wbl, Circuit::GROUND, wbl_wire.capacitance);
        ckt.voltage_source(
            "VWWL",
            wwl,
            Circuit::GROUND,
            Waveform::step_at(
                self.v_wwl,
                Time::from_picoseconds(50.0),
                Time::from_picoseconds(20.0),
            ),
        );
        // WWL wire load is driven by the (ideal) wordline driver; its RC is
        // folded into the fixed periphery latency. Storage node starts at 0.
        ckt.fet("MW", wbl, wwl, sn, self.write_fet.clone());
        ckt.capacitor("CSN", sn, Circuit::GROUND, self.c_storage);
        let _ = wwl_wire; // WWL RC accounted in periphery latency

        let cfg = TransientConfig::new(Time::from_nanoseconds(3.0), Time::from_picoseconds(2.0))
            .with_initial_voltage(sn, Voltage::zero());
        let trace = ckt.transient(&cfg)?;
        let target = Voltage::from_volts(VDD.as_volts() * 0.9);
        let t = trace
            .crossing(sn, target, Edge::Rising, Time::from_picoseconds(50.0))
            .ok_or(EdramError::MissingTransition {
                what: "storage-node write",
            })?;
        Ok(t - Time::from_picoseconds(50.0))
    }

    /// Read transient: RBL precharged to V_DD with the full bitline load,
    /// SN holds a `1`; measures the time for the read stack to develop a
    /// 100 mV sense margin.
    fn simulate_read(&self, org: &Organization) -> Result<Time, EdramError> {
        let bl_wire = WireModel::for_pitch(Length::from_nanometers(36.0))
            .segment(org.bitline_length(self.technology));
        // Bitline load: wire plus one drain junction per cell on the column.
        let cells = f64::from(org.subarray_rows());
        let c_bl = Capacitance::from_farads(
            bl_wire.capacitance.as_farads()
                + cells * self.read_select_fet.drain_capacitance().as_farads(),
        );

        let mut ckt = Circuit::new();
        let rbl = ckt.node("rbl");
        let mid = ckt.node("mid");
        let sn = ckt.node("sn");
        let rwl = ckt.node("rwl");
        ckt.voltage_source("VSN", sn, Circuit::GROUND, Waveform::dc(VDD));
        ckt.voltage_source(
            "VRWL",
            rwl,
            Circuit::GROUND,
            Waveform::step_at(
                VDD,
                Time::from_picoseconds(50.0),
                Time::from_picoseconds(20.0),
            ),
        );
        // Stack: RBL → select FET → mid → gate FET (gated by SN) → GND.
        ckt.fet("MSEL", rbl, rwl, mid, self.read_select_fet.clone());
        ckt.fet(
            "MGATE",
            mid,
            sn,
            Circuit::GROUND,
            self.read_gate_fet.clone(),
        );
        ckt.capacitor("CRBL", rbl, Circuit::GROUND, c_bl);
        ckt.capacitor(
            "CMID",
            mid,
            Circuit::GROUND,
            Capacitance::from_attofarads(100.0),
        );

        let cfg = TransientConfig::new(Time::from_nanoseconds(1.5), Time::from_picoseconds(2.0))
            .with_initial_voltage(rbl, VDD);
        let trace = ckt.transient(&cfg)?;
        let sense = Voltage::from_volts(VDD.as_volts() - 0.1);
        let t = trace
            .crossing(rbl, sense, Edge::Falling, Time::from_picoseconds(50.0))
            .ok_or(EdramError::MissingTransition {
                what: "bitline sense-margin",
            })?;
        Ok(t - Time::from_picoseconds(50.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igzo_cell_retains_longer_than_si() {
        let m3d = BitCell::for_technology(Technology::M3dIgzoCnfetSi);
        let si = BitCell::for_technology(Technology::AllSi);
        assert!(m3d.retention().as_seconds() > 1e3);
        assert!(si.retention().as_seconds() < 1.0);
        assert!(si.retention().as_seconds() > 1e-5);
    }

    #[test]
    fn write_latency_fits_half_cycle() {
        let org = Organization::paper_default();
        for tech in Technology::ALL {
            let cell = BitCell::for_technology(tech);
            let t = cell
                .characterize_timing(&org)
                .expect("timing characterizes");
            assert!(
                t.write_latency.as_nanoseconds() < 2.0,
                "{tech}: write {:?}",
                t.write_latency
            );
            assert!(
                t.read_latency.as_nanoseconds() < 2.0,
                "{tech}: read {:?}",
                t.read_latency
            );
        }
    }

    #[test]
    fn cnfet_read_beats_si_read() {
        let org = Organization::paper_default();
        let m3d = BitCell::for_technology(Technology::M3dIgzoCnfetSi)
            .characterize_timing(&org)
            .expect("M3D timing");
        let si = BitCell::for_technology(Technology::AllSi)
            .characterize_timing(&org)
            .expect("Si timing");
        // Raw cell read development (minus the shared periphery constant)
        // favors the CNFET stack on a shorter bitline.
        assert!(m3d.read_latency <= si.read_latency);
    }

    #[test]
    fn hold_leakage_ordering() {
        let m3d = BitCell::for_technology(Technology::M3dIgzoCnfetSi);
        let si = BitCell::for_technology(Technology::AllSi);
        assert!(m3d.hold_leakage().as_amperes() < 1e-3 * si.hold_leakage().as_amperes());
    }
}
