//! Access-energy and leakage models.
//!
//! Per-access energy decomposes into three parts:
//!
//! - **periphery** — decoder, wordline drivers, sense amplifiers, and word
//!   I/O. A calibrated constant (the same Si CMOS circuits serve both
//!   technologies), set so the full system flow reproduces Table II's
//!   "average memory energy per cycle" anchors.
//! - **array** — wordline and bitline switching inside one sub-array,
//!   computed from wire and device capacitances.
//! - **routing** — the H-tree from the macro port to the selected
//!   sub-array. Its switched wire length scales with √(macro area), which
//!   is exactly why the 2.7× smaller M3D macro spends less energy per
//!   access (15.5 vs 18.0 pJ/cycle in Table II).

use crate::cell::BitCell;
use crate::organization::Organization;
use ppatc_pdk::wire::WireModel;
use ppatc_pdk::Technology;
use ppatc_units::{Area, Energy, Length, Power};

/// Calibrated periphery energy per word access, picojoules.
const PERIPHERY_ACCESS_PJ: f64 = 14.23;

/// Effective number of full-length wire equivalents toggled in the H-tree
/// per access (bus width × tree levels), calibrated with the periphery
/// constant.
const ROUTING_WIRE_EQUIVALENTS: f64 = 208.0;

/// Periphery leakage per sub-array (sense amps + drivers + local decode).
const PERIPHERY_LEAK_PER_SUBARRAY_UW: f64 = 3.1;

/// The periphery / array / routing decomposition of one access.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AccessEnergyBreakdown {
    /// Decoder + sense + drivers + word I/O.
    pub periphery: Energy,
    /// Wordline and bitline switching in the sub-array.
    pub array: Energy,
    /// Global H-tree routing (√area-scaled).
    pub routing: Energy,
}

impl AccessEnergyBreakdown {
    /// Total energy of one access.
    pub fn total(&self) -> Energy {
        self.periphery + self.array + self.routing
    }
}

/// Computes the access-energy breakdown for a macro of the given footprint.
pub(crate) fn access_energy(
    technology: Technology,
    org: &Organization,
    cell: &BitCell,
    macro_area: Area,
) -> AccessEnergyBreakdown {
    let vdd = crate::cell::VDD.as_volts();
    let wire = WireModel::for_pitch(Length::from_nanometers(36.0));

    // Array: one wordline at the write overdrive, `word_bits` bitlines at
    // a read/write-averaged half-swing.
    let wl = wire.segment(org.wordline_length(technology));
    let c_wl = wl.capacitance.as_farads()
        + f64::from(org.subarray_cols()) * cell.write_fet().gate_capacitance().as_farads();
    let v_wwl = cell.v_wwl().as_volts();
    let e_wl = c_wl * v_wwl * v_wwl;

    let bl = wire.segment(org.bitline_length(technology));
    let c_bl = bl.capacitance.as_farads()
        + f64::from(org.subarray_rows()) * cell.write_fet().drain_capacitance().as_farads();
    let e_bl = f64::from(org.word_bits()) * c_bl * vdd * vdd * 0.5;

    // Routing: √area H-tree with a calibrated wire-equivalent count.
    let route_len_um = macro_area.as_square_micrometers().sqrt();
    let e_route =
        ROUTING_WIRE_EQUIVALENTS * route_len_um * wire.capacitance_per_um().as_farads() * vdd * vdd;

    AccessEnergyBreakdown {
        periphery: Energy::from_picojoules(PERIPHERY_ACCESS_PJ),
        array: Energy::from_joules(e_wl + e_bl),
        routing: Energy::from_joules(e_route),
    }
}

/// Static leakage of the macro's periphery.
pub(crate) fn leakage_power(_technology: Technology, org: &Organization) -> Power {
    Power::from_microwatts(PERIPHERY_LEAK_PER_SUBARRAY_UW * f64::from(org.subarray_count()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(tech: Technology) -> AccessEnergyBreakdown {
        let org = Organization::paper_default();
        let cell = BitCell::for_technology(tech);
        access_energy(tech, &org, &cell, org.macro_area(tech))
    }

    #[test]
    fn periphery_dominates() {
        let b = breakdown(Technology::AllSi);
        assert!(b.periphery > b.routing);
        assert!(b.routing > b.array);
    }

    #[test]
    fn routing_scales_with_macro_size() {
        let si = breakdown(Technology::AllSi);
        let m3d = breakdown(Technology::M3dIgzoCnfetSi);
        let ratio = si.routing / m3d.routing;
        // √(0.068/0.025) ≈ 1.65.
        assert!((1.5..1.8).contains(&ratio), "routing ratio {ratio}");
        assert_eq!(si.periphery, m3d.periphery);
    }

    #[test]
    fn total_access_energy_is_tens_of_picojoules() {
        let si = breakdown(Technology::AllSi).total().as_picojoules();
        let m3d = breakdown(Technology::M3dIgzoCnfetSi)
            .total()
            .as_picojoules();
        assert!((18.0..22.0).contains(&si), "all-Si access {si} pJ");
        assert!((16.0..19.5).contains(&m3d), "M3D access {m3d} pJ");
    }

    #[test]
    fn leakage_scales_with_subarrays() {
        let small = leakage_power(Technology::AllSi, &Organization::new(32 * 1024, 2048, 32));
        let big = leakage_power(Technology::AllSi, &Organization::paper_default());
        assert!((big / small - 2.0).abs() < 1e-9);
    }
}
