//! The ARMv6-M Thumb instruction subset: typed representation with
//! bidirectional encode/decode.

/// A low or high core register (`r0`–`r15`). `r13` = SP, `r14` = LR,
/// `r15` = PC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// Stack pointer.
    pub const SP: Reg = Reg(13);
    /// Link register.
    pub const LR: Reg = Reg(14);
    /// Program counter.
    pub const PC: Reg = Reg(15);

    /// Register index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for `r0`–`r7`.
    #[inline]
    pub fn is_low(self) -> bool {
        self.0 < 8
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.0 {
            13 => f.write_str("sp"),
            14 => f.write_str("lr"),
            15 => f.write_str("pc"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Branch condition codes (APSR predicate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Condition {
    Eq,
    Ne,
    Cs,
    Cc,
    Mi,
    Pl,
    Vs,
    Vc,
    Hi,
    Ls,
    Ge,
    Lt,
    Gt,
    Le,
}

impl Condition {
    /// 4-bit encoding.
    pub fn bits(self) -> u16 {
        self as u16
    }

    /// Decodes a 4-bit condition field (`0..=13`).
    pub fn from_bits(bits: u16) -> Option<Condition> {
        use Condition::*;
        Some(match bits {
            0 => Eq,
            1 => Ne,
            2 => Cs,
            3 => Cc,
            4 => Mi,
            5 => Pl,
            6 => Vs,
            7 => Vc,
            8 => Hi,
            9 => Ls,
            10 => Ge,
            11 => Lt,
            12 => Gt,
            13 => Le,
            _ => return None,
        })
    }

    /// Mnemonic suffix (`"eq"`, `"ne"`, ...).
    pub fn mnemonic(self) -> &'static str {
        use Condition::*;
        match self {
            Eq => "eq",
            Ne => "ne",
            Cs => "cs",
            Cc => "cc",
            Mi => "mi",
            Pl => "pl",
            Vs => "vs",
            Vc => "vc",
            Hi => "hi",
            Ls => "ls",
            Ge => "ge",
            Lt => "lt",
            Gt => "gt",
            Le => "le",
        }
    }
}

/// The sixteen register–register data-processing opcodes (`0x4000` page).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DpOp {
    And,
    Eor,
    Lsl,
    Lsr,
    Asr,
    Adc,
    Sbc,
    Ror,
    Tst,
    Rsb,
    Cmp,
    Cmn,
    Orr,
    Mul,
    Bic,
    Mvn,
}

impl DpOp {
    /// 4-bit opcode field.
    pub fn bits(self) -> u16 {
        self as u16
    }

    /// Decodes the 4-bit opcode field.
    pub fn from_bits(bits: u16) -> DpOp {
        use DpOp::*;
        match bits & 0xF {
            0 => And,
            1 => Eor,
            2 => Lsl,
            3 => Lsr,
            4 => Asr,
            5 => Adc,
            6 => Sbc,
            7 => Ror,
            8 => Tst,
            9 => Rsb,
            10 => Cmp,
            11 => Cmn,
            12 => Orr,
            13 => Mul,
            14 => Bic,
            _ => Mvn,
        }
    }
}

/// One decoded ARMv6-M instruction.
///
/// Only the subset needed by the Embench-style kernels is implemented; the
/// decoder reports anything else as [`DecodeError::Unsupported`]. `Bl` is the
/// single 32-bit encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Instruction {
    // Shift (immediate), add, subtract, move, compare.
    LslImm {
        rd: Reg,
        rm: Reg,
        imm5: u8,
    },
    LsrImm {
        rd: Reg,
        rm: Reg,
        imm5: u8,
    },
    AsrImm {
        rd: Reg,
        rm: Reg,
        imm5: u8,
    },
    AddReg {
        rd: Reg,
        rn: Reg,
        rm: Reg,
    },
    SubReg {
        rd: Reg,
        rn: Reg,
        rm: Reg,
    },
    AddImm3 {
        rd: Reg,
        rn: Reg,
        imm3: u8,
    },
    SubImm3 {
        rd: Reg,
        rn: Reg,
        imm3: u8,
    },
    MovImm {
        rd: Reg,
        imm8: u8,
    },
    CmpImm {
        rn: Reg,
        imm8: u8,
    },
    AddImm8 {
        rdn: Reg,
        imm8: u8,
    },
    SubImm8 {
        rdn: Reg,
        imm8: u8,
    },
    // Register data processing.
    DataProc {
        op: DpOp,
        rdn: Reg,
        rm: Reg,
    },
    // High-register operations and BX/BLX.
    AddHi {
        rdn: Reg,
        rm: Reg,
    },
    CmpHi {
        rn: Reg,
        rm: Reg,
    },
    MovHi {
        rd: Reg,
        rm: Reg,
    },
    Bx {
        rm: Reg,
    },
    Blx {
        rm: Reg,
    },
    // Load/store.
    LdrLit {
        rt: Reg,
        imm8: u8,
    },
    LdrImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    StrImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    LdrbImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    StrbImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    LdrhImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    StrhImm {
        rt: Reg,
        rn: Reg,
        imm5: u8,
    },
    LdrReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    StrReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrbReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    StrbReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrhReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    StrhReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrsbReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrshReg {
        rt: Reg,
        rn: Reg,
        rm: Reg,
    },
    LdrSp {
        rt: Reg,
        imm8: u8,
    },
    StrSp {
        rt: Reg,
        imm8: u8,
    },
    // SP/address arithmetic.
    AddRdSp {
        rd: Reg,
        imm8: u8,
    },
    Adr {
        rd: Reg,
        imm8: u8,
    },
    AddSp {
        imm7: u8,
    },
    SubSp {
        imm7: u8,
    },
    // Extend/reverse.
    Uxtb {
        rd: Reg,
        rm: Reg,
    },
    Uxth {
        rd: Reg,
        rm: Reg,
    },
    Sxtb {
        rd: Reg,
        rm: Reg,
    },
    Sxth {
        rd: Reg,
        rm: Reg,
    },
    Rev {
        rd: Reg,
        rm: Reg,
    },
    Rev16 {
        rd: Reg,
        rm: Reg,
    },
    Revsh {
        rd: Reg,
        rm: Reg,
    },
    // Stack.
    Push {
        registers: u8,
        lr: bool,
    },
    Pop {
        registers: u8,
        pc: bool,
    },
    // Load/store multiple (increment-after with writeback).
    Ldmia {
        rn: Reg,
        registers: u8,
    },
    Stmia {
        rn: Reg,
        registers: u8,
    },
    // Control flow.
    BCond {
        cond: Condition,
        imm8: u8,
    },
    B {
        imm11: u16,
    },
    /// 32-bit BL with a signed byte offset from the aligned PC.
    Bl {
        offset: i32,
    },
    Bkpt {
        imm8: u8,
    },
    Nop,
}

/// Error produced when decoding an unknown or unsupported halfword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The halfword pattern is not in the implemented subset.
    Unsupported {
        /// The offending halfword.
        halfword: u16,
    },
    /// First halfword of a 32-bit encoding with a missing/invalid second
    /// halfword.
    TruncatedWide {
        /// The offending first halfword.
        halfword: u16,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::Unsupported { halfword } => {
                write!(f, "unsupported instruction encoding {halfword:#06x}")
            }
            DecodeError::TruncatedWide { halfword } => {
                write!(f, "truncated 32-bit instruction starting {halfword:#06x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

impl Instruction {
    /// Returns `true` if this instruction occupies two halfwords.
    pub fn is_wide(&self) -> bool {
        matches!(self, Instruction::Bl { .. })
    }

    /// Size in bytes (2 or 4).
    pub fn size(&self) -> u32 {
        if self.is_wide() {
            4
        } else {
            2
        }
    }

    /// Decodes the instruction starting at `half`, consuming `next` only for
    /// 32-bit encodings.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for halfwords outside the implemented subset.
    pub fn decode(half: u16, next: Option<u16>) -> Result<Instruction, DecodeError> {
        use Instruction::*;
        let r = |bits: u16| Reg((bits & 7) as u8);
        let unsupported = Err(DecodeError::Unsupported { halfword: half });

        match half >> 12 {
            0b0000 | 0b0001 => {
                // Shift immediate / add-sub register & 3-bit immediate.
                let op = (half >> 11) & 3;
                match op {
                    0b00 => {
                        let imm5 = ((half >> 6) & 0x1F) as u8;
                        if imm5 == 0 && (half >> 11) == 0 {
                            // LSL #0 is MOVS Rd, Rm.
                            Ok(LslImm {
                                rd: r(half),
                                rm: r(half >> 3),
                                imm5: 0,
                            })
                        } else {
                            Ok(LslImm {
                                rd: r(half),
                                rm: r(half >> 3),
                                imm5,
                            })
                        }
                    }
                    0b01 => Ok(LsrImm {
                        rd: r(half),
                        rm: r(half >> 3),
                        imm5: ((half >> 6) & 0x1F) as u8,
                    }),
                    0b10 => Ok(AsrImm {
                        rd: r(half),
                        rm: r(half >> 3),
                        imm5: ((half >> 6) & 0x1F) as u8,
                    }),
                    _ => {
                        let sub = (half >> 9) & 1 == 1;
                        let imm = (half >> 10) & 1 == 1;
                        let (rd, rn) = (r(half), r(half >> 3));
                        let third = ((half >> 6) & 7) as u8;
                        Ok(match (imm, sub) {
                            (false, false) => AddReg {
                                rd,
                                rn,
                                rm: Reg(third),
                            },
                            (false, true) => SubReg {
                                rd,
                                rn,
                                rm: Reg(third),
                            },
                            (true, false) => AddImm3 {
                                rd,
                                rn,
                                imm3: third,
                            },
                            (true, true) => SubImm3 {
                                rd,
                                rn,
                                imm3: third,
                            },
                        })
                    }
                }
            }
            0b0010 | 0b0011 => {
                let rdn = Reg(((half >> 8) & 7) as u8);
                let imm8 = (half & 0xFF) as u8;
                Ok(match (half >> 11) & 3 {
                    0b00 => MovImm { rd: rdn, imm8 },
                    0b01 => CmpImm { rn: rdn, imm8 },
                    0b10 => AddImm8 { rdn, imm8 },
                    _ => SubImm8 { rdn, imm8 },
                })
            }
            0b0100 => {
                match (half >> 10) & 3 {
                    0b00 => Ok(DataProc {
                        op: DpOp::from_bits((half >> 6) & 0xF),
                        rdn: r(half),
                        rm: r(half >> 3),
                    }),
                    0b01 => {
                        // Special data / BX.
                        let rm = Reg(((half >> 3) & 0xF) as u8);
                        let rdn = Reg(((half & 7) | ((half >> 4) & 8)) as u8);
                        match (half >> 8) & 3 {
                            0b00 => Ok(AddHi { rdn, rm }),
                            0b01 => Ok(CmpHi { rn: rdn, rm }),
                            0b10 => Ok(MovHi { rd: rdn, rm }),
                            _ => {
                                if (half >> 7) & 1 == 0 {
                                    Ok(Bx { rm })
                                } else {
                                    Ok(Blx { rm })
                                }
                            }
                        }
                    }
                    _ => Ok(LdrLit {
                        rt: Reg(((half >> 8) & 7) as u8),
                        imm8: (half & 0xFF) as u8,
                    }),
                }
            }
            0b0101 => {
                // Load/store register offset.
                let (rt, rn, rm) = (r(half), r(half >> 3), r(half >> 6));
                Ok(match (half >> 9) & 7 {
                    0b000 => StrReg { rt, rn, rm },
                    0b001 => StrhReg { rt, rn, rm },
                    0b010 => StrbReg { rt, rn, rm },
                    0b011 => LdrsbReg { rt, rn, rm },
                    0b100 => LdrReg { rt, rn, rm },
                    0b101 => LdrhReg { rt, rn, rm },
                    0b110 => LdrbReg { rt, rn, rm },
                    _ => LdrshReg { rt, rn, rm },
                })
            }
            0b0110 | 0b0111 => {
                let (rt, rn) = (r(half), r(half >> 3));
                let imm5 = ((half >> 6) & 0x1F) as u8;
                let byte = (half >> 12) & 1 == 1;
                let load = (half >> 11) & 1 == 1;
                Ok(match (byte, load) {
                    (false, false) => StrImm { rt, rn, imm5 },
                    (false, true) => LdrImm { rt, rn, imm5 },
                    (true, false) => StrbImm { rt, rn, imm5 },
                    (true, true) => LdrbImm { rt, rn, imm5 },
                })
            }
            0b1000 => {
                let (rt, rn) = (r(half), r(half >> 3));
                let imm5 = ((half >> 6) & 0x1F) as u8;
                if (half >> 11) & 1 == 1 {
                    Ok(LdrhImm { rt, rn, imm5 })
                } else {
                    Ok(StrhImm { rt, rn, imm5 })
                }
            }
            0b1001 => {
                let rt = Reg(((half >> 8) & 7) as u8);
                let imm8 = (half & 0xFF) as u8;
                if (half >> 11) & 1 == 1 {
                    Ok(LdrSp { rt, imm8 })
                } else {
                    Ok(StrSp { rt, imm8 })
                }
            }
            0b1010 => {
                let rd = Reg(((half >> 8) & 7) as u8);
                let imm8 = (half & 0xFF) as u8;
                if (half >> 11) & 1 == 1 {
                    Ok(AddRdSp { rd, imm8 })
                } else {
                    Ok(Adr { rd, imm8 })
                }
            }
            0b1011 => {
                if half == 0b1011_1111_0000_0000 {
                    return Ok(Nop);
                }
                match (half >> 8) & 0xF {
                    0b0000 => {
                        let imm7 = (half & 0x7F) as u8;
                        if (half >> 7) & 1 == 0 {
                            Ok(AddSp { imm7 })
                        } else {
                            Ok(SubSp { imm7 })
                        }
                    }
                    0b0010 => {
                        let (rd, rm) = (r(half), r(half >> 3));
                        Ok(match (half >> 6) & 3 {
                            0b00 => Sxth { rd, rm },
                            0b01 => Sxtb { rd, rm },
                            0b10 => Uxth { rd, rm },
                            _ => Uxtb { rd, rm },
                        })
                    }
                    0b1010 => {
                        let (rd, rm) = (r(half), r(half >> 3));
                        match (half >> 6) & 3 {
                            0b00 => Ok(Rev { rd, rm }),
                            0b01 => Ok(Rev16 { rd, rm }),
                            0b11 => Ok(Revsh { rd, rm }),
                            _ => unsupported,
                        }
                    }
                    0b0100 | 0b0101 => Ok(Push {
                        registers: (half & 0xFF) as u8,
                        lr: (half >> 8) & 1 == 1,
                    }),
                    0b1100 | 0b1101 => Ok(Pop {
                        registers: (half & 0xFF) as u8,
                        pc: (half >> 8) & 1 == 1,
                    }),
                    0b1110 => Ok(Bkpt {
                        imm8: (half & 0xFF) as u8,
                    }),
                    _ => unsupported,
                }
            }
            0b1100 => {
                let rn = Reg(((half >> 8) & 7) as u8);
                let registers = (half & 0xFF) as u8;
                if (half >> 11) & 1 == 1 {
                    Ok(Ldmia { rn, registers })
                } else {
                    Ok(Stmia { rn, registers })
                }
            }
            0b1101 => {
                let cond_bits = (half >> 8) & 0xF;
                match Condition::from_bits(cond_bits) {
                    Some(cond) => Ok(BCond {
                        cond,
                        imm8: (half & 0xFF) as u8,
                    }),
                    None => unsupported,
                }
            }
            0b1110 => {
                if (half >> 11) == 0b11100 {
                    Ok(B {
                        imm11: half & 0x7FF,
                    })
                } else {
                    unsupported
                }
            }
            0b1111 => {
                // BL: 32-bit encoding T1.
                let second = next.ok_or(DecodeError::TruncatedWide { halfword: half })?;
                if (half >> 11) != 0b11110 || (second >> 14) != 0b11 || (second >> 12) & 1 != 1 {
                    return Err(DecodeError::Unsupported { halfword: half });
                }
                let s = ((half >> 10) & 1) as u32;
                let imm10 = (half & 0x3FF) as u32;
                let j1 = ((second >> 13) & 1) as u32;
                let j2 = ((second >> 11) & 1) as u32;
                let imm11 = (second & 0x7FF) as u32;
                let i1 = !(j1 ^ s) & 1;
                let i2 = !(j2 ^ s) & 1;
                let raw = (s << 24) | (i1 << 23) | (i2 << 22) | (imm10 << 12) | (imm11 << 1);
                // Sign-extend from bit 24.
                let offset = ((raw << 7) as i32) >> 7;
                Ok(Bl { offset })
            }
            _ => unsupported,
        }
    }

    /// Encodes the instruction into one or two halfwords.
    pub fn encode(&self) -> EncodedInstruction {
        use Instruction::*;
        let one = EncodedInstruction::narrow;
        let lo = |r: Reg| -> u16 {
            debug_assert!(r.is_low());
            r.0 as u16
        };
        match *self {
            LslImm { rd, rm, imm5 } => one(((imm5 as u16) << 6) | (lo(rm) << 3) | lo(rd)),
            LsrImm { rd, rm, imm5 } => one(0x0800 | ((imm5 as u16) << 6) | (lo(rm) << 3) | lo(rd)),
            AsrImm { rd, rm, imm5 } => one(0x1000 | ((imm5 as u16) << 6) | (lo(rm) << 3) | lo(rd)),
            AddReg { rd, rn, rm } => one(0x1800 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)),
            SubReg { rd, rn, rm } => one(0x1A00 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rd)),
            AddImm3 { rd, rn, imm3 } => one(0x1C00 | ((imm3 as u16) << 6) | (lo(rn) << 3) | lo(rd)),
            SubImm3 { rd, rn, imm3 } => one(0x1E00 | ((imm3 as u16) << 6) | (lo(rn) << 3) | lo(rd)),
            MovImm { rd, imm8 } => one(0x2000 | (lo(rd) << 8) | imm8 as u16),
            CmpImm { rn, imm8 } => one(0x2800 | (lo(rn) << 8) | imm8 as u16),
            AddImm8 { rdn, imm8 } => one(0x3000 | (lo(rdn) << 8) | imm8 as u16),
            SubImm8 { rdn, imm8 } => one(0x3800 | (lo(rdn) << 8) | imm8 as u16),
            DataProc { op, rdn, rm } => one(0x4000 | (op.bits() << 6) | (lo(rm) << 3) | lo(rdn)),
            AddHi { rdn, rm } => {
                let dn = rdn.0 as u16;
                one(0x4400 | ((dn >> 3) << 7) | ((rm.0 as u16) << 3) | (dn & 7))
            }
            CmpHi { rn, rm } => {
                let dn = rn.0 as u16;
                one(0x4500 | ((dn >> 3) << 7) | ((rm.0 as u16) << 3) | (dn & 7))
            }
            MovHi { rd, rm } => {
                let dn = rd.0 as u16;
                one(0x4600 | ((dn >> 3) << 7) | ((rm.0 as u16) << 3) | (dn & 7))
            }
            Bx { rm } => one(0x4700 | ((rm.0 as u16) << 3)),
            Blx { rm } => one(0x4780 | ((rm.0 as u16) << 3)),
            LdrLit { rt, imm8 } => one(0x4800 | (lo(rt) << 8) | imm8 as u16),
            StrReg { rt, rn, rm } => one(0x5000 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            StrhReg { rt, rn, rm } => one(0x5200 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            StrbReg { rt, rn, rm } => one(0x5400 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrsbReg { rt, rn, rm } => one(0x5600 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrReg { rt, rn, rm } => one(0x5800 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrhReg { rt, rn, rm } => one(0x5A00 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrbReg { rt, rn, rm } => one(0x5C00 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrshReg { rt, rn, rm } => one(0x5E00 | (lo(rm) << 6) | (lo(rn) << 3) | lo(rt)),
            StrImm { rt, rn, imm5 } => one(0x6000 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrImm { rt, rn, imm5 } => one(0x6800 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            StrbImm { rt, rn, imm5 } => one(0x7000 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrbImm { rt, rn, imm5 } => one(0x7800 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            StrhImm { rt, rn, imm5 } => one(0x8000 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            LdrhImm { rt, rn, imm5 } => one(0x8800 | ((imm5 as u16) << 6) | (lo(rn) << 3) | lo(rt)),
            StrSp { rt, imm8 } => one(0x9000 | (lo(rt) << 8) | imm8 as u16),
            LdrSp { rt, imm8 } => one(0x9800 | (lo(rt) << 8) | imm8 as u16),
            Adr { rd, imm8 } => one(0xA000 | (lo(rd) << 8) | imm8 as u16),
            AddRdSp { rd, imm8 } => one(0xA800 | (lo(rd) << 8) | imm8 as u16),
            AddSp { imm7 } => one(0xB000 | imm7 as u16),
            SubSp { imm7 } => one(0xB080 | imm7 as u16),
            Sxth { rd, rm } => one(0xB200 | (lo(rm) << 3) | lo(rd)),
            Sxtb { rd, rm } => one(0xB240 | (lo(rm) << 3) | lo(rd)),
            Uxth { rd, rm } => one(0xB280 | (lo(rm) << 3) | lo(rd)),
            Uxtb { rd, rm } => one(0xB2C0 | (lo(rm) << 3) | lo(rd)),
            Rev { rd, rm } => one(0xBA00 | (lo(rm) << 3) | lo(rd)),
            Rev16 { rd, rm } => one(0xBA40 | (lo(rm) << 3) | lo(rd)),
            Revsh { rd, rm } => one(0xBAC0 | (lo(rm) << 3) | lo(rd)),
            Push { registers, lr } => one(0xB400 | ((lr as u16) << 8) | registers as u16),
            Pop { registers, pc } => one(0xBC00 | ((pc as u16) << 8) | registers as u16),
            Stmia { rn, registers } => one(0xC000 | (lo(rn) << 8) | registers as u16),
            Ldmia { rn, registers } => one(0xC800 | (lo(rn) << 8) | registers as u16),
            Bkpt { imm8 } => one(0xBE00 | imm8 as u16),
            Nop => one(0xBF00),
            BCond { cond, imm8 } => one(0xD000 | (cond.bits() << 8) | imm8 as u16),
            B { imm11 } => one(0xE000 | (imm11 & 0x7FF)),
            Bl { offset } => {
                let raw = (offset as u32) & 0x01FF_FFFF;
                let s = (raw >> 24) & 1;
                let i1 = (raw >> 23) & 1;
                let i2 = (raw >> 22) & 1;
                let imm10 = (raw >> 12) & 0x3FF;
                let imm11 = (raw >> 1) & 0x7FF;
                let j1 = (!(i1 ^ s)) & 1;
                let j2 = (!(i2 ^ s)) & 1;
                let first = 0xF000 | ((s as u16) << 10) | imm10 as u16;
                let second = 0xD000 | ((j1 as u16) << 13) | ((j2 as u16) << 11) | imm11 as u16;
                EncodedInstruction::wide(first, second)
            }
        }
    }
}

/// One or two encoded halfwords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EncodedInstruction {
    halves: [u16; 2],
    len: u8,
}

impl EncodedInstruction {
    fn narrow(half: u16) -> Self {
        Self {
            halves: [half, 0],
            len: 1,
        }
    }

    fn wide(first: u16, second: u16) -> Self {
        Self {
            halves: [first, second],
            len: 2,
        }
    }

    /// The encoded halfwords.
    pub fn halfwords(&self) -> &[u16] {
        &self.halves[..self.len as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Instruction) {
        let enc = inst.encode();
        let halves = enc.halfwords();
        let decoded = Instruction::decode(halves[0], halves.get(1).copied())
            .unwrap_or_else(|e| panic!("{inst:?} failed to decode: {e}"));
        assert_eq!(decoded, inst, "round-trip mismatch for {inst:?}");
    }

    #[test]
    fn roundtrip_alu_immediates() {
        for rd in 0..8u8 {
            roundtrip(Instruction::MovImm {
                rd: Reg(rd),
                imm8: 0xAB,
            });
            roundtrip(Instruction::CmpImm {
                rn: Reg(rd),
                imm8: 1,
            });
            roundtrip(Instruction::AddImm8 {
                rdn: Reg(rd),
                imm8: 255,
            });
            roundtrip(Instruction::SubImm8 {
                rdn: Reg(rd),
                imm8: 7,
            });
        }
        roundtrip(Instruction::AddImm3 {
            rd: Reg(1),
            rn: Reg(2),
            imm3: 7,
        });
        roundtrip(Instruction::SubImm3 {
            rd: Reg(7),
            rn: Reg(0),
            imm3: 1,
        });
    }

    #[test]
    fn roundtrip_shifts_and_dp() {
        roundtrip(Instruction::LslImm {
            rd: Reg(0),
            rm: Reg(1),
            imm5: 31,
        });
        roundtrip(Instruction::LsrImm {
            rd: Reg(2),
            rm: Reg(3),
            imm5: 1,
        });
        roundtrip(Instruction::AsrImm {
            rd: Reg(4),
            rm: Reg(5),
            imm5: 16,
        });
        for op_bits in 0..16 {
            roundtrip(Instruction::DataProc {
                op: DpOp::from_bits(op_bits),
                rdn: Reg(3),
                rm: Reg(6),
            });
        }
    }

    #[test]
    fn roundtrip_loads_stores() {
        roundtrip(Instruction::LdrImm {
            rt: Reg(0),
            rn: Reg(1),
            imm5: 31,
        });
        roundtrip(Instruction::StrImm {
            rt: Reg(2),
            rn: Reg(3),
            imm5: 0,
        });
        roundtrip(Instruction::LdrbImm {
            rt: Reg(4),
            rn: Reg(5),
            imm5: 9,
        });
        roundtrip(Instruction::StrbImm {
            rt: Reg(6),
            rn: Reg(7),
            imm5: 3,
        });
        roundtrip(Instruction::LdrhImm {
            rt: Reg(1),
            rn: Reg(2),
            imm5: 12,
        });
        roundtrip(Instruction::StrhImm {
            rt: Reg(3),
            rn: Reg(4),
            imm5: 30,
        });
        roundtrip(Instruction::LdrReg {
            rt: Reg(0),
            rn: Reg(1),
            rm: Reg(2),
        });
        roundtrip(Instruction::StrReg {
            rt: Reg(3),
            rn: Reg(4),
            rm: Reg(5),
        });
        roundtrip(Instruction::LdrshReg {
            rt: Reg(6),
            rn: Reg(7),
            rm: Reg(0),
        });
        roundtrip(Instruction::LdrsbReg {
            rt: Reg(1),
            rn: Reg(2),
            rm: Reg(3),
        });
        roundtrip(Instruction::LdrLit {
            rt: Reg(5),
            imm8: 200,
        });
        roundtrip(Instruction::LdrSp {
            rt: Reg(2),
            imm8: 9,
        });
        roundtrip(Instruction::StrSp {
            rt: Reg(1),
            imm8: 255,
        });
    }

    #[test]
    fn roundtrip_hi_and_misc() {
        roundtrip(Instruction::AddHi {
            rdn: Reg(10),
            rm: Reg(3),
        });
        roundtrip(Instruction::CmpHi {
            rn: Reg(8),
            rm: Reg(9),
        });
        roundtrip(Instruction::MovHi {
            rd: Reg(14),
            rm: Reg(2),
        });
        roundtrip(Instruction::Bx { rm: Reg::LR });
        roundtrip(Instruction::Blx { rm: Reg(4) });
        roundtrip(Instruction::AddSp { imm7: 127 });
        roundtrip(Instruction::SubSp { imm7: 1 });
        roundtrip(Instruction::AddRdSp {
            rd: Reg(3),
            imm8: 10,
        });
        roundtrip(Instruction::Adr {
            rd: Reg(1),
            imm8: 4,
        });
        roundtrip(Instruction::Uxtb {
            rd: Reg(0),
            rm: Reg(1),
        });
        roundtrip(Instruction::Sxth {
            rd: Reg(2),
            rm: Reg(3),
        });
        roundtrip(Instruction::Rev {
            rd: Reg(4),
            rm: Reg(5),
        });
        roundtrip(Instruction::Revsh {
            rd: Reg(6),
            rm: Reg(7),
        });
        roundtrip(Instruction::Push {
            registers: 0b1011,
            lr: true,
        });
        roundtrip(Instruction::Pop {
            registers: 0b0100,
            pc: true,
        });
        roundtrip(Instruction::Ldmia {
            rn: Reg(2),
            registers: 0b1110,
        });
        roundtrip(Instruction::Stmia {
            rn: Reg(5),
            registers: 0b0011,
        });
        roundtrip(Instruction::Bkpt { imm8: 0xAB });
        roundtrip(Instruction::Nop);
    }

    #[test]
    fn roundtrip_branches() {
        for cond in [Condition::Eq, Condition::Ne, Condition::Lt, Condition::Hi] {
            roundtrip(Instruction::BCond { cond, imm8: 0x80 });
        }
        roundtrip(Instruction::B { imm11: 0x7FF });
        roundtrip(Instruction::B { imm11: 0 });
        for offset in [-4, 4, 1000, -1000, 100_000, -100_000, 0x3F_FFFE, -0x40_0000] {
            roundtrip(Instruction::Bl { offset });
        }
    }

    #[test]
    fn bl_is_wide() {
        assert!(Instruction::Bl { offset: 0 }.is_wide());
        assert_eq!(Instruction::Bl { offset: 0 }.size(), 4);
        assert_eq!(Instruction::Nop.size(), 2);
    }

    #[test]
    fn decode_rejects_garbage() {
        // An ARMv7-M CBZ encoding (0xB1xx) is not in the v6-M subset.
        assert!(Instruction::decode(0xB100, None).is_err());
        // BL without a second halfword.
        assert_eq!(
            Instruction::decode(0xF000, None),
            Err(DecodeError::TruncatedWide { halfword: 0xF000 })
        );
    }

    #[test]
    fn condition_round_trip() {
        for bits in 0..14 {
            let c = Condition::from_bits(bits).expect("valid condition");
            assert_eq!(c.bits(), bits);
        }
        assert!(Condition::from_bits(14).is_none());
        assert_eq!(Condition::Lt.mnemonic(), "lt");
    }

    #[test]
    fn reg_display() {
        assert_eq!(Reg(3).to_string(), "r3");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::PC.to_string(), "pc");
    }
}
