//! A two-pass ARMv6-M Thumb assembler.
//!
//! Supports the instruction subset of [`crate::Instruction`] plus the
//! conveniences needed to write benchmark kernels without a toolchain:
//!
//! - labels (`loop:`) and label operands for branches and `adr`
//! - `ldr rX, =imm32` / `ldr rX, =label` pseudo-instructions backed by an
//!   automatically emitted literal pool
//! - `.word <value|label>`, `.align`, and `.space <n>` data directives
//! - comments with `;`, `@`, or `//`
//! - register lists with ranges: `push {r0-r3, lr}`
//!
//! # Example
//!
//! ```
//! let image = ppatc_m0::asm::assemble(r#"
//!     ldr   r0, =0x20000000
//!     movs  r1, #7
//!     str   r1, [r0, #0]
//!     bkpt  #0
//! "#)?;
//! assert!(!image.is_empty());
//! # Ok::<(), ppatc_m0::asm::AsmError>(())
//! ```

use crate::inst::{Condition, DpOp, Instruction, Reg};
use std::collections::HashMap;

/// Reach of the unconditional `b` T2 encoding: a signed imm11, counted in
/// halfwords.
const B_IMM11_MAX_HALFWORDS: i64 = 1023;
/// Largest `add rd, sp, #imm` offset: an imm8 scaled by 4, in bytes.
const ADD_RD_SP_MAX_BYTES: i64 = 1020;

/// Assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    line: usize,
    message: String,
}

impl AsmError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Assembles a source listing into a little-endian program image based at
/// address 0.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, undefined labels, and out-of-range operands.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    Assembler::new().assemble(source)
}

#[derive(Clone, Debug)]
enum Item {
    Inst { line: usize, parsed: ParsedInst },
    Word { line: usize, value: ValueRef },
    Space { bytes: u32 },
    Align,
}

/// An operand that may reference a label.
#[derive(Clone, Debug)]
enum ValueRef {
    Literal(i64),
    Symbol(String),
}

/// A parsed instruction before symbol/pool resolution.
#[derive(Clone, Debug)]
enum ParsedInst {
    /// Fully resolved at parse time.
    Ready(Instruction),
    /// Conditional or unconditional branch to a label.
    Branch {
        cond: Option<Condition>,
        target: String,
    },
    /// `bl label`.
    BranchLink { target: String },
    /// `ldr rX, =value` — literal-pool load.
    LdrPool { rt: Reg, value: ValueRef },
    /// `adr rd, label`.
    Adr { rd: Reg, target: String },
}

struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, u32>,
}

impl Assembler {
    fn new() -> Self {
        Self {
            items: Vec::new(),
            labels: HashMap::new(),
        }
    }

    fn assemble(mut self, source: &str) -> Result<Vec<u8>, AsmError> {
        // Pass 1: parse lines into items; item sizes are static, so label
        // addresses are assigned in the same pass.
        let mut addr: u32 = 0;
        for (idx, raw) in source.lines().enumerate() {
            let line_no = idx + 1;
            let mut line = strip_comment(raw).trim();
            // Leading labels (possibly several).
            while let Some(colon) = find_label_colon(line) {
                let name = line[..colon].trim();
                if !is_ident(name) {
                    return Err(AsmError::new(line_no, format!("invalid label `{name}`")));
                }
                if self.labels.insert(name.to_string(), addr).is_some() {
                    return Err(AsmError::new(line_no, format!("duplicate label `{name}`")));
                }
                line = line[colon + 1..].trim();
            }
            if line.is_empty() {
                continue;
            }
            let item = parse_statement(line_no, line)?;
            addr += item_size(&item, addr);
            self.items.push(item);
        }

        // Collect literal-pool values (deduplicated, in first-use order).
        let mut pool: Vec<ValueRef> = Vec::new();
        for item in &self.items {
            if let Item::Inst {
                parsed: ParsedInst::LdrPool { value, .. },
                ..
            } = item
            {
                if !pool.iter().any(|v| value_key(v) == value_key(value)) {
                    pool.push(value.clone());
                }
            }
        }
        let pool_base = (addr + 3) & !3;

        // Pass 2: encode.
        let mut out: Vec<u8> = Vec::with_capacity((pool_base + 4 * pool.len() as u32) as usize);
        let mut addr: u32 = 0;
        for item in &self.items {
            match item {
                Item::Align => {
                    while !addr.is_multiple_of(4) {
                        out.extend_from_slice(
                            &Instruction::Nop.encode().halfwords()[0].to_le_bytes(),
                        );
                        addr += 2;
                    }
                }
                Item::Space { bytes } => {
                    out.extend(std::iter::repeat_n(0u8, *bytes as usize));
                    addr += bytes;
                }
                Item::Word { line, value } => {
                    let v = self.resolve(*line, value)?;
                    out.extend_from_slice(&(v as u32).to_le_bytes());
                    addr += 4;
                }
                Item::Inst { line, parsed } => {
                    let inst = self.finalize(*line, parsed, addr, pool_base, &pool)?;
                    for half in inst.encode().halfwords() {
                        out.extend_from_slice(&half.to_le_bytes());
                    }
                    addr += inst.size();
                }
            }
        }
        // Emit the literal pool (word-aligned; no padding when empty).
        while !pool.is_empty() && !out.len().is_multiple_of(4) {
            out.push(0);
        }
        for value in &pool {
            let v = self.resolve(0, value)?;
            out.extend_from_slice(&(v as u32).to_le_bytes());
        }
        Ok(out)
    }

    fn resolve(&self, line: usize, value: &ValueRef) -> Result<i64, AsmError> {
        match value {
            ValueRef::Literal(v) => Ok(*v),
            ValueRef::Symbol(name) => self
                .labels
                .get(name)
                .map(|&a| a as i64)
                .ok_or_else(|| AsmError::new(line, format!("undefined label `{name}`"))),
        }
    }

    fn finalize(
        &self,
        line: usize,
        parsed: &ParsedInst,
        addr: u32,
        pool_base: u32,
        pool: &[ValueRef],
    ) -> Result<Instruction, AsmError> {
        match parsed {
            ParsedInst::Ready(inst) => Ok(*inst),
            ParsedInst::Branch { cond, target } => {
                let dest = self.resolve(line, &ValueRef::Symbol(target.clone()))?;
                let offset = dest - (addr as i64 + 4);
                if offset % 2 != 0 {
                    return Err(AsmError::new(line, "branch target is not halfword aligned"));
                }
                match cond {
                    Some(c) => {
                        let units = offset / 2;
                        if !(-128..=127).contains(&units) {
                            return Err(AsmError::new(
                                line,
                                format!("conditional branch to `{target}` out of range ({offset} bytes)"),
                            ));
                        }
                        Ok(Instruction::BCond {
                            cond: *c,
                            imm8: (units as i8) as u8,
                        })
                    }
                    None => {
                        let units = offset / 2;
                        if !(-1024..=B_IMM11_MAX_HALFWORDS).contains(&units) {
                            return Err(AsmError::new(
                                line,
                                format!("branch to `{target}` out of range ({offset} bytes)"),
                            ));
                        }
                        Ok(Instruction::B {
                            imm11: (units as i16 as u16) & 0x7FF,
                        })
                    }
                }
            }
            ParsedInst::BranchLink { target } => {
                let dest = self.resolve(line, &ValueRef::Symbol(target.clone()))?;
                let offset = dest - (addr as i64 + 4);
                if !(-(1 << 24)..(1 << 24)).contains(&offset) {
                    return Err(AsmError::new(
                        line,
                        format!("bl to `{target}` out of range"),
                    ));
                }
                Ok(Instruction::Bl {
                    offset: offset as i32,
                })
            }
            ParsedInst::LdrPool { rt, value } => {
                let slot = pool
                    .iter()
                    .position(|v| value_key(v) == value_key(value))
                    .ok_or_else(|| AsmError::new(line, "literal value missing from pool"))?;
                let target = pool_base + 4 * slot as u32;
                let base = (addr + 4) & !3;
                if target < base || !(target - base).is_multiple_of(4) {
                    return Err(AsmError::new(line, "literal pool behind the load"));
                }
                let imm = (target - base) / 4;
                if imm > 255 {
                    return Err(AsmError::new(line, "literal pool out of ldr range"));
                }
                Ok(Instruction::LdrLit {
                    rt: *rt,
                    imm8: imm as u8,
                })
            }
            ParsedInst::Adr { rd, target } => {
                let dest = self.resolve(line, &ValueRef::Symbol(target.clone()))?;
                let base = ((addr + 4) & !3) as i64;
                let offset = dest - base;
                if offset < 0 || offset % 4 != 0 || offset / 4 > 255 {
                    return Err(AsmError::new(
                        line,
                        format!("adr to `{target}` out of range"),
                    ));
                }
                Ok(Instruction::Adr {
                    rd: *rd,
                    imm8: (offset / 4) as u8,
                })
            }
        }
    }
}

fn item_size(item: &Item, addr: u32) -> u32 {
    match item {
        Item::Align => (4 - addr % 4) % 4,
        Item::Space { bytes } => *bytes,
        Item::Word { .. } => 4,
        Item::Inst { parsed, .. } => match parsed {
            ParsedInst::Ready(i) => i.size(),
            ParsedInst::BranchLink { .. } => 4,
            _ => 2,
        },
    }
}

fn value_key(v: &ValueRef) -> String {
    match v {
        ValueRef::Literal(n) => format!("#{n}"),
        ValueRef::Symbol(s) => format!("@{s}"),
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    for (i, ch) in line.char_indices() {
        if ch == ';' || ch == '@' {
            end = i;
            break;
        }
        if ch == '/' && line[i..].starts_with("//") {
            end = i;
            break;
        }
    }
    &line[..end]
}

/// Finds the colon terminating a leading label, if the line starts with one.
fn find_label_colon(line: &str) -> Option<usize> {
    let mut chars = line.char_indices();
    match chars.next() {
        Some((_, c)) if c.is_ascii_alphabetic() || c == '_' || c == '.' => {}
        _ => return None,
    }
    for (i, c) in chars {
        if c == ':' {
            return Some(i);
        }
        if !(c.is_ascii_alphanumeric() || c == '_' || c == '.') {
            return None;
        }
    }
    None
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

/// Splits operands on top-level commas (not inside `[...]` or `{...}`).
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '[' | '{' => {
                depth += 1;
                cur.push(c);
            }
            ']' | '}' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

fn parse_reg(s: &str) -> Option<Reg> {
    let t = s.trim().to_ascii_lowercase();
    match t.as_str() {
        "sp" => Some(Reg::SP),
        "lr" => Some(Reg::LR),
        "pc" => Some(Reg::PC),
        _ => {
            let num = t.strip_prefix('r')?;
            let n: u8 = num.parse().ok()?;
            (n < 16).then_some(Reg(n))
        }
    }
}

fn parse_int(s: &str) -> Option<i64> {
    let t = s.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        t.replace('_', "").parse().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_imm(s: &str) -> Option<i64> {
    parse_int(s.trim().strip_prefix('#')?)
}

fn parse_value_ref(s: &str) -> ValueRef {
    let t = s.trim();
    match parse_int(t.strip_prefix('#').unwrap_or(t)) {
        Some(v) => ValueRef::Literal(v),
        None => ValueRef::Symbol(t.to_string()),
    }
}

/// Parses a register list like `{r0, r2-r4, lr}` → (low-reg bitmask, lr/pc
/// flag) where the flag register allowed is named by `extra`.
fn parse_reglist(s: &str, extra: Reg) -> Option<(u8, bool)> {
    let inner = s.trim().strip_prefix('{')?.strip_suffix('}')?;
    let mut mask = 0u8;
    let mut flag = false;
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((a, b)) = part.split_once('-') {
            let ra = parse_reg(a)?;
            let rb = parse_reg(b)?;
            if !ra.is_low() || !rb.is_low() || ra.0 > rb.0 {
                return None;
            }
            for r in ra.0..=rb.0 {
                mask |= 1 << r;
            }
        } else {
            let r = parse_reg(part)?;
            if r == extra {
                flag = true;
            } else if r.is_low() {
                mask |= 1 << r.0;
            } else {
                return None;
            }
        }
    }
    Some((mask, flag))
}

/// Parsed memory operand: `[rn]`, `[rn, #imm]`, `[rn, rm]`.
enum MemOperand {
    Imm(Reg, i64),
    Reg(Reg, Reg),
}

fn parse_mem(s: &str) -> Option<MemOperand> {
    let inner = s.trim().strip_prefix('[')?.strip_suffix(']')?;
    let parts: Vec<&str> = inner.split(',').map(str::trim).collect();
    match parts.as_slice() {
        [rn] => Some(MemOperand::Imm(parse_reg(rn)?, 0)),
        [rn, off] => {
            let rn = parse_reg(rn)?;
            if let Some(imm) = parse_imm(off) {
                Some(MemOperand::Imm(rn, imm))
            } else {
                Some(MemOperand::Reg(rn, parse_reg(off)?))
            }
        }
        _ => None,
    }
}

fn parse_statement(line: usize, text: &str) -> Result<Item, AsmError> {
    let err = |msg: String| AsmError::new(line, msg);
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m.to_ascii_lowercase(), r.trim()),
        None => (text.to_ascii_lowercase(), ""),
    };

    // Directives.
    match mnemonic.as_str() {
        ".word" => {
            return Ok(Item::Word {
                line,
                value: parse_value_ref(rest),
            });
        }
        ".align" => return Ok(Item::Align),
        ".space" => {
            let n = parse_int(rest)
                .filter(|&n| n >= 0)
                .ok_or_else(|| err(format!("invalid .space size `{rest}`")))?;
            return Ok(Item::Space { bytes: n as u32 });
        }
        _ => {}
    }

    let ops = split_operands(rest);
    let inst = parse_instruction(line, &mnemonic, &ops)?;
    Ok(Item::Inst { line, parsed: inst })
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(line: usize, mnemonic: &str, ops: &[String]) -> Result<ParsedInst, AsmError> {
    use Instruction as I;
    let err = |msg: String| AsmError::new(line, msg);
    let bad_operands = || {
        err(format!(
            "invalid operands for `{mnemonic}`: {}",
            ops.join(", ")
        ))
    };
    let reg = |i: usize| -> Result<Reg, AsmError> {
        ops.get(i).and_then(|s| parse_reg(s)).ok_or_else(|| {
            err(format!(
                "operand {} of `{mnemonic}` must be a register",
                i + 1
            ))
        })
    };
    let low = |i: usize| -> Result<Reg, AsmError> {
        let r = reg(i)?;
        if r.is_low() {
            Ok(r)
        } else {
            Err(err(format!(
                "operand {} of `{mnemonic}` must be r0-r7",
                i + 1
            )))
        }
    };
    let imm = |i: usize| -> Result<i64, AsmError> {
        ops.get(i)
            .and_then(|s| parse_imm(s))
            .ok_or_else(|| err(format!("operand {} of `{mnemonic}` must be #imm", i + 1)))
    };
    let ready = |i: Instruction| Ok(ParsedInst::Ready(i));

    // Condition-suffixed branches: beq, bne, ...
    if let Some(cond_str) = mnemonic.strip_prefix('b') {
        let cond = match cond_str {
            "eq" => Some(Condition::Eq),
            "ne" => Some(Condition::Ne),
            "cs" | "hs" => Some(Condition::Cs),
            "cc" | "lo" => Some(Condition::Cc),
            "mi" => Some(Condition::Mi),
            "pl" => Some(Condition::Pl),
            "vs" => Some(Condition::Vs),
            "vc" => Some(Condition::Vc),
            "hi" => Some(Condition::Hi),
            "ls" => Some(Condition::Ls),
            "ge" => Some(Condition::Ge),
            "lt" => Some(Condition::Lt),
            "gt" => Some(Condition::Gt),
            "le" => Some(Condition::Le),
            _ => None,
        };
        if let Some(cond) = cond {
            let target = ops
                .first()
                .ok_or_else(|| err("missing branch target".into()))?;
            return Ok(ParsedInst::Branch {
                cond: Some(cond),
                target: target.clone(),
            });
        }
    }

    match mnemonic {
        "nop" => ready(I::Nop),
        "bkpt" => {
            let v = if ops.is_empty() { 0 } else { imm(0)? };
            ready(I::Bkpt { imm8: v as u8 })
        }
        "b" => {
            let target = ops
                .first()
                .ok_or_else(|| err("missing branch target".into()))?;
            Ok(ParsedInst::Branch {
                cond: None,
                target: target.clone(),
            })
        }
        "bl" => {
            let target = ops
                .first()
                .ok_or_else(|| err("missing call target".into()))?;
            Ok(ParsedInst::BranchLink {
                target: target.clone(),
            })
        }
        "bx" => ready(I::Bx { rm: reg(0)? }),
        "blx" => ready(I::Blx { rm: reg(0)? }),
        "movs" => {
            let rd = low(0)?;
            if let Some(v) = ops.get(1).and_then(|s| parse_imm(s)) {
                if !(0..=255).contains(&v) {
                    return Err(err(format!("movs immediate {v} out of range 0-255")));
                }
                ready(I::MovImm { rd, imm8: v as u8 })
            } else {
                let rm = low(1)?;
                ready(I::LslImm { rd, rm, imm5: 0 })
            }
        }
        "mov" => ready(I::MovHi {
            rd: reg(0)?,
            rm: reg(1)?,
        }),
        "adds" | "subs" => {
            let sub = mnemonic == "subs";
            let rd = low(0)?;
            match ops.len() {
                2 => {
                    // adds rdn, #imm8 | adds rd, rm → 3-operand alias.
                    if let Some(v) = ops.get(1).and_then(|s| parse_imm(s)) {
                        if !(0..=255).contains(&v) {
                            return Err(err(format!("immediate {v} out of range 0-255")));
                        }
                        if sub {
                            ready(I::SubImm8 {
                                rdn: rd,
                                imm8: v as u8,
                            })
                        } else {
                            ready(I::AddImm8 {
                                rdn: rd,
                                imm8: v as u8,
                            })
                        }
                    } else {
                        let rm = low(1)?;
                        if sub {
                            ready(I::SubReg { rd, rn: rd, rm })
                        } else {
                            ready(I::AddReg { rd, rn: rd, rm })
                        }
                    }
                }
                3 => {
                    let rn = low(1)?;
                    if let Some(v) = ops.get(2).and_then(|s| parse_imm(s)) {
                        if (0..=7).contains(&v) {
                            if sub {
                                ready(I::SubImm3 {
                                    rd,
                                    rn,
                                    imm3: v as u8,
                                })
                            } else {
                                ready(I::AddImm3 {
                                    rd,
                                    rn,
                                    imm3: v as u8,
                                })
                            }
                        } else if rd == rn && (0..=255).contains(&v) {
                            if sub {
                                ready(I::SubImm8 {
                                    rdn: rd,
                                    imm8: v as u8,
                                })
                            } else {
                                ready(I::AddImm8 {
                                    rdn: rd,
                                    imm8: v as u8,
                                })
                            }
                        } else {
                            Err(err(format!("immediate {v} not encodable")))
                        }
                    } else {
                        let rm = low(2)?;
                        if sub {
                            ready(I::SubReg { rd, rn, rm })
                        } else {
                            ready(I::AddReg { rd, rn, rm })
                        }
                    }
                }
                _ => Err(bad_operands()),
            }
        }
        "add" => {
            // add sp, #imm | add rd, sp, #imm | add rd, rm (high registers)
            let r0 = reg(0)?;
            if r0 == Reg::SP && ops.len() == 2 {
                let v = imm(1)?;
                if v % 4 != 0 || !(0..=508).contains(&v) {
                    return Err(err(format!("add sp immediate {v} must be 0-508, ×4")));
                }
                ready(I::AddSp {
                    imm7: (v / 4) as u8,
                })
            } else if ops.len() == 3 && reg(1)? == Reg::SP {
                let v = imm(2)?;
                if v % 4 != 0 || !(0..=ADD_RD_SP_MAX_BYTES).contains(&v) {
                    return Err(err(format!("add rd, sp immediate {v} must be 0-1020, ×4")));
                }
                ready(I::AddRdSp {
                    rd: low(0)?,
                    imm8: (v / 4) as u8,
                })
            } else if ops.len() == 2 {
                ready(I::AddHi {
                    rdn: r0,
                    rm: reg(1)?,
                })
            } else {
                Err(bad_operands())
            }
        }
        "sub" => {
            if reg(0)? == Reg::SP {
                let v = imm(1)?;
                if v % 4 != 0 || !(0..=508).contains(&v) {
                    return Err(err(format!("sub sp immediate {v} must be 0-508, ×4")));
                }
                ready(I::SubSp {
                    imm7: (v / 4) as u8,
                })
            } else {
                Err(bad_operands())
            }
        }
        "cmp" => {
            let rn = reg(0)?;
            if let Some(v) = ops.get(1).and_then(|s| parse_imm(s)) {
                if !rn.is_low() || !(0..=255).contains(&v) {
                    return Err(err("cmp immediate needs r0-r7 and 0-255".into()));
                }
                ready(I::CmpImm { rn, imm8: v as u8 })
            } else {
                let rm = reg(1)?;
                if rn.is_low() && rm.is_low() {
                    ready(I::DataProc {
                        op: DpOp::Cmp,
                        rdn: rn,
                        rm,
                    })
                } else {
                    ready(I::CmpHi { rn, rm })
                }
            }
        }
        "ands" | "eors" | "orrs" | "bics" | "adcs" | "sbcs" | "rors" => {
            let op = match mnemonic {
                "ands" => DpOp::And,
                "eors" => DpOp::Eor,
                "orrs" => DpOp::Orr,
                "bics" => DpOp::Bic,
                "adcs" => DpOp::Adc,
                "sbcs" => DpOp::Sbc,
                _ => DpOp::Ror,
            };
            // Accept both 2- and 3-operand (rd must equal rn) forms.
            let rdn = low(0)?;
            let rm = if ops.len() == 3 {
                if low(1)? != rdn {
                    return Err(err(format!("`{mnemonic}` requires rd == rn")));
                }
                low(2)?
            } else {
                low(1)?
            };
            ready(I::DataProc { op, rdn, rm })
        }
        "tst" => ready(I::DataProc {
            op: DpOp::Tst,
            rdn: low(0)?,
            rm: low(1)?,
        }),
        "cmn" => ready(I::DataProc {
            op: DpOp::Cmn,
            rdn: low(0)?,
            rm: low(1)?,
        }),
        "mvns" => ready(I::DataProc {
            op: DpOp::Mvn,
            rdn: low(0)?,
            rm: low(1)?,
        }),
        "rsbs" | "negs" => {
            // rsbs rd, rn, #0  |  negs rd, rn
            let rd = low(0)?;
            let rn = low(1)?;
            if mnemonic == "rsbs" && ops.len() == 3 && imm(2)? != 0 {
                return Err(err("rsbs only supports #0".into()));
            }
            ready(I::DataProc {
                op: DpOp::Rsb,
                rdn: rd,
                rm: rn,
            })
        }
        "muls" => {
            // muls rd, rn, rm with rd == rm (UAL) or 2-operand form.
            let rd = low(0)?;
            let rn = low(1)?;
            let rm = if ops.len() == 3 { low(2)? } else { rn };
            if ops.len() == 3 && rm != rd {
                // muls rd, rn, rd is the canonical encodable form; accept
                // rd, rn, rm by swapping when possible.
                if rn == rd {
                    return ready(I::DataProc {
                        op: DpOp::Mul,
                        rdn: rd,
                        rm,
                    });
                }
                return Err(err("muls requires rd to equal one source".into()));
            }
            ready(I::DataProc {
                op: DpOp::Mul,
                rdn: rd,
                rm: rn,
            })
        }
        "lsls" | "lsrs" | "asrs" => {
            let rd = low(0)?;
            let rm = low(1)?;
            if let Some(v) = ops.get(2).and_then(|s| parse_imm(s)) {
                if !(0..=31).contains(&v) {
                    return Err(err(format!("shift amount {v} out of range")));
                }
                match mnemonic {
                    "lsls" => ready(I::LslImm {
                        rd,
                        rm,
                        imm5: v as u8,
                    }),
                    "lsrs" => ready(I::LsrImm {
                        rd,
                        rm,
                        imm5: v as u8,
                    }),
                    _ => ready(I::AsrImm {
                        rd,
                        rm,
                        imm5: v as u8,
                    }),
                }
            } else {
                // Register shift: rd must equal first source.
                let op = match mnemonic {
                    "lsls" => DpOp::Lsl,
                    "lsrs" => DpOp::Lsr,
                    _ => DpOp::Asr,
                };
                let rs = if ops.len() == 3 {
                    if rm != rd {
                        return Err(err(format!("`{mnemonic}` register form requires rd == rn")));
                    }
                    low(2)?
                } else {
                    rm
                };
                ready(I::DataProc {
                    op,
                    rdn: rd,
                    rm: rs,
                })
            }
        }
        "uxtb" => ready(I::Uxtb {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "uxth" => ready(I::Uxth {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "sxtb" => ready(I::Sxtb {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "sxth" => ready(I::Sxth {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "rev" => ready(I::Rev {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "rev16" => ready(I::Rev16 {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "revsh" => ready(I::Revsh {
            rd: low(0)?,
            rm: low(1)?,
        }),
        "adr" => {
            let rd = low(0)?;
            let target = ops.get(1).ok_or_else(|| err("missing adr target".into()))?;
            Ok(ParsedInst::Adr {
                rd,
                target: target.clone(),
            })
        }
        "push" => {
            let (mask, lr) = ops
                .first()
                .and_then(|s| parse_reglist(s, Reg::LR))
                .ok_or_else(|| err("invalid push register list".into()))?;
            ready(I::Push {
                registers: mask,
                lr,
            })
        }
        "pop" => {
            let (mask, pc) = ops
                .first()
                .and_then(|s| parse_reglist(s, Reg::PC))
                .ok_or_else(|| err("invalid pop register list".into()))?;
            ready(I::Pop {
                registers: mask,
                pc,
            })
        }
        "ldmia" | "ldm" | "stmia" | "stm" => {
            let base = ops
                .first()
                .and_then(|s| parse_reg(s.trim().strip_suffix('!').unwrap_or(s)))
                .filter(|r| r.is_low())
                .ok_or_else(|| err(format!("`{mnemonic}` needs a low base register")))?;
            // Reg(16) is an unmatchable sentinel: only r0-r7 are accepted.
            let (mask, _) = ops
                .get(1)
                .and_then(|s| parse_reglist(s, Reg(16)))
                .ok_or_else(|| err(format!("invalid `{mnemonic}` register list")))?;
            if mask == 0 {
                return Err(err(format!("`{mnemonic}` register list is empty")));
            }
            if mnemonic.starts_with("ld") {
                ready(I::Ldmia {
                    rn: base,
                    registers: mask,
                })
            } else {
                ready(I::Stmia {
                    rn: base,
                    registers: mask,
                })
            }
        }
        "ldr" | "str" | "ldrb" | "strb" | "ldrh" | "strh" | "ldrsb" | "ldrsh" => {
            let rt = low(0)?;
            let second = ops.get(1).ok_or_else(&bad_operands)?;
            // ldr rX, =value pseudo-instruction.
            if mnemonic == "ldr" {
                if let Some(val) = second.strip_prefix('=') {
                    return Ok(ParsedInst::LdrPool {
                        rt,
                        value: parse_value_ref(val),
                    });
                }
            }
            let mem = parse_mem(second).ok_or_else(&bad_operands)?;
            match (mnemonic, mem) {
                ("ldr", MemOperand::Imm(rn, v)) if rn == Reg::SP => {
                    check_scaled(line, v, 4, 255)?;
                    ready(I::LdrSp {
                        rt,
                        imm8: (v / 4) as u8,
                    })
                }
                ("str", MemOperand::Imm(rn, v)) if rn == Reg::SP => {
                    check_scaled(line, v, 4, 255)?;
                    ready(I::StrSp {
                        rt,
                        imm8: (v / 4) as u8,
                    })
                }
                ("ldr", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 4, 31)?;
                    ready(I::LdrImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: (v / 4) as u8,
                    })
                }
                ("str", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 4, 31)?;
                    ready(I::StrImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: (v / 4) as u8,
                    })
                }
                ("ldrb", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 1, 31)?;
                    ready(I::LdrbImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: v as u8,
                    })
                }
                ("strb", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 1, 31)?;
                    ready(I::StrbImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: v as u8,
                    })
                }
                ("ldrh", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 2, 31)?;
                    ready(I::LdrhImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: (v / 2) as u8,
                    })
                }
                ("strh", MemOperand::Imm(rn, v)) => {
                    check_scaled(line, v, 2, 31)?;
                    ready(I::StrhImm {
                        rt,
                        rn: require_low(line, rn)?,
                        imm5: (v / 2) as u8,
                    })
                }
                ("ldr", MemOperand::Reg(rn, rm)) => ready(I::LdrReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("str", MemOperand::Reg(rn, rm)) => ready(I::StrReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("ldrb", MemOperand::Reg(rn, rm)) => ready(I::LdrbReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("strb", MemOperand::Reg(rn, rm)) => ready(I::StrbReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("ldrh", MemOperand::Reg(rn, rm)) => ready(I::LdrhReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("strh", MemOperand::Reg(rn, rm)) => ready(I::StrhReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("ldrsb", MemOperand::Reg(rn, rm)) => ready(I::LdrsbReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                ("ldrsh", MemOperand::Reg(rn, rm)) => ready(I::LdrshReg {
                    rt,
                    rn: require_low(line, rn)?,
                    rm: require_low(line, rm)?,
                }),
                _ => Err(bad_operands()),
            }
        }
        _ => Err(err(format!("unknown mnemonic `{mnemonic}`"))),
    }
}

fn require_low(line: usize, r: Reg) -> Result<Reg, AsmError> {
    if r.is_low() {
        Ok(r)
    } else {
        Err(AsmError::new(
            line,
            format!("register {r} must be r0-r7 here"),
        ))
    }
}

fn check_scaled(line: usize, v: i64, scale: i64, max_units: i64) -> Result<(), AsmError> {
    if v < 0 || v % scale != 0 || v / scale > max_units {
        return Err(AsmError::new(
            line,
            format!(
                "offset {v} must be a multiple of {scale} in 0..={}",
                max_units * scale
            ),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_comment_lines() {
        let img = assemble("\n; only a comment\n  // another\n").expect("assembles");
        assert!(img.is_empty());
    }

    #[test]
    fn simple_program_bytes() {
        let img = assemble("movs r0, #1\nbkpt #0").expect("assembles");
        assert_eq!(img, vec![0x01, 0x20, 0x00, 0xBE]);
    }

    #[test]
    fn labels_and_branches() {
        let img = assemble(
            "
            movs r0, #0
        loop:
            adds r0, r0, #1
            cmp r0, #3
            bne loop
            bkpt #0
        ",
        )
        .expect("assembles");
        // bne back from 0x6 to 0x2: offset = 2 - (6+4) = -8 → imm8 = -4.
        let bne = u16::from_le_bytes([img[6], img[7]]);
        assert_eq!(bne, 0xD100 | (0xFC & 0xFF));
    }

    #[test]
    fn literal_pool_is_deduplicated() {
        let img = assemble(
            "
            ldr r0, =0x20000000
            ldr r1, =0x20000000
            ldr r2, =0x12345678
            bkpt #0
        ",
        )
        .expect("assembles");
        // 4 halfwords of code (8 bytes) + 2 pool words = 16 bytes.
        assert_eq!(img.len(), 16);
        assert_eq!(&img[8..12], &0x2000_0000u32.to_le_bytes());
        assert_eq!(&img[12..16], &0x1234_5678u32.to_le_bytes());
    }

    #[test]
    fn word_directive_and_label_value() {
        let img = assemble(
            "
            b start
        table:
            .word 0xCAFEBABE
            .word table
        start:
            bkpt #0
        ",
        )
        .expect("assembles");
        // b(2) + align? table at offset 2? .word is not auto-aligned; b is
        // 2 bytes so table = 2.
        assert_eq!(&img[2..6], &0xCAFE_BABEu32.to_le_bytes());
        assert_eq!(&img[6..10], &2u32.to_le_bytes());
    }

    #[test]
    fn reglist_ranges() {
        let img = assemble("push {r0-r2, r4, lr}\nbkpt #0").expect("assembles");
        let half = u16::from_le_bytes([img[0], img[1]]);
        assert_eq!(half, 0xB400 | 0x100 | 0b0001_0111);
    }

    #[test]
    fn errors_name_their_line() {
        let e = assemble("movs r0, #1\nfrobnicate r1\n").expect_err("should fail");
        assert_eq!(e.line(), 2);
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let e = assemble("b nowhere").expect_err("should fail");
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let e = assemble("a:\na:\n  bkpt #0").expect_err("should fail");
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn out_of_range_immediate_is_an_error() {
        let e = assemble("movs r0, #300").expect_err("should fail");
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn branch_out_of_range_is_an_error() {
        let mut src = String::from("beq far\n");
        for _ in 0..300 {
            src.push_str("nop\n");
        }
        src.push_str("far: bkpt #0\n");
        let e = assemble(&src).expect_err("should fail");
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn misaligned_sp_offset_is_an_error() {
        let e = assemble("ldr r0, [sp, #3]").expect_err("should fail");
        assert!(e.to_string().contains("multiple of 4"));
    }
}
