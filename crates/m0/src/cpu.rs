//! The Cortex-M0 execution engine with documented cycle costs.

use crate::inst::{Condition, DecodeError, DpOp, Instruction, Reg};
use crate::memory::{MemoryError, MemorySystem, DATA_BASE, DATA_SIZE};

/// Execution fault.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ExecError {
    /// Undecodable instruction.
    Decode {
        /// Address of the instruction.
        pc: u32,
        /// Underlying decode error.
        source: DecodeError,
    },
    /// Memory fault during execution.
    Memory {
        /// Address of the instruction that faulted.
        pc: u32,
        /// Underlying memory error.
        source: MemoryError,
    },
    /// `run` exceeded its cycle budget without reaching a breakpoint.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::Decode { pc, source } => write!(f, "at pc={pc:#010x}: {source}"),
            ExecError::Memory { pc, source } => write!(f, "at pc={pc:#010x}: {source}"),
            ExecError::CycleLimit { limit } => {
                write!(f, "program did not halt within {limit} cycles")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a completed [`Cpu::run`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cycles consumed (the paper's `N_cycle`).
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// The `bkpt` immediate that stopped execution.
    pub halt_code: u8,
}

#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Apsr {
    n: bool,
    z: bool,
    c: bool,
    v: bool,
}

/// A Cortex-M0 core attached to a [`MemorySystem`].
///
/// Cycle costs follow the Cortex-M0 technical reference manual (with the
/// single-cycle multiplier option): 1 cycle for ALU/moves, 2 for loads and
/// stores, 3 for taken branches and `bx`, 4 for `bl`, and `1 + N` for
/// `push`/`pop` (`4 + N` when `pop` reloads the PC).
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u32; 16],
    apsr: Apsr,
    memory: MemorySystem,
    cycles: u64,
    instructions: u64,
    halted: Option<u8>,
}

impl Cpu {
    /// Creates a core with the program loaded at address 0, `pc = 0`, and
    /// `sp` at the top of data memory.
    pub fn new(program_image: &[u8]) -> Self {
        let mut regs = [0u32; 16];
        regs[Reg::SP.index()] = DATA_BASE + DATA_SIZE;
        Self {
            regs,
            apsr: Apsr::default(),
            memory: MemorySystem::new(program_image),
            cycles: 0,
            instructions: 0,
            halted: None,
        }
    }

    /// Reads a core register. Reading `pc` returns the current instruction
    /// address.
    pub fn reg(&self, index: u8) -> u32 {
        self.regs[index as usize]
    }

    /// Writes a core register (test setup / argument passing).
    pub fn set_reg(&mut self, index: u8, value: u32) {
        self.regs[index as usize] = value;
    }

    /// Cycles consumed so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// The attached memory system.
    pub fn memory(&self) -> &MemorySystem {
        &self.memory
    }

    /// Mutable access to the memory system (workload input setup).
    pub fn memory_mut(&mut self) -> &mut MemorySystem {
        &mut self.memory
    }

    /// `Some(code)` once a `bkpt #code` has retired.
    pub fn halted(&self) -> Option<u8> {
        self.halted
    }

    /// Runs until a breakpoint halts the core.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`] from execution, or [`ExecError::CycleLimit`] if the
    /// program has not halted within `max_cycles`.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunSummary, ExecError> {
        while self.halted.is_none() {
            if self.cycles >= max_cycles {
                return Err(ExecError::CycleLimit { limit: max_cycles });
            }
            self.step()?;
        }
        Ok(RunSummary {
            cycles: self.cycles,
            instructions: self.instructions,
            halt_code: self.halted.unwrap_or(0),
        })
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Decode or memory faults, tagged with the faulting `pc`.
    pub fn step(&mut self) -> Result<(), ExecError> {
        if self.halted.is_some() {
            return Ok(());
        }
        let pc = self.regs[Reg::PC.index()];
        let mem = |source| ExecError::Memory { pc, source };
        let first = self.memory.fetch_halfword(pc).map_err(mem)?;
        let next = if (first >> 11) == 0b11110 {
            Some(self.memory.fetch_halfword(pc + 2).map_err(mem)?)
        } else {
            None
        };
        let inst =
            Instruction::decode(first, next).map_err(|source| ExecError::Decode { pc, source })?;
        let size = inst.size();
        self.instructions += 1;
        self.exec(inst, pc, size).map_err(mem)
    }

    /// The PC value visible to instructions (current address + 4).
    fn pc_operand(&self, pc: u32) -> u32 {
        pc.wrapping_add(4)
    }

    fn exec(&mut self, inst: Instruction, pc: u32, size: u32) -> Result<(), MemoryError> {
        use Instruction::*;
        let mut next_pc = pc.wrapping_add(size);
        let mut cost: u64 = 1;
        let cycle = self.cycles;

        match inst {
            LslImm { rd, rm, imm5 } => {
                let v = self.regs[rm.index()];
                let r = if imm5 == 0 {
                    // MOVS register: flags N,Z only.
                    v
                } else {
                    self.apsr.c = (v >> (32 - imm5 as u32)) & 1 == 1;
                    v << imm5
                };
                self.set_nz(r);
                self.regs[rd.index()] = r;
            }
            LsrImm { rd, rm, imm5 } => {
                let v = self.regs[rm.index()];
                let sh = if imm5 == 0 { 32 } else { imm5 as u32 };
                let r = if sh == 32 {
                    self.apsr.c = (v >> 31) & 1 == 1;
                    0
                } else {
                    self.apsr.c = (v >> (sh - 1)) & 1 == 1;
                    v >> sh
                };
                self.set_nz(r);
                self.regs[rd.index()] = r;
            }
            AsrImm { rd, rm, imm5 } => {
                let v = self.regs[rm.index()] as i32;
                let sh = if imm5 == 0 { 32 } else { imm5 as u32 };
                let r = if sh == 32 {
                    self.apsr.c = v < 0;
                    (v >> 31) as u32
                } else {
                    self.apsr.c = (v >> (sh - 1)) & 1 == 1;
                    (v >> sh) as u32
                };
                self.set_nz(r);
                self.regs[rd.index()] = r;
            }
            AddReg { rd, rn, rm } => {
                let r = self.add_with_flags(self.regs[rn.index()], self.regs[rm.index()], false);
                self.regs[rd.index()] = r;
            }
            SubReg { rd, rn, rm } => {
                let r = self.sub_with_flags(self.regs[rn.index()], self.regs[rm.index()], true);
                self.regs[rd.index()] = r;
            }
            AddImm3 { rd, rn, imm3 } => {
                let r = self.add_with_flags(self.regs[rn.index()], imm3 as u32, false);
                self.regs[rd.index()] = r;
            }
            SubImm3 { rd, rn, imm3 } => {
                let r = self.sub_with_flags(self.regs[rn.index()], imm3 as u32, true);
                self.regs[rd.index()] = r;
            }
            MovImm { rd, imm8 } => {
                let r = imm8 as u32;
                self.set_nz(r);
                self.regs[rd.index()] = r;
            }
            CmpImm { rn, imm8 } => {
                let _ = self.sub_with_flags(self.regs[rn.index()], imm8 as u32, true);
            }
            AddImm8 { rdn, imm8 } => {
                let r = self.add_with_flags(self.regs[rdn.index()], imm8 as u32, false);
                self.regs[rdn.index()] = r;
            }
            SubImm8 { rdn, imm8 } => {
                let r = self.sub_with_flags(self.regs[rdn.index()], imm8 as u32, true);
                self.regs[rdn.index()] = r;
            }
            DataProc { op, rdn, rm } => {
                let a = self.regs[rdn.index()];
                let b = self.regs[rm.index()];
                match op {
                    DpOp::And => {
                        let r = a & b;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Eor => {
                        let r = a ^ b;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Orr => {
                        let r = a | b;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Bic => {
                        let r = a & !b;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Mvn => {
                        let r = !b;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Tst => self.set_nz(a & b),
                    DpOp::Lsl => {
                        let sh = b & 0xFF;
                        let r = self.shift_left_with_carry(a, sh);
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Lsr => {
                        let sh = b & 0xFF;
                        let r = self.shift_right_with_carry(a, sh, false);
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Asr => {
                        let sh = b & 0xFF;
                        let r = self.shift_right_with_carry(a, sh, true);
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Ror => {
                        let sh = b & 0xFF;
                        let r = if sh == 0 {
                            a
                        } else {
                            let s = sh % 32;
                            let r = a.rotate_right(s);
                            self.apsr.c = (r >> 31) & 1 == 1;
                            r
                        };
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Adc => {
                        let carry = self.apsr.c as u32;
                        let (s1, c1) = a.overflowing_add(b);
                        let (r, c2) = s1.overflowing_add(carry);
                        self.apsr.c = c1 || c2;
                        self.apsr.v = ((a ^ r) & (b ^ r)) >> 31 == 1;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Sbc => {
                        let borrow = (!self.apsr.c) as u32;
                        let nb = !b;
                        let (s1, c1) = a.overflowing_add(nb);
                        let (r, c2) = s1.overflowing_add(1 - borrow);
                        self.apsr.c = c1 || c2;
                        self.apsr.v = ((a ^ r) & (nb ^ r)) >> 31 == 1;
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Rsb => {
                        // RSBS rdn, rm, #0 (NEG).
                        let r = self.sub_with_flags(0, b, true);
                        self.regs[rdn.index()] = r;
                    }
                    DpOp::Cmp => {
                        let _ = self.sub_with_flags(a, b, true);
                    }
                    DpOp::Cmn => {
                        let _ = self.add_with_flags(a, b, false);
                    }
                    DpOp::Mul => {
                        // Single-cycle multiplier configuration.
                        let r = a.wrapping_mul(b);
                        self.set_nz(r);
                        self.regs[rdn.index()] = r;
                    }
                }
            }
            AddHi { rdn, rm } => {
                let a = self.read_operand(rdn, pc);
                let b = self.read_operand(rm, pc);
                let r = a.wrapping_add(b);
                if rdn == Reg::PC {
                    next_pc = r & !1;
                    cost = 3;
                } else {
                    self.regs[rdn.index()] = r;
                }
            }
            CmpHi { rn, rm } => {
                let a = self.read_operand(rn, pc);
                let b = self.read_operand(rm, pc);
                let _ = self.sub_with_flags(a, b, true);
            }
            MovHi { rd, rm } => {
                let v = self.read_operand(rm, pc);
                if rd == Reg::PC {
                    next_pc = v & !1;
                    cost = 3;
                } else {
                    self.regs[rd.index()] = v;
                }
            }
            Bx { rm } => {
                next_pc = self.read_operand(rm, pc) & !1;
                cost = 3;
            }
            Blx { rm } => {
                let target = self.read_operand(rm, pc) & !1;
                self.regs[Reg::LR.index()] = pc.wrapping_add(2) | 1;
                next_pc = target;
                cost = 3;
            }
            LdrLit { rt, imm8 } => {
                let base = self.pc_operand(pc) & !3;
                let v = self.memory.read_u32(base + (imm8 as u32) * 4, cycle)?;
                self.regs[rt.index()] = v;
                cost = 2;
            }
            LdrImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add((imm5 as u32) * 4);
                self.regs[rt.index()] = self.memory.read_u32(addr, cycle)?;
                cost = 2;
            }
            StrImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add((imm5 as u32) * 4);
                self.memory.write_u32(addr, self.regs[rt.index()], cycle)?;
                cost = 2;
            }
            LdrbImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add(imm5 as u32);
                self.regs[rt.index()] = self.memory.read_u8(addr, cycle)? as u32;
                cost = 2;
            }
            StrbImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add(imm5 as u32);
                self.memory
                    .write_u8(addr, self.regs[rt.index()] as u8, cycle)?;
                cost = 2;
            }
            LdrhImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add((imm5 as u32) * 2);
                self.regs[rt.index()] = self.memory.read_u16(addr, cycle)? as u32;
                cost = 2;
            }
            StrhImm { rt, rn, imm5 } => {
                let addr = self.regs[rn.index()].wrapping_add((imm5 as u32) * 2);
                self.memory
                    .write_u16(addr, self.regs[rt.index()] as u16, cycle)?;
                cost = 2;
            }
            LdrReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.regs[rt.index()] = self.memory.read_u32(addr, cycle)?;
                cost = 2;
            }
            StrReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.memory.write_u32(addr, self.regs[rt.index()], cycle)?;
                cost = 2;
            }
            LdrbReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.regs[rt.index()] = self.memory.read_u8(addr, cycle)? as u32;
                cost = 2;
            }
            StrbReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.memory
                    .write_u8(addr, self.regs[rt.index()] as u8, cycle)?;
                cost = 2;
            }
            LdrhReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.regs[rt.index()] = self.memory.read_u16(addr, cycle)? as u32;
                cost = 2;
            }
            StrhReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.memory
                    .write_u16(addr, self.regs[rt.index()] as u16, cycle)?;
                cost = 2;
            }
            LdrsbReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.regs[rt.index()] = self.memory.read_u8(addr, cycle)? as i8 as i32 as u32;
                cost = 2;
            }
            LdrshReg { rt, rn, rm } => {
                let addr = self.regs[rn.index()].wrapping_add(self.regs[rm.index()]);
                self.regs[rt.index()] = self.memory.read_u16(addr, cycle)? as i16 as i32 as u32;
                cost = 2;
            }
            LdrSp { rt, imm8 } => {
                let addr = self.regs[Reg::SP.index()].wrapping_add((imm8 as u32) * 4);
                self.regs[rt.index()] = self.memory.read_u32(addr, cycle)?;
                cost = 2;
            }
            StrSp { rt, imm8 } => {
                let addr = self.regs[Reg::SP.index()].wrapping_add((imm8 as u32) * 4);
                self.memory.write_u32(addr, self.regs[rt.index()], cycle)?;
                cost = 2;
            }
            AddRdSp { rd, imm8 } => {
                self.regs[rd.index()] = self.regs[Reg::SP.index()].wrapping_add((imm8 as u32) * 4);
            }
            Adr { rd, imm8 } => {
                self.regs[rd.index()] = (self.pc_operand(pc) & !3) + (imm8 as u32) * 4;
            }
            AddSp { imm7 } => {
                self.regs[Reg::SP.index()] =
                    self.regs[Reg::SP.index()].wrapping_add((imm7 as u32) * 4);
            }
            SubSp { imm7 } => {
                self.regs[Reg::SP.index()] =
                    self.regs[Reg::SP.index()].wrapping_sub((imm7 as u32) * 4);
            }
            Uxtb { rd, rm } => self.regs[rd.index()] = self.regs[rm.index()] & 0xFF,
            Uxth { rd, rm } => self.regs[rd.index()] = self.regs[rm.index()] & 0xFFFF,
            Sxtb { rd, rm } => {
                self.regs[rd.index()] = self.regs[rm.index()] as u8 as i8 as i32 as u32
            }
            Sxth { rd, rm } => {
                self.regs[rd.index()] = self.regs[rm.index()] as u16 as i16 as i32 as u32
            }
            Rev { rd, rm } => self.regs[rd.index()] = self.regs[rm.index()].swap_bytes(),
            Rev16 { rd, rm } => {
                let v = self.regs[rm.index()];
                self.regs[rd.index()] = ((v & 0x00FF_00FF) << 8) | ((v & 0xFF00_FF00) >> 8);
            }
            Revsh { rd, rm } => {
                let v = self.regs[rm.index()] as u16;
                self.regs[rd.index()] = (v.swap_bytes() as i16) as i32 as u32;
            }
            Push { registers, lr } => {
                let mut count = 0u32;
                let mut sp = self.regs[Reg::SP.index()];
                let total = registers.count_ones() + lr as u32;
                sp = sp.wrapping_sub(4 * total);
                self.regs[Reg::SP.index()] = sp;
                for r in 0..8u8 {
                    if registers & (1 << r) != 0 {
                        self.memory
                            .write_u32(sp + 4 * count, self.regs[r as usize], cycle)?;
                        count += 1;
                    }
                }
                if lr {
                    self.memory
                        .write_u32(sp + 4 * count, self.regs[Reg::LR.index()], cycle)?;
                }
                cost = 1 + total as u64;
            }
            Pop {
                registers,
                pc: load_pc,
            } => {
                let mut sp = self.regs[Reg::SP.index()];
                let total = registers.count_ones() + load_pc as u32;
                for r in 0..8u8 {
                    if registers & (1 << r) != 0 {
                        self.regs[r as usize] = self.memory.read_u32(sp, cycle)?;
                        sp = sp.wrapping_add(4);
                    }
                }
                if load_pc {
                    next_pc = self.memory.read_u32(sp, cycle)? & !1;
                    sp = sp.wrapping_add(4);
                    cost = 4 + registers.count_ones() as u64;
                } else {
                    cost = 1 + total as u64;
                }
                self.regs[Reg::SP.index()] = sp;
            }
            Stmia { rn, registers } => {
                let mut addr = self.regs[rn.index()];
                for r in 0..8u8 {
                    if registers & (1 << r) != 0 {
                        self.memory.write_u32(addr, self.regs[r as usize], cycle)?;
                        addr = addr.wrapping_add(4);
                    }
                }
                self.regs[rn.index()] = addr;
                cost = 1 + u64::from(registers.count_ones());
            }
            Ldmia { rn, registers } => {
                let mut addr = self.regs[rn.index()];
                for r in 0..8u8 {
                    if registers & (1 << r) != 0 {
                        self.regs[r as usize] = self.memory.read_u32(addr, cycle)?;
                        addr = addr.wrapping_add(4);
                    }
                }
                // Writeback unless rn is in the list (ARMv6-M: loaded value
                // wins in that case).
                if registers & (1 << rn.0) == 0 {
                    self.regs[rn.index()] = addr;
                }
                cost = 1 + u64::from(registers.count_ones());
            }
            BCond { cond, imm8 } => {
                if self.condition_passed(cond) {
                    let offset = ((imm8 as i8) as i32) << 1;
                    next_pc = self.pc_operand(pc).wrapping_add(offset as u32);
                    cost = 3;
                } else {
                    cost = 1;
                }
            }
            B { imm11 } => {
                let offset = (((imm11 << 5) as i16) as i32) >> 4; // sign-extend ×2
                next_pc = self.pc_operand(pc).wrapping_add(offset as u32);
                cost = 3;
            }
            Bl { offset } => {
                self.regs[Reg::LR.index()] = pc.wrapping_add(4) | 1;
                next_pc = self.pc_operand(pc).wrapping_add(offset as u32);
                cost = 4;
            }
            Bkpt { imm8 } => {
                self.halted = Some(imm8);
            }
            Nop => {}
        }

        self.regs[Reg::PC.index()] = next_pc;
        self.cycles += cost;
        Ok(())
    }

    /// Register value as an operand: `pc` reads as current + 4, `sp`/`lr`
    /// read directly.
    fn read_operand(&self, r: Reg, pc: u32) -> u32 {
        if r == Reg::PC {
            self.pc_operand(pc)
        } else {
            self.regs[r.index()]
        }
    }

    fn set_nz(&mut self, r: u32) {
        self.apsr.n = (r >> 31) & 1 == 1;
        self.apsr.z = r == 0;
    }

    fn add_with_flags(&mut self, a: u32, b: u32, _sub: bool) -> u32 {
        let (r, carry) = a.overflowing_add(b);
        self.apsr.c = carry;
        self.apsr.v = ((a ^ r) & (b ^ r)) >> 31 == 1;
        self.set_nz(r);
        r
    }

    fn sub_with_flags(&mut self, a: u32, b: u32, _sub: bool) -> u32 {
        let r = a.wrapping_sub(b);
        self.apsr.c = a >= b; // ARM: C = NOT borrow
        self.apsr.v = ((a ^ b) & (a ^ r)) >> 31 == 1;
        self.set_nz(r);
        r
    }

    fn shift_left_with_carry(&mut self, v: u32, sh: u32) -> u32 {
        match sh {
            0 => v,
            1..=31 => {
                self.apsr.c = (v >> (32 - sh)) & 1 == 1;
                v << sh
            }
            32 => {
                self.apsr.c = v & 1 == 1;
                0
            }
            _ => {
                self.apsr.c = false;
                0
            }
        }
    }

    fn shift_right_with_carry(&mut self, v: u32, sh: u32, arithmetic: bool) -> u32 {
        match sh {
            0 => v,
            1..=31 => {
                self.apsr.c = (v >> (sh - 1)) & 1 == 1;
                if arithmetic {
                    ((v as i32) >> sh) as u32
                } else {
                    v >> sh
                }
            }
            _ => {
                if arithmetic {
                    self.apsr.c = (v >> 31) & 1 == 1;
                    ((v as i32) >> 31) as u32
                } else {
                    self.apsr.c = sh == 32 && (v >> 31) & 1 == 1;
                    0
                }
            }
        }
    }

    fn condition_passed(&self, cond: Condition) -> bool {
        use Condition::*;
        let Apsr { n, z, c, v } = self.apsr;
        match cond {
            Eq => z,
            Ne => !z,
            Cs => c,
            Cc => !c,
            Mi => n,
            Pl => !n,
            Vs => v,
            Vc => !v,
            Hi => c && !z,
            Ls => !c || z,
            Ge => n == v,
            Lt => n != v,
            Gt => !z && (n == v),
            Le => z || (n != v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run(src: &str) -> Cpu {
        let image = assemble(src).expect("test program should assemble");
        let mut cpu = Cpu::new(&image);
        cpu.run(10_000_000).expect("test program should halt");
        cpu
    }

    #[test]
    fn arithmetic_and_flags() {
        let cpu = run("
            movs r0, #200
            adds r0, r0, #100   ; 300
            movs r1, #44
            subs r0, r0, r1     ; 256
            lsls r0, r0, #2     ; 1024
            lsrs r0, r0, #3     ; 128
            bkpt #0
        ");
        assert_eq!(cpu.reg(0), 128);
    }

    #[test]
    fn countdown_loop_cycles() {
        // 3 iterations: adds(1) + subs(1) + taken bne(3) = 5, last bne is
        // not taken (1): movs×2 (2) + 2×5 + (1+1+1) + bkpt(1) = 16 cycles.
        let cpu = run("
            movs r0, #0
            movs r1, #3
        loop:
            adds r0, r0, #2
            subs r1, r1, #1
            bne loop
            bkpt #0
        ");
        assert_eq!(cpu.reg(0), 6);
        assert_eq!(cpu.cycles(), 16);
    }

    #[test]
    fn memory_store_load() {
        let cpu = run("
            ldr r0, =0x20000000
            movs r1, #42
            str r1, [r0, #0]
            movs r2, #0
            ldr r2, [r0, #0]
            bkpt #0
        ");
        assert_eq!(cpu.reg(2), 42);
        let stats = cpu.memory().stats();
        assert_eq!(stats.data_writes, 1);
        assert_eq!(stats.data_reads, 1);
        assert_eq!(stats.program_reads, 1); // the literal pool load
    }

    #[test]
    fn function_call_and_return() {
        let cpu = run("
            movs r0, #5
            bl double
            bl double
            bkpt #0
        double:
            adds r0, r0, r0
            bx lr
        ");
        assert_eq!(cpu.reg(0), 20);
    }

    #[test]
    fn push_pop_round_trip() {
        let cpu = run("
            movs r0, #1
            movs r1, #2
            push {r0, r1}
            movs r0, #9
            movs r1, #9
            pop {r0, r1}
            bkpt #0
        ");
        assert_eq!(cpu.reg(0), 1);
        assert_eq!(cpu.reg(1), 2);
    }

    #[test]
    fn nested_call_with_stacked_lr() {
        let cpu = run("
            movs r0, #3
            bl outer
            bkpt #0
        outer:
            push {lr}
            bl inner
            adds r0, r0, #1
            pop {pc}
        inner:
            adds r0, r0, #10
            bx lr
        ");
        assert_eq!(cpu.reg(0), 14);
    }

    #[test]
    fn signed_comparisons() {
        let cpu = run("
            movs r0, #0
            subs r0, r0, #5     ; r0 = -5
            movs r1, #3
            cmp r0, r1
            blt is_less
            movs r2, #0
            b done
        is_less:
            movs r2, #1
        done:
            bkpt #0
        ");
        assert_eq!(cpu.reg(2), 1);
    }

    #[test]
    fn unsigned_comparisons() {
        let cpu = run("
            movs r0, #0
            mvns r0, r0        ; r0 = 0xFFFFFFFF
            movs r1, #1
            cmp r0, r1
            bhi is_higher
            movs r2, #0
            b done
        is_higher:
            movs r2, #1
        done:
            bkpt #0
        ");
        assert_eq!(cpu.reg(2), 1);
    }

    #[test]
    fn multiply() {
        let cpu = run("
            movs r0, #7
            movs r1, #6
            muls r0, r0, r1
            bkpt #0
        ");
        assert_eq!(cpu.reg(0), 42);
    }

    #[test]
    fn byte_and_halfword_memory() {
        let cpu = run("
            ldr r0, =0x20000100
            ldr r1, =0xABCD
            strh r1, [r0, #0]
            ldrb r2, [r0, #0]   ; 0xCD
            ldrb r3, [r0, #1]   ; 0xAB
            bkpt #0
        ");
        assert_eq!(cpu.reg(2), 0xCD);
        assert_eq!(cpu.reg(3), 0xAB);
    }

    #[test]
    fn adc_wide_add() {
        // 64-bit add: 0xFFFFFFFF + 1 with carry into the high word.
        let cpu = run("
            movs r0, #0
            mvns r0, r0        ; lo a = 0xFFFFFFFF
            movs r1, #0        ; hi a = 0
            movs r2, #1        ; lo b
            movs r3, #0        ; hi b
            adds r0, r0, r2
            adcs r1, r1, r3
            bkpt #0
        ");
        assert_eq!(cpu.reg(0), 0);
        assert_eq!(cpu.reg(1), 1);
    }

    #[test]
    fn ldm_stm_block_copy() {
        // Copy 3 words via stmia/ldmia with writeback; pointers advance.
        let cpu = run("
            ldr r0, =0x20000000
            movs r1, #11
            movs r2, #22
            movs r3, #33
            stmia r0!, {r1, r2, r3}
            ldr r4, =0x20000000
            ldmia r4!, {r5, r6, r7}
            bkpt #0
        ");
        assert_eq!(cpu.reg(5), 11);
        assert_eq!(cpu.reg(6), 22);
        assert_eq!(cpu.reg(7), 33);
        // Writeback: both pointers advanced by 12.
        assert_eq!(cpu.reg(0), 0x2000_000C);
        assert_eq!(cpu.reg(4), 0x2000_000C);
    }

    #[test]
    fn ldm_base_in_list_suppresses_writeback() {
        let cpu = run("
            ldr r0, =0x20000000
            movs r1, #77
            str r1, [r0, #0]
            ldmia r0!, {r0}
            bkpt #0
        ");
        // The loaded value wins over the writeback.
        assert_eq!(cpu.reg(0), 77);
    }

    #[test]
    fn ldm_stm_cycle_cost() {
        // stmia of N registers costs 1 + N.
        let base = run("ldr r0, =0x20000000\nbkpt #0").cycles();
        let with_stm = run("
            ldr r0, =0x20000000
            stmia r0!, {r1, r2, r3}
            bkpt #0
        ")
        .cycles();
        assert_eq!(with_stm - base, 4);
    }

    #[test]
    fn cycle_limit_errors() {
        let image = assemble("loop: b loop").expect("assembles");
        let mut cpu = Cpu::new(&image);
        let err = cpu.run(100).expect_err("must not halt");
        assert!(matches!(err, ExecError::CycleLimit { .. }));
    }

    #[test]
    fn load_store_cost_two_cycles() {
        let base = run("bkpt #0").cycles(); // 1
        let with_ldr = run("
            ldr r0, =0x20000000
            ldr r1, [r0, #0]
            bkpt #0
        ")
        .cycles();
        // ldr-literal (2) + ldr (2) + bkpt(1) = 5 vs 1.
        assert_eq!(with_ldr - base, 4);
    }
}
