//! A cycle-accurate ARMv6-M (Cortex-M0) instruction-set simulator with a
//! built-in Thumb assembler and memory-access tracing.
//!
//! The PPAtC paper obtains application statistics by compiling Embench
//! workloads for the Cortex-M0 and running RTL simulations (Synopsys VCS) to
//! extract — from the resulting `.vcd` waveforms — (a) the exact cycle count
//! of each application, (b) the number and addresses of memory accesses, and
//! (c) required data-retention times. This crate is that substrate:
//!
//! - [`asm`] — a two-pass Thumb assembler (labels, `.word`, `ldr rX, =imm`
//!   literal pools) so workloads can be written as ARMv6-M assembly without
//!   an external toolchain.
//! - [`Instruction`] — the ARMv6-M subset, with bidirectional
//!   encode/decode.
//! - [`Cpu`] — the executor with documented Cortex-M0 cycle costs
//!   (1-cycle ALU, 2-cycle load/store, 3-cycle taken branch, ...).
//! - [`MemorySystem`]/[`AccessStats`] — the program/data eDRAM regions of
//!   the paper's Fig. 1 architecture, counting fetches, reads, and writes,
//!   and tracking the write→last-read intervals that set required eDRAM
//!   retention time.
//!
//! # Example
//!
//! ```
//! use ppatc_m0::{asm, Cpu};
//!
//! let program = asm::assemble(r#"
//!         movs r0, #0      ; sum = 0
//!         movs r1, #10     ; i = 10
//!     loop:
//!         adds r0, r0, r1
//!         subs r1, r1, #1
//!         bne  loop
//!         bkpt #0
//! "#)?;
//! let mut cpu = Cpu::new(&program);
//! let run = cpu.run(1_000_000)?;
//! assert_eq!(cpu.reg(0), 55);
//! assert!(run.cycles > 30);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
mod cpu;
pub mod disasm;
mod inst;
mod memory;
pub mod vcd;

pub use cpu::{Cpu, ExecError, RunSummary};
pub use disasm::disassemble;
pub use inst::{Condition, DecodeError, DpOp, Instruction, Reg};
pub use memory::{AccessStats, MemoryError, MemorySystem, DATA_BASE, DATA_SIZE, PROG_SIZE};
