//! Value-change-dump (VCD) export of a simulation run.
//!
//! The paper's Step 4 extracts cycle counts, memory-access statistics, and
//! activity from `.vcd` waveforms produced by RTL simulation. This module
//! closes that loop: [`VcdRecorder`] watches a [`Cpu`] as it
//! steps and emits an IEEE-1364-style VCD of the architectural signals —
//! program counter, registers, memory-bus strobes — that any waveform
//! viewer (GTKWave etc.) can open.
//!
//! # Example
//!
//! ```
//! use ppatc_m0::{asm, Cpu};
//! use ppatc_m0::vcd::VcdRecorder;
//!
//! let image = asm::assemble("movs r0, #1\nadds r0, r0, #2\nbkpt #0")?;
//! let mut cpu = Cpu::new(&image);
//! let mut vcd = VcdRecorder::new("quick", 2_000); // 2 ns clock period, in ps
//! while cpu.halted().is_none() {
//!     cpu.step()?;
//!     vcd.capture(&cpu);
//! }
//! let text = vcd.finish();
//! assert!(text.contains("$enddefinitions"));
//! assert!(text.contains("$var"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::cpu::Cpu;
use core::fmt::Write as _;

/// Signals tracked by the recorder.
const REG_COUNT: usize = 16;

/// Records architectural state into VCD text.
#[derive(Clone, Debug)]
pub struct VcdRecorder {
    body: String,
    module: String,
    ps_per_cycle: u64,
    last_regs: [Option<u32>; REG_COUNT],
    last_fetches: u64,
    last_reads: u64,
    last_writes: u64,
    last_time: Option<u64>,
}

impl VcdRecorder {
    /// Creates a recorder. `module` names the VCD scope; `ps_per_cycle`
    /// converts the CPU's cycle counter to VCD time (e.g. 2000 ps at
    /// 500 MHz).
    ///
    /// # Panics
    ///
    /// Panics if `ps_per_cycle` is zero.
    pub fn new(module: &str, ps_per_cycle: u64) -> Self {
        assert!(ps_per_cycle > 0, "cycle period must be positive");
        Self {
            body: String::new(),
            module: module.to_string(),
            ps_per_cycle,
            last_regs: [None; REG_COUNT],
            last_fetches: 0,
            last_reads: 0,
            last_writes: 0,
            last_time: None,
        }
    }

    /// Identifier code for register `i` (`!`..), bus strobes get dedicated
    /// codes after the registers.
    fn id(i: usize) -> char {
        char::from(b'!' + i as u8)
    }

    /// Captures the CPU state after a step. Only changed signals are
    /// emitted, per VCD semantics.
    pub fn capture(&mut self, cpu: &Cpu) {
        let t = cpu.cycles() * self.ps_per_cycle;
        let mut changes = String::new();
        for (i, last) in self.last_regs.iter_mut().enumerate() {
            let v = cpu.reg(i as u8);
            if *last != Some(v) {
                let _ = writeln!(changes, "b{v:b} {}", Self::id(i));
                *last = Some(v);
            }
        }
        let stats = cpu.memory().stats();
        for (count, last, idx) in [
            (stats.instruction_fetches, &mut self.last_fetches, REG_COUNT),
            (stats.data_reads, &mut self.last_reads, REG_COUNT + 1),
            (stats.data_writes, &mut self.last_writes, REG_COUNT + 2),
        ] {
            // Strobe: pulse 1 when the counter advanced this step. Scalar
            // value changes have no space before the identifier code.
            let active = count > *last;
            let _ = writeln!(changes, "{}{}", u8::from(active), Self::id(idx));
            *last = count;
        }
        if !changes.is_empty() && self.last_time != Some(t) {
            let _ = writeln!(self.body, "#{t}");
            self.last_time = Some(t);
        }
        self.body.push_str(&changes);
    }

    /// Finalizes and returns the complete VCD document.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$date ppatc-m0 simulation $end");
        let _ = writeln!(out, "$version ppatc-m0 VCD recorder $end");
        let _ = writeln!(out, "$timescale 1ps $end");
        let _ = writeln!(out, "$scope module {} $end", self.module);
        for i in 0..REG_COUNT {
            let name = match i {
                13 => "sp".to_string(),
                14 => "lr".to_string(),
                15 => "pc".to_string(),
                n => format!("r{n}"),
            };
            let _ = writeln!(out, "$var reg 32 {} {name} $end", Self::id(i));
        }
        let _ = writeln!(out, "$var wire 1 {} fetch_strobe $end", Self::id(REG_COUNT));
        let _ = writeln!(
            out,
            "$var wire 1 {} data_read_strobe $end",
            Self::id(REG_COUNT + 1)
        );
        let _ = writeln!(
            out,
            "$var wire 1 {} data_write_strobe $end",
            Self::id(REG_COUNT + 2)
        );
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        out.push_str(&self.body);
        out
    }

    /// Convenience: run `cpu` to completion (up to `max_cycles`) while
    /// recording, returning the VCD text.
    ///
    /// # Errors
    ///
    /// Propagates any [`crate::ExecError`] from the run.
    pub fn record_run(
        mut self,
        cpu: &mut Cpu,
        max_cycles: u64,
    ) -> Result<String, crate::ExecError> {
        self.capture(cpu);
        while cpu.halted().is_none() {
            if cpu.cycles() >= max_cycles {
                return Err(crate::ExecError::CycleLimit { limit: max_cycles });
            }
            cpu.step()?;
            self.capture(cpu);
        }
        Ok(self.finish())
    }

    /// The VCD scope name the recorder was configured with.
    pub fn module(&self) -> &str {
        &self.module
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn record(src: &str) -> String {
        let image = assemble(src).expect("assembles");
        let mut cpu = Cpu::new(&image);
        VcdRecorder::new("m0", 2_000)
            .record_run(&mut cpu, 1_000_000)
            .expect("runs")
    }

    #[test]
    fn header_declares_all_signals() {
        let vcd = record("movs r0, #1\nbkpt #0");
        assert!(vcd.contains("$timescale 1ps $end"));
        for name in [
            "r0",
            "r7",
            "sp",
            "lr",
            "pc",
            "fetch_strobe",
            "data_write_strobe",
        ] {
            assert!(vcd.contains(name), "missing signal {name}");
        }
    }

    #[test]
    fn register_changes_are_dumped() {
        let vcd = record("movs r3, #5\nbkpt #0");
        // r3 = 5 must appear as b101 on r3's id code ('!'+3 = '$').
        assert!(vcd.contains("b101 $"), "vcd:\n{vcd}");
    }

    #[test]
    fn store_pulses_the_write_strobe() {
        let vcd = record("ldr r0, =0x20000000\nmovs r1, #9\nstr r1, [r0, #0]\nbkpt #0");
        let write_id = VcdRecorder::id(REG_COUNT + 2);
        assert!(
            vcd.contains(&format!("1{write_id}")),
            "no write strobe in:\n{vcd}"
        );
    }

    #[test]
    fn timestamps_advance_with_cycles() {
        let vcd = record("movs r0, #1\nmovs r1, #2\nbkpt #0");
        // 1 cycle per movs at 2000 ps: expect #2000 and #4000 markers.
        assert!(vcd.contains("#2000"));
        assert!(vcd.contains("#4000"));
    }

    #[test]
    fn changes_only_encoding() {
        let vcd = record("movs r0, #1\nnop\nnop\nbkpt #0");
        // r0 is written once; its value line must appear exactly once after
        // the initial dump.
        let count = vcd.matches("b1 !").count();
        assert_eq!(count, 1, "vcd:\n{vcd}");
    }
}
