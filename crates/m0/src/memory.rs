//! The embedded system's memory map with access tracing.
//!
//! Following the paper's Fig. 1 architecture, the system has two 64 kB
//! eDRAM-backed memories: a *program* memory at `0x0000_0000` (code, literal
//! pools, constant tables) and a *data* memory at `0x2000_0000`
//! (globals/heap/stack). Every access is counted — those counts drive the
//! application-dependent eDRAM energy model — and write→read intervals on
//! the data memory are tracked to determine the retention time the eDRAM
//! must provide.

/// Size of the program memory, bytes (64 kB, Sec. III-B Step 1).
pub const PROG_SIZE: u32 = 64 * 1024;

/// Base address of the data memory.
pub const DATA_BASE: u32 = 0x2000_0000;

/// Size of the data memory, bytes (64 kB).
pub const DATA_SIZE: u32 = 64 * 1024;

/// Memory-access fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// Access outside both memory regions.
    OutOfBounds {
        /// Faulting address.
        addr: u32,
    },
    /// Address not aligned to the access size.
    Misaligned {
        /// Faulting address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
    },
    /// Store into the (read-only at run time) program region.
    ReadOnlyProgram {
        /// Faulting address.
        addr: u32,
    },
}

impl core::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemoryError::OutOfBounds { addr } => {
                write!(f, "access at {addr:#010x} is out of bounds")
            }
            MemoryError::Misaligned { addr, size } => {
                write!(f, "misaligned {size}-byte access at {addr:#010x}")
            }
            MemoryError::ReadOnlyProgram { addr } => {
                write!(f, "store to read-only program memory at {addr:#010x}")
            }
        }
    }
}

impl std::error::Error for MemoryError {}

/// Per-region access counters and data-retention statistics — the
/// simulator's substitute for the paper's `.vcd` waveform analysis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Instruction fetches from program memory (one per halfword fetched).
    pub instruction_fetches: u64,
    /// Data-side reads from program memory (literal pools, constant tables).
    pub program_reads: u64,
    /// Reads from data memory.
    pub data_reads: u64,
    /// Writes to data memory.
    pub data_writes: u64,
    /// Longest observed interval (in cycles) between a write to a data-memory
    /// word and a subsequent read of it — the retention requirement.
    pub max_write_to_read_cycles: u64,
    /// Number of distinct data-memory words ever written.
    pub words_written: u64,
}

impl AccessStats {
    /// Total data-side accesses to either memory (excludes fetches).
    pub fn total_data_accesses(&self) -> u64 {
        self.program_reads + self.data_reads + self.data_writes
    }

    /// Total program-memory read traffic (fetches + literals).
    pub fn program_accesses(&self) -> u64 {
        self.instruction_fetches + self.program_reads
    }
}

/// The two-region memory system.
#[derive(Clone, Debug)]
pub struct MemorySystem {
    program: Vec<u8>,
    data: Vec<u8>,
    stats: AccessStats,
    /// Cycle of the last write per data-memory word (u64::MAX = never).
    last_write: Vec<u64>,
}

const NEVER: u64 = u64::MAX;

impl MemorySystem {
    /// Creates a memory system with the given program image loaded at 0.
    ///
    /// # Panics
    ///
    /// Panics if the image exceeds [`PROG_SIZE`].
    pub fn new(program_image: &[u8]) -> Self {
        assert!(
            program_image.len() <= PROG_SIZE as usize,
            "program image ({} bytes) exceeds program memory ({PROG_SIZE} bytes)",
            program_image.len()
        );
        let mut program = vec![0u8; PROG_SIZE as usize];
        program[..program_image.len()].copy_from_slice(program_image);
        Self {
            program,
            data: vec![0u8; DATA_SIZE as usize],
            stats: AccessStats::default(),
            last_write: vec![NEVER; (DATA_SIZE / 4) as usize],
        }
    }

    /// The access statistics collected so far.
    pub fn stats(&self) -> &AccessStats {
        &self.stats
    }

    /// Resets access statistics (not memory contents).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
        self.last_write.fill(NEVER);
    }

    fn locate(&self, addr: u32, size: u32) -> Result<Region, MemoryError> {
        if !addr.is_multiple_of(size) {
            return Err(MemoryError::Misaligned { addr, size });
        }
        if addr + size <= PROG_SIZE {
            Ok(Region::Program(addr as usize))
        } else if (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr)
            && addr + size <= DATA_BASE + DATA_SIZE
        {
            Ok(Region::Data((addr - DATA_BASE) as usize))
        } else {
            Err(MemoryError::OutOfBounds { addr })
        }
    }

    /// Fetches one instruction halfword (counted as a fetch, not a read).
    ///
    /// # Errors
    ///
    /// Fails for addresses outside program memory or misaligned by 2.
    pub fn fetch_halfword(&mut self, addr: u32) -> Result<u16, MemoryError> {
        match self.locate(addr, 2)? {
            Region::Program(off) => {
                self.stats.instruction_fetches += 1;
                Ok(u16::from_le_bytes([
                    self.program[off],
                    self.program[off + 1],
                ]))
            }
            Region::Data(_) => Err(MemoryError::OutOfBounds { addr }),
        }
    }

    fn read_bytes(&mut self, addr: u32, size: u32, cycle: u64) -> Result<&[u8], MemoryError> {
        match self.locate(addr, size)? {
            Region::Program(off) => {
                self.stats.program_reads += 1;
                Ok(&self.program[off..off + size as usize])
            }
            Region::Data(off) => {
                self.stats.data_reads += 1;
                let word = off / 4;
                let written = self.last_write[word];
                if written != NEVER && cycle >= written {
                    let interval = cycle - written;
                    if interval > self.stats.max_write_to_read_cycles {
                        self.stats.max_write_to_read_cycles = interval;
                    }
                }
                Ok(&self.data[off..off + size as usize])
            }
        }
    }

    fn write_bytes(&mut self, addr: u32, bytes: &[u8], cycle: u64) -> Result<(), MemoryError> {
        match self.locate(addr, bytes.len() as u32)? {
            Region::Program(_) => Err(MemoryError::ReadOnlyProgram { addr }),
            Region::Data(off) => {
                self.stats.data_writes += 1;
                let word = off / 4;
                if self.last_write[word] == NEVER {
                    self.stats.words_written += 1;
                }
                self.last_write[word] = cycle;
                self.data[off..off + bytes.len()].copy_from_slice(bytes);
                Ok(())
            }
        }
    }

    /// Reads a 32-bit word.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range or misaligned addresses.
    pub fn read_u32(&mut self, addr: u32, cycle: u64) -> Result<u32, MemoryError> {
        let b = self.read_bytes(addr, 4, cycle)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a 16-bit halfword (zero-extension is the caller's business).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range or misaligned addresses.
    pub fn read_u16(&mut self, addr: u32, cycle: u64) -> Result<u16, MemoryError> {
        let b = self.read_bytes(addr, 2, cycle)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Fails for out-of-range addresses.
    pub fn read_u8(&mut self, addr: u32, cycle: u64) -> Result<u8, MemoryError> {
        Ok(self.read_bytes(addr, 1, cycle)?[0])
    }

    /// Writes a 32-bit word (data memory only).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range, misaligned, or program-region addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32, cycle: u64) -> Result<(), MemoryError> {
        self.write_bytes(addr, &value.to_le_bytes(), cycle)
    }

    /// Writes a 16-bit halfword (data memory only).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range, misaligned, or program-region addresses.
    pub fn write_u16(&mut self, addr: u32, value: u16, cycle: u64) -> Result<(), MemoryError> {
        self.write_bytes(addr, &value.to_le_bytes(), cycle)
    }

    /// Writes one byte (data memory only).
    ///
    /// # Errors
    ///
    /// Fails for out-of-range or program-region addresses.
    pub fn write_u8(&mut self, addr: u32, value: u8, cycle: u64) -> Result<(), MemoryError> {
        self.write_bytes(addr, &[value], cycle)
    }

    /// Untracked debug read of a data-memory word (for test assertions).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside data memory or misaligned.
    pub fn peek_data_u32(&self, addr: u32) -> u32 {
        assert!(addr.is_multiple_of(4), "peek address must be word-aligned");
        assert!(
            (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr),
            "peek address {addr:#010x} outside data memory"
        );
        let off = (addr - DATA_BASE) as usize;
        u32::from_le_bytes([
            self.data[off],
            self.data[off + 1],
            self.data[off + 2],
            self.data[off + 3],
        ])
    }

    /// Untracked debug write of a data-memory word (for test setup).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside data memory or misaligned.
    pub fn poke_data_u32(&mut self, addr: u32, value: u32) {
        assert!(addr.is_multiple_of(4), "poke address must be word-aligned");
        assert!(
            (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&addr),
            "poke address {addr:#010x} outside data memory"
        );
        let off = (addr - DATA_BASE) as usize;
        self.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }
}

enum Region {
    Program(usize),
    Data(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_image_is_loaded_and_fetchable() {
        let mut m = MemorySystem::new(&[0x34, 0x12, 0x78, 0x56]);
        assert_eq!(m.fetch_halfword(0).expect("fetch should work"), 0x1234);
        assert_eq!(m.fetch_halfword(2).expect("fetch should work"), 0x5678);
        assert_eq!(m.stats().instruction_fetches, 2);
    }

    #[test]
    fn data_round_trip_and_counting() {
        let mut m = MemorySystem::new(&[]);
        m.write_u32(DATA_BASE + 8, 0xDEADBEEF, 10)
            .expect("write should work");
        assert_eq!(
            m.read_u32(DATA_BASE + 8, 20).expect("read should work"),
            0xDEADBEEF
        );
        assert_eq!(m.stats().data_writes, 1);
        assert_eq!(m.stats().data_reads, 1);
        assert_eq!(m.stats().max_write_to_read_cycles, 10);
        assert_eq!(m.stats().words_written, 1);
    }

    #[test]
    fn retention_tracks_longest_interval() {
        let mut m = MemorySystem::new(&[]);
        m.write_u32(DATA_BASE, 1, 0).expect("write");
        let _ = m.read_u32(DATA_BASE, 5).expect("read");
        m.write_u32(DATA_BASE + 4, 2, 10).expect("write");
        let _ = m.read_u32(DATA_BASE + 4, 1_000_010).expect("read");
        assert_eq!(m.stats().max_write_to_read_cycles, 1_000_000);
    }

    #[test]
    fn subword_access() {
        let mut m = MemorySystem::new(&[]);
        m.write_u8(DATA_BASE + 3, 0xAA, 0).expect("byte write");
        m.write_u16(DATA_BASE + 0, 0x1122, 0).expect("half write");
        assert_eq!(m.read_u8(DATA_BASE + 3, 1).expect("byte read"), 0xAA);
        assert_eq!(m.read_u16(DATA_BASE, 1).expect("half read"), 0x1122);
        assert_eq!(m.read_u32(DATA_BASE, 1).expect("word read"), 0xAA00_1122);
    }

    #[test]
    fn faults() {
        let mut m = MemorySystem::new(&[0; 4]);
        assert_eq!(
            m.read_u32(DATA_BASE + 2, 0),
            Err(MemoryError::Misaligned {
                addr: DATA_BASE + 2,
                size: 4
            })
        );
        assert_eq!(
            m.read_u32(0x1000_0000, 0),
            Err(MemoryError::OutOfBounds { addr: 0x1000_0000 })
        );
        assert_eq!(
            m.write_u32(0, 1, 0),
            Err(MemoryError::ReadOnlyProgram { addr: 0 })
        );
        // Reading program memory as data is allowed (literal pools).
        assert!(m.read_u32(0, 0).is_ok());
        assert_eq!(m.stats().program_reads, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut m = MemorySystem::new(&[]);
        m.write_u32(DATA_BASE, 7, 0).expect("write");
        m.reset_stats();
        assert_eq!(m.stats().data_writes, 0);
        assert_eq!(m.peek_data_u32(DATA_BASE), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds program memory")]
    fn oversized_image_panics() {
        let _ = MemorySystem::new(&vec![0u8; (PROG_SIZE + 1) as usize]);
    }
}
