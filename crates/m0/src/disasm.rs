//! Disassembly: `Display` for [`Instruction`] in the assembler's own syntax.
//!
//! The printed form round-trips through [`crate::asm`] for all
//! label-free instructions, which the test suite exploits to fuzz the
//! assembler/encoder/decoder triangle.

use crate::inst::{DpOp, Instruction, Reg};
use core::fmt;

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            LslImm { rd, rm, imm5 } => {
                if imm5 == 0 {
                    write!(f, "movs {rd}, {rm}")
                } else {
                    write!(f, "lsls {rd}, {rm}, #{imm5}")
                }
            }
            LsrImm { rd, rm, imm5 } => write!(f, "lsrs {rd}, {rm}, #{imm5}"),
            AsrImm { rd, rm, imm5 } => write!(f, "asrs {rd}, {rm}, #{imm5}"),
            AddReg { rd, rn, rm } => write!(f, "adds {rd}, {rn}, {rm}"),
            SubReg { rd, rn, rm } => write!(f, "subs {rd}, {rn}, {rm}"),
            AddImm3 { rd, rn, imm3 } => write!(f, "adds {rd}, {rn}, #{imm3}"),
            SubImm3 { rd, rn, imm3 } => write!(f, "subs {rd}, {rn}, #{imm3}"),
            MovImm { rd, imm8 } => write!(f, "movs {rd}, #{imm8}"),
            CmpImm { rn, imm8 } => write!(f, "cmp {rn}, #{imm8}"),
            AddImm8 { rdn, imm8 } => write!(f, "adds {rdn}, #{imm8}"),
            SubImm8 { rdn, imm8 } => write!(f, "subs {rdn}, #{imm8}"),
            DataProc { op, rdn, rm } => {
                let mnemonic = match op {
                    DpOp::And => "ands",
                    DpOp::Eor => "eors",
                    DpOp::Lsl => "lsls",
                    DpOp::Lsr => "lsrs",
                    DpOp::Asr => "asrs",
                    DpOp::Adc => "adcs",
                    DpOp::Sbc => "sbcs",
                    DpOp::Ror => "rors",
                    DpOp::Tst => "tst",
                    DpOp::Rsb => "negs",
                    DpOp::Cmp => "cmp",
                    DpOp::Cmn => "cmn",
                    DpOp::Orr => "orrs",
                    DpOp::Mul => "muls",
                    DpOp::Bic => "bics",
                    DpOp::Mvn => "mvns",
                };
                write!(f, "{mnemonic} {rdn}, {rm}")
            }
            AddHi { rdn, rm } => write!(f, "add {rdn}, {rm}"),
            CmpHi { rn, rm } => write!(f, "cmp {rn}, {rm}"),
            MovHi { rd, rm } => write!(f, "mov {rd}, {rm}"),
            Bx { rm } => write!(f, "bx {rm}"),
            Blx { rm } => write!(f, "blx {rm}"),
            LdrLit { rt, imm8 } => write!(f, "ldr {rt}, [pc, #{}]", u32::from(imm8) * 4),
            LdrImm { rt, rn, imm5 } => write!(f, "ldr {rt}, [{rn}, #{}]", u32::from(imm5) * 4),
            StrImm { rt, rn, imm5 } => write!(f, "str {rt}, [{rn}, #{}]", u32::from(imm5) * 4),
            LdrbImm { rt, rn, imm5 } => write!(f, "ldrb {rt}, [{rn}, #{imm5}]"),
            StrbImm { rt, rn, imm5 } => write!(f, "strb {rt}, [{rn}, #{imm5}]"),
            LdrhImm { rt, rn, imm5 } => write!(f, "ldrh {rt}, [{rn}, #{}]", u32::from(imm5) * 2),
            StrhImm { rt, rn, imm5 } => write!(f, "strh {rt}, [{rn}, #{}]", u32::from(imm5) * 2),
            LdrReg { rt, rn, rm } => write!(f, "ldr {rt}, [{rn}, {rm}]"),
            StrReg { rt, rn, rm } => write!(f, "str {rt}, [{rn}, {rm}]"),
            LdrbReg { rt, rn, rm } => write!(f, "ldrb {rt}, [{rn}, {rm}]"),
            StrbReg { rt, rn, rm } => write!(f, "strb {rt}, [{rn}, {rm}]"),
            LdrhReg { rt, rn, rm } => write!(f, "ldrh {rt}, [{rn}, {rm}]"),
            StrhReg { rt, rn, rm } => write!(f, "strh {rt}, [{rn}, {rm}]"),
            LdrsbReg { rt, rn, rm } => write!(f, "ldrsb {rt}, [{rn}, {rm}]"),
            LdrshReg { rt, rn, rm } => write!(f, "ldrsh {rt}, [{rn}, {rm}]"),
            LdrSp { rt, imm8 } => write!(f, "ldr {rt}, [sp, #{}]", u32::from(imm8) * 4),
            StrSp { rt, imm8 } => write!(f, "str {rt}, [sp, #{}]", u32::from(imm8) * 4),
            AddRdSp { rd, imm8 } => write!(f, "add {rd}, sp, #{}", u32::from(imm8) * 4),
            Adr { rd, imm8 } => write!(f, "adr {rd}, pc+{}", u32::from(imm8) * 4),
            AddSp { imm7 } => write!(f, "add sp, #{}", u32::from(imm7) * 4),
            SubSp { imm7 } => write!(f, "sub sp, #{}", u32::from(imm7) * 4),
            Uxtb { rd, rm } => write!(f, "uxtb {rd}, {rm}"),
            Uxth { rd, rm } => write!(f, "uxth {rd}, {rm}"),
            Sxtb { rd, rm } => write!(f, "sxtb {rd}, {rm}"),
            Sxth { rd, rm } => write!(f, "sxth {rd}, {rm}"),
            Rev { rd, rm } => write!(f, "rev {rd}, {rm}"),
            Rev16 { rd, rm } => write!(f, "rev16 {rd}, {rm}"),
            Revsh { rd, rm } => write!(f, "revsh {rd}, {rm}"),
            Push { registers, lr } => write_reglist(f, "push", registers, lr.then_some(Reg::LR)),
            Pop { registers, pc } => write_reglist(f, "pop", registers, pc.then_some(Reg::PC)),
            Ldmia { rn, registers } => write_reglist(f, &format!("ldmia {rn}!,"), registers, None),
            Stmia { rn, registers } => write_reglist(f, &format!("stmia {rn}!,"), registers, None),
            BCond { cond, imm8 } => {
                write!(
                    f,
                    "b{} pc{:+}",
                    cond.mnemonic(),
                    4 + 2 * i32::from(imm8 as i8)
                )
            }
            B { imm11 } => {
                let offset = (((imm11 << 5) as i16) as i32) >> 4;
                write!(f, "b pc{:+}", 4 + offset)
            }
            Bl { offset } => write!(f, "bl pc{:+}", 4 + offset),
            Bkpt { imm8 } => write!(f, "bkpt #{imm8}"),
            Nop => f.write_str("nop"),
        }
    }
}

fn write_reglist(
    f: &mut fmt::Formatter<'_>,
    mnemonic: &str,
    registers: u8,
    extra: Option<Reg>,
) -> fmt::Result {
    write!(f, "{mnemonic} {{")?;
    let mut first = true;
    for r in 0..8u8 {
        if registers & (1 << r) != 0 {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "r{r}")?;
            first = false;
        }
    }
    if let Some(x) = extra {
        if !first {
            f.write_str(", ")?;
        }
        write!(f, "{x}")?;
    }
    f.write_str("}")
}

/// Disassembles a program image into `(address, instruction)` pairs.
///
/// Stops at the first undecodable halfword (usually the start of a literal
/// pool) and returns what it has.
pub fn disassemble(image: &[u8]) -> Vec<(u32, Instruction)> {
    let mut out = Vec::new();
    let mut addr = 0usize;
    while addr + 1 < image.len() {
        let half = u16::from_le_bytes([image[addr], image[addr + 1]]);
        let next = (addr + 3 < image.len())
            .then(|| u16::from_le_bytes([image[addr + 2], image[addr + 3]]));
        match Instruction::decode(half, next) {
            Ok(inst) => {
                let size = inst.size() as usize;
                out.push((addr as u32, inst));
                addr += size;
            }
            Err(_) => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    /// The disassembled text of every non-branch instruction must
    /// re-assemble to the same encoding.
    #[test]
    fn display_round_trips_through_the_assembler() {
        let source = "
            movs r0, #7
            adds r1, r0, #3
            subs r2, r1, r0
            lsls r3, r2, #4
            ands r3, r3, r0
            mvns r4, r3
            muls r4, r4, r0
            uxtb r5, r4
            rev  r6, r5
            add  r7, sp, #16
            sub  sp, #8
            str  r0, [sp, #4]
            ldr  r0, [sp, #4]
            push {r0, r4, lr}
            pop  {r0, r4}
            nop
            bkpt #3
        ";
        let image = assemble(source).expect("assembles");
        let insts = disassemble(&image);
        assert_eq!(insts.len(), 17);
        for (_, inst) in &insts {
            let text = inst.to_string();
            // Branch-family text uses pc-relative notation the assembler
            // doesn't parse; everything else must round-trip.
            if text.starts_with('b') && !text.starts_with("bkpt") && !text.starts_with("bics") {
                continue;
            }
            let re =
                assemble(&text).unwrap_or_else(|e| panic!("`{text}` did not re-assemble: {e}"));
            let original: Vec<u8> = inst
                .encode()
                .halfwords()
                .iter()
                .flat_map(|h| h.to_le_bytes())
                .collect();
            assert_eq!(re, original, "`{text}` changed encoding");
        }
    }

    #[test]
    fn branch_text_is_informative() {
        assert_eq!(
            Instruction::BCond {
                cond: crate::Condition::Ne,
                imm8: 0xFC
            }
            .to_string(),
            "bne pc-4"
        );
        assert_eq!(Instruction::Bl { offset: 100 }.to_string(), "bl pc+104");
    }

    #[test]
    fn disassemble_stops_at_literal_pool() {
        let image = assemble("ldr r0, =0x20000000\nbkpt #0").expect("assembles");
        let insts = disassemble(&image);
        // ldr + bkpt decoded; pool word (0x0000, 0x2000) decodes as two
        // harmless instructions or stops — either way the first two match.
        assert!(insts.len() >= 2);
        assert_eq!(insts[1].1, Instruction::Bkpt { imm8: 0 });
    }

    #[test]
    fn reglist_rendering() {
        let p = Instruction::Push {
            registers: 0b1001_0110,
            lr: true,
        };
        assert_eq!(p.to_string(), "push {r1, r2, r4, r7, lr}");
        let q = Instruction::Pop {
            registers: 0,
            pc: true,
        };
        assert_eq!(q.to_string(), "pop {pc}");
    }
}
