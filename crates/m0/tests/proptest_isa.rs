//! Property tests of the ISA triangle (encode ↔ decode ↔ disassemble) and
//! of architectural semantics against a Rust-side mini-interpreter, driven
//! by the deterministic in-repo PRNG instead of an external framework.

use ppatc_m0::{asm, Condition, Cpu, DpOp, Instruction, Reg};
use ppatc_units::rng::SplitMix64;

/// Any low register.
fn low_reg(rng: &mut SplitMix64) -> Reg {
    Reg(rng.next_below(8) as u8)
}

fn imm8(rng: &mut SplitMix64) -> u8 {
    rng.next_below(256) as u8
}

fn imm5(rng: &mut SplitMix64) -> u8 {
    rng.next_below(32) as u8
}

/// A random valid instruction (no wide/branch forms, which have extra
/// encoding context), covering the same 22 shapes as the proptest version.
fn any_narrow_instruction(rng: &mut SplitMix64) -> Instruction {
    match rng.next_below(22) {
        0 => Instruction::MovImm {
            rd: low_reg(rng),
            imm8: imm8(rng),
        },
        1 => Instruction::CmpImm {
            rn: low_reg(rng),
            imm8: imm8(rng),
        },
        2 => Instruction::AddImm8 {
            rdn: low_reg(rng),
            imm8: imm8(rng),
        },
        3 => Instruction::SubImm8 {
            rdn: low_reg(rng),
            imm8: imm8(rng),
        },
        4 => Instruction::AddImm3 {
            rd: low_reg(rng),
            rn: low_reg(rng),
            imm3: rng.next_below(8) as u8,
        },
        5 => Instruction::AddReg {
            rd: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
        },
        6 => Instruction::SubReg {
            rd: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
        },
        7 => Instruction::LslImm {
            rd: low_reg(rng),
            rm: low_reg(rng),
            imm5: imm5(rng),
        },
        8 => Instruction::LsrImm {
            rd: low_reg(rng),
            rm: low_reg(rng),
            imm5: imm5(rng),
        },
        9 => Instruction::AsrImm {
            rd: low_reg(rng),
            rm: low_reg(rng),
            imm5: imm5(rng),
        },
        10 => Instruction::DataProc {
            op: DpOp::from_bits(rng.next_below(16) as u16),
            rdn: low_reg(rng),
            rm: low_reg(rng),
        },
        11 => Instruction::LdrImm {
            rt: low_reg(rng),
            rn: low_reg(rng),
            imm5: imm5(rng),
        },
        12 => Instruction::StrbImm {
            rt: low_reg(rng),
            rn: low_reg(rng),
            imm5: imm5(rng),
        },
        13 => Instruction::LdrshReg {
            rt: low_reg(rng),
            rn: low_reg(rng),
            rm: low_reg(rng),
        },
        14 => Instruction::StrSp {
            rt: low_reg(rng),
            imm8: imm8(rng),
        },
        15 => Instruction::Push {
            registers: imm8(rng),
            lr: rng.next_below(2) == 1,
        },
        16 => Instruction::Pop {
            registers: imm8(rng),
            pc: rng.next_below(2) == 1,
        },
        17 => Instruction::Uxtb {
            rd: low_reg(rng),
            rm: low_reg(rng),
        },
        18 => Instruction::Rev {
            rd: low_reg(rng),
            rm: low_reg(rng),
        },
        19 => Instruction::Bkpt { imm8: imm8(rng) },
        20 => Instruction::BCond {
            cond: Condition::from_bits(rng.next_below(14) as u16).expect("valid condition"),
            imm8: imm8(rng),
        },
        _ => match rng.next_below(2) {
            0 => Instruction::B {
                imm11: rng.next_below(0x800) as u16,
            },
            _ => Instruction::Nop,
        },
    }
}

#[test]
fn encode_decode_round_trip() {
    let mut rng = SplitMix64::new(0x15A1);
    for case in 0..512 {
        let inst = any_narrow_instruction(&mut rng);
        let enc = inst.encode();
        let halves = enc.halfwords();
        let back = Instruction::decode(halves[0], halves.get(1).copied())
            .expect("generated instructions decode");
        assert_eq!(back, inst, "case {case}");
    }
}

#[test]
fn bl_offsets_round_trip() {
    let mut rng = SplitMix64::new(0x15A2);
    for case in 0..512 {
        let offset = -0x0080_0000i32 + rng.next_below((0x007F_FFFEi64 + 0x0080_0000) as u64) as i32;
        let even = offset & !1;
        let inst = Instruction::Bl { offset: even };
        let enc = inst.encode();
        let halves = enc.halfwords();
        let back = Instruction::decode(halves[0], halves.get(1).copied()).expect("BL decodes");
        assert_eq!(back, inst, "case {case}: offset {even:#x}");
    }
}

/// Straight-line ALU programs match a Rust-side register machine.
#[test]
fn alu_semantics_match_reference() {
    let mut rng = SplitMix64::new(0x15A3);
    for case in 0..128 {
        let seed = rng.next_u32();
        let op_count = 1 + rng.next_below(39) as usize;
        let mut asm_text = format!(
            "ldr r0, ={seed}\nldr r1, ={}\nldr r2, ={}\nldr r3, ={}\n",
            seed.wrapping_mul(3),
            seed.rotate_left(7),
            !seed
        );
        let mut regs: [u32; 4] = [seed, seed.wrapping_mul(3), seed.rotate_left(7), !seed];
        for _ in 0..op_count {
            let op = rng.next_below(6);
            let rd = rng.next_below(4) as usize;
            let rm = rng.next_below(4) as usize;
            let imm = rng.next_below(32);
            match op {
                0 => {
                    asm_text.push_str(&format!("adds r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_add(regs[rm]);
                }
                1 => {
                    asm_text.push_str(&format!("subs r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_sub(regs[rm]);
                }
                2 => {
                    asm_text.push_str(&format!("eors r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] ^= regs[rm];
                }
                3 => {
                    asm_text.push_str(&format!("ands r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] &= regs[rm];
                }
                4 => {
                    asm_text.push_str(&format!("lsls r{rd}, r{rm}, #{imm}\n"));
                    regs[rd] = regs[rm] << imm;
                }
                _ => {
                    asm_text.push_str(&format!("muls r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_mul(regs[rm]);
                }
            }
        }
        asm_text.push_str("bkpt #0\n");
        let image = asm::assemble(&asm_text).expect("fuzz program assembles");
        let mut cpu = Cpu::new(&image);
        cpu.run(1_000_000).expect("fuzz program halts");
        for (i, &expected) in regs.iter().enumerate() {
            assert_eq!(
                cpu.reg(i as u8),
                expected,
                "case {case}, r{i} after:\n{asm_text}"
            );
        }
    }
}

/// Conditional branches agree with Rust comparisons for random operand
/// pairs, across signed and unsigned predicates.
#[test]
fn branch_predicates_match_rust() {
    let mut rng = SplitMix64::new(0x15A4);
    for _ in 0..64 {
        let a = rng.next_u32();
        let b = if rng.next_below(8) == 0 {
            a
        } else {
            rng.next_u32()
        };
        let cases: [(&str, bool); 6] = [
            ("beq", a == b),
            ("bne", a != b),
            ("bhs", a >= b),
            ("blo", a < b),
            ("bge", (a as i32) >= (b as i32)),
            ("blt", (a as i32) < (b as i32)),
        ];
        for (branch, expected) in cases {
            let text = format!(
                "ldr r0, ={a}\nldr r1, ={b}\ncmp r0, r1\n{branch} yes\nmovs r2, #0\nb done\nyes: movs r2, #1\ndone: bkpt #0\n"
            );
            let image = asm::assemble(&text).expect("predicate program assembles");
            let mut cpu = Cpu::new(&image);
            cpu.run(10_000).expect("predicate program halts");
            assert_eq!(cpu.reg(2) == 1, expected, "{branch} with {a:#x}, {b:#x}");
        }
    }
}

/// The memory system never loses data under random word traffic, and
/// counts every access.
#[test]
fn random_word_traffic_is_exact() {
    use ppatc_m0::{MemorySystem, DATA_BASE};
    let mut rng = SplitMix64::new(0x15A5);
    for _ in 0..64 {
        let n_writes = 1 + rng.next_below(63) as usize;
        let writes: Vec<(u32, u32)> = (0..n_writes)
            .map(|_| (rng.next_below(16384) as u32, rng.next_u32()))
            .collect();
        let mut mem = MemorySystem::new(&[]);
        let mut model = std::collections::HashMap::new();
        for (k, &(word, value)) in writes.iter().enumerate() {
            mem.write_u32(DATA_BASE + word * 4, value, k as u64)
                .expect("in range");
            model.insert(word, value);
        }
        for (&word, &value) in &model {
            assert_eq!(
                mem.read_u32(DATA_BASE + word * 4, 1_000_000)
                    .expect("in range"),
                value
            );
        }
        assert_eq!(mem.stats().data_writes, writes.len() as u64);
        assert_eq!(mem.stats().data_reads, model.len() as u64);
        assert_eq!(mem.stats().words_written, model.len() as u64);
    }
}
