//! Property tests of the ISA triangle (encode ↔ decode ↔ disassemble) and
//! of architectural semantics against a Rust-side mini-interpreter.

use ppatc_m0::{asm, Condition, Cpu, DpOp, Instruction, Reg};
use proptest::prelude::*;

/// Strategy: any low register.
fn low_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg)
}

/// Strategy: a random valid instruction (no wide/branch forms, which have
/// extra encoding context).
fn any_narrow_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (low_reg(), 0u8..=255).prop_map(|(rd, imm8)| Instruction::MovImm { rd, imm8 }),
        (low_reg(), 0u8..=255).prop_map(|(rn, imm8)| Instruction::CmpImm { rn, imm8 }),
        (low_reg(), 0u8..=255).prop_map(|(rdn, imm8)| Instruction::AddImm8 { rdn, imm8 }),
        (low_reg(), 0u8..=255).prop_map(|(rdn, imm8)| Instruction::SubImm8 { rdn, imm8 }),
        (low_reg(), low_reg(), 0u8..=7)
            .prop_map(|(rd, rn, imm3)| Instruction::AddImm3 { rd, rn, imm3 }),
        (low_reg(), low_reg(), low_reg())
            .prop_map(|(rd, rn, rm)| Instruction::AddReg { rd, rn, rm }),
        (low_reg(), low_reg(), low_reg())
            .prop_map(|(rd, rn, rm)| Instruction::SubReg { rd, rn, rm }),
        (low_reg(), low_reg(), 0u8..=31)
            .prop_map(|(rd, rm, imm5)| Instruction::LslImm { rd, rm, imm5 }),
        (low_reg(), low_reg(), 0u8..=31)
            .prop_map(|(rd, rm, imm5)| Instruction::LsrImm { rd, rm, imm5 }),
        (low_reg(), low_reg(), 0u8..=31)
            .prop_map(|(rd, rm, imm5)| Instruction::AsrImm { rd, rm, imm5 }),
        (0u16..16, low_reg(), low_reg()).prop_map(|(op, rdn, rm)| Instruction::DataProc {
            op: DpOp::from_bits(op),
            rdn,
            rm
        }),
        (low_reg(), low_reg(), 0u8..=31)
            .prop_map(|(rt, rn, imm5)| Instruction::LdrImm { rt, rn, imm5 }),
        (low_reg(), low_reg(), 0u8..=31)
            .prop_map(|(rt, rn, imm5)| Instruction::StrbImm { rt, rn, imm5 }),
        (low_reg(), low_reg(), low_reg())
            .prop_map(|(rt, rn, rm)| Instruction::LdrshReg { rt, rn, rm }),
        (low_reg(), 0u8..=255).prop_map(|(rt, imm8)| Instruction::StrSp { rt, imm8 }),
        (any::<u8>(), any::<bool>())
            .prop_map(|(registers, lr)| Instruction::Push { registers, lr }),
        (any::<u8>(), any::<bool>())
            .prop_map(|(registers, pc)| Instruction::Pop { registers, pc }),
        (low_reg(), low_reg()).prop_map(|(rd, rm)| Instruction::Uxtb { rd, rm }),
        (low_reg(), low_reg()).prop_map(|(rd, rm)| Instruction::Rev { rd, rm }),
        (0u8..=255).prop_map(|imm8| Instruction::Bkpt { imm8 }),
        (0u16..14, 0u8..=255).prop_map(|(c, imm8)| Instruction::BCond {
            cond: Condition::from_bits(c).expect("valid condition"),
            imm8
        }),
        (0u16..=0x7FF).prop_map(|imm11| Instruction::B { imm11 }),
        Just(Instruction::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn encode_decode_round_trip(inst in any_narrow_instruction()) {
        let enc = inst.encode();
        let halves = enc.halfwords();
        let back = Instruction::decode(halves[0], halves.get(1).copied())
            .expect("generated instructions decode");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn bl_offsets_round_trip(offset in -0x0080_0000i32..0x007F_FFFE) {
        let even = offset & !1;
        let inst = Instruction::Bl { offset: even };
        let enc = inst.encode();
        let halves = enc.halfwords();
        let back = Instruction::decode(halves[0], halves.get(1).copied())
            .expect("BL decodes");
        prop_assert_eq!(back, inst);
    }

    /// Straight-line ALU programs match a Rust-side register machine.
    #[test]
    fn alu_semantics_match_reference(
        seed in any::<u32>(),
        ops in prop::collection::vec((0u8..6, 0u8..4, 0u8..4, 0u8..=31), 1..40),
    ) {
        let mut asm_text = format!("ldr r0, ={seed}\nldr r1, ={}\nldr r2, ={}\nldr r3, ={}\n",
            seed.wrapping_mul(3), seed.rotate_left(7), !seed);
        let mut regs: [u32; 4] = [
            seed,
            seed.wrapping_mul(3),
            seed.rotate_left(7),
            !seed,
        ];
        for &(op, rd, rm, imm) in &ops {
            let (rd, rm) = (rd as usize, rm as usize);
            match op {
                0 => {
                    asm_text.push_str(&format!("adds r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_add(regs[rm]);
                }
                1 => {
                    asm_text.push_str(&format!("subs r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_sub(regs[rm]);
                }
                2 => {
                    asm_text.push_str(&format!("eors r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] ^= regs[rm];
                }
                3 => {
                    asm_text.push_str(&format!("ands r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] &= regs[rm];
                }
                4 => {
                    asm_text.push_str(&format!("lsls r{rd}, r{rm}, #{imm}\n"));
                    regs[rd] = regs[rm] << imm;
                }
                _ => {
                    asm_text.push_str(&format!("muls r{rd}, r{rd}, r{rm}\n"));
                    regs[rd] = regs[rd].wrapping_mul(regs[rm]);
                }
            }
        }
        asm_text.push_str("bkpt #0\n");
        let image = asm::assemble(&asm_text).expect("fuzz program assembles");
        let mut cpu = Cpu::new(&image);
        cpu.run(1_000_000).expect("fuzz program halts");
        for (i, &expected) in regs.iter().enumerate() {
            prop_assert_eq!(cpu.reg(i as u8), expected, "r{} after:\n{}", i, asm_text);
        }
    }

    /// Conditional branches agree with Rust comparisons for random operand
    /// pairs, across signed and unsigned predicates.
    #[test]
    fn branch_predicates_match_rust(a in any::<u32>(), b in any::<u32>()) {
        let cases: [(&str, bool); 6] = [
            ("beq", a == b),
            ("bne", a != b),
            ("bhs", a >= b),
            ("blo", a < b),
            ("bge", (a as i32) >= (b as i32)),
            ("blt", (a as i32) < (b as i32)),
        ];
        for (branch, expected) in cases {
            let text = format!(
                "ldr r0, ={a}\nldr r1, ={b}\ncmp r0, r1\n{branch} yes\nmovs r2, #0\nb done\nyes: movs r2, #1\ndone: bkpt #0\n"
            );
            let image = asm::assemble(&text).expect("predicate program assembles");
            let mut cpu = Cpu::new(&image);
            cpu.run(10_000).expect("predicate program halts");
            prop_assert_eq!(cpu.reg(2) == 1, expected, "{} with {:#x}, {:#x}", branch, a, b);
        }
    }

    /// The memory system never loses data under random word traffic, and
    /// counts every access.
    #[test]
    fn random_word_traffic_is_exact(
        writes in prop::collection::vec((0u32..16384, any::<u32>()), 1..64),
    ) {
        use ppatc_m0::{MemorySystem, DATA_BASE};
        let mut mem = MemorySystem::new(&[]);
        let mut model = std::collections::HashMap::new();
        for (k, &(word, value)) in writes.iter().enumerate() {
            mem.write_u32(DATA_BASE + word * 4, value, k as u64).expect("in range");
            model.insert(word, value);
        }
        for (&word, &value) in &model {
            prop_assert_eq!(mem.read_u32(DATA_BASE + word * 4, 1_000_000).expect("in range"), value);
        }
        prop_assert_eq!(mem.stats().data_writes, writes.len() as u64);
        prop_assert_eq!(mem.stats().data_reads, model.len() as u64);
        prop_assert_eq!(mem.stats().words_written, model.len() as u64);
    }
}
