//! Die-per-wafer estimation and yield models: from per-wafer embodied carbon
//! to per-*good-die* embodied carbon (the paper's Eq. 5).
//!
//! ```text
//! C_embodied^(good die) = C_embodied^(wafer) / (N_diePerWafer · Yield)
//! ```
//!
//! The gross-die estimator follows the standard closed form used by the
//! paper's die-per-wafer calculator:
//!
//! ```text
//! N = π·d_eff² / (4·S) − π·d_eff / √(2·S)
//! ```
//!
//! where `S` is the die site area including scribe spacing and `d_eff` the
//! wafer diameter minus edge clearance. With the paper's parameters
//! (300 mm wafer, 0.1 mm spacing, 5 mm edge clearance) it reproduces
//! Table II's die counts (299,127 all-Si / 606,238 M3D) to within 0.05%.
//!
//! # Example
//!
//! ```
//! use ppatc_wafer::{DieSpec, WaferSpec, YieldModel};
//! use ppatc_units::{CarbonMass, Length};
//!
//! // The all-Si system die of Table II: 515 µm × 270 µm.
//! let die = DieSpec::new(
//!     Length::from_micrometers(515.0),
//!     Length::from_micrometers(270.0),
//! );
//! let wafer = WaferSpec::paper_default();
//! let n = wafer.dies_per_wafer(&die);
//! assert!((n as f64 - 299_127.0).abs() / 299_127.0 < 0.005);
//!
//! let per_good_die = ppatc_wafer::embodied_per_good_die(
//!     CarbonMass::from_kilograms(837.0),
//!     n,
//!     &YieldModel::Fixed(0.90),
//!     die.area(),
//! );
//! assert!((per_good_die.as_grams() - 3.11).abs() < 0.02);
//! ```

#![warn(missing_docs)]

use ppatc_units::{Area, CarbonMass, Length};

/// Physical dimensions of one die (excluding scribe lanes).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DieSpec {
    width: Length,
    height: Length,
}

impl DieSpec {
    /// Creates a die specification.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive.
    pub fn new(width: Length, height: Length) -> Self {
        assert!(
            width.as_meters() > 0.0 && height.as_meters() > 0.0,
            "die dimensions must be positive"
        );
        Self { width, height }
    }

    /// Creates a square die of the given area.
    ///
    /// # Panics
    ///
    /// Panics if `area` is not positive.
    pub fn square(area: Area) -> Self {
        assert!(area.as_square_meters() > 0.0, "die area must be positive");
        let side = Length::from_meters(area.as_square_meters().sqrt());
        Self::new(side, side)
    }

    /// Die width.
    pub fn width(&self) -> Length {
        self.width
    }

    /// Die height.
    pub fn height(&self) -> Length {
        self.height
    }

    /// Die area.
    pub fn area(&self) -> Area {
        self.width * self.height
    }
}

/// Wafer geometry and singulation parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaferSpec {
    diameter: Length,
    edge_clearance: Length,
    scribe: Length,
}

impl WaferSpec {
    /// The paper's parameters: 300 mm wafer, 0.1 mm horizontal & vertical
    /// spacing, 5 mm edge clearance.
    pub fn paper_default() -> Self {
        Self {
            diameter: Length::from_millimeters(300.0),
            edge_clearance: Length::from_millimeters(5.0),
            scribe: Length::from_millimeters(0.1),
        }
    }

    /// Creates a custom wafer specification.
    ///
    /// # Panics
    ///
    /// Panics if the diameter is not positive, either margin is negative, or
    /// the edge clearance consumes the whole wafer.
    pub fn new(diameter: Length, edge_clearance: Length, scribe: Length) -> Self {
        assert!(diameter.as_meters() > 0.0, "diameter must be positive");
        assert!(
            edge_clearance.as_meters() >= 0.0 && scribe.as_meters() >= 0.0,
            "margins must be non-negative"
        );
        assert!(
            edge_clearance.as_meters() < diameter.as_meters(),
            "edge clearance exceeds the wafer"
        );
        Self {
            diameter,
            edge_clearance,
            scribe,
        }
    }

    /// Wafer diameter.
    pub fn diameter(&self) -> Length {
        self.diameter
    }

    /// Full wafer area (no exclusions) — the `Area` of the embodied-carbon
    /// Eq. 2.
    pub fn area(&self) -> Area {
        Area::of_wafer(self.diameter)
    }

    /// Gross dies per wafer for the given die, by the closed-form estimator.
    ///
    /// Returns 0 if the die site does not fit the usable diameter.
    pub fn dies_per_wafer(&self, die: &DieSpec) -> u64 {
        let d_eff = self.diameter.as_millimeters() - self.edge_clearance.as_millimeters();
        let s = self.scribe.as_millimeters();
        let site = (die.width.as_millimeters() + s) * (die.height.as_millimeters() + s);
        if site <= 0.0 {
            // A zero-area die site fits nowhere (and would divide by zero).
            return 0;
        }
        let gross = core::f64::consts::PI * d_eff * d_eff / (4.0 * site)
            - core::f64::consts::PI * d_eff / (2.0 * site).sqrt();
        if gross.is_finite() && gross > 0.0 {
            gross.floor() as u64
        } else {
            0
        }
    }
}

impl Default for WaferSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Die-yield models.
///
/// The paper demonstrates with fixed yields (90% for the mature all-Si
/// eDRAM, 50% for the novel M3D process) but notes that "designers can
/// choose arbitrary yield models"; the classic defect-density models are
/// provided for that purpose.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum YieldModel {
    /// Area-independent fixed yield in `[0, 1]`.
    Fixed(f64),
    /// Poisson defect model: `Y = exp(−D₀·A)` with `D₀` in defects/cm².
    Poisson {
        /// Defect density, defects per cm².
        d0_per_cm2: f64,
    },
    /// Murphy's model: `Y = ((1 − e^(−D₀·A)) / (D₀·A))²`.
    Murphy {
        /// Defect density, defects per cm².
        d0_per_cm2: f64,
    },
    /// Negative-binomial model: `Y = (1 + D₀·A/α)^(−α)` with clustering
    /// parameter `α`.
    NegativeBinomial {
        /// Defect density, defects per cm².
        d0_per_cm2: f64,
        /// Defect clustering parameter (α → ∞ recovers Poisson).
        alpha: f64,
    },
}

impl YieldModel {
    /// Yield for a die of the given area, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if a fixed yield is outside `[0, 1]`, a defect density is
    /// negative, or `alpha` is not positive.
    pub fn die_yield(&self, area: Area) -> f64 {
        let a_cm2 = area.as_square_centimeters();
        match *self {
            YieldModel::Fixed(y) => {
                assert!((0.0..=1.0).contains(&y), "fixed yield must be in [0, 1]");
                y
            }
            YieldModel::Poisson { d0_per_cm2 } => {
                assert!(d0_per_cm2 >= 0.0, "defect density must be non-negative");
                (-d0_per_cm2 * a_cm2).exp()
            }
            YieldModel::Murphy { d0_per_cm2 } => {
                assert!(d0_per_cm2 >= 0.0, "defect density must be non-negative");
                let x = d0_per_cm2 * a_cm2;
                if x < 1e-12 {
                    1.0
                } else {
                    let f = (1.0 - (-x).exp()) / x;
                    f * f
                }
            }
            YieldModel::NegativeBinomial { d0_per_cm2, alpha } => {
                assert!(d0_per_cm2 >= 0.0, "defect density must be non-negative");
                assert!(alpha > 0.0, "clustering parameter must be positive");
                (1.0 + d0_per_cm2 * a_cm2 / alpha).powf(-alpha)
            }
        }
    }
}

/// Eq. 5: average embodied carbon per *good* die.
///
/// # Panics
///
/// Panics if `dies_per_wafer` is zero or the model yields zero for this area.
pub fn embodied_per_good_die(
    wafer_carbon: CarbonMass,
    dies_per_wafer: u64,
    yield_model: &YieldModel,
    die_area: Area,
) -> CarbonMass {
    assert!(dies_per_wafer > 0, "no dies fit on the wafer");
    let y = yield_model.die_yield(die_area);
    assert!(y > 0.0, "yield must be positive");
    wafer_carbon / (dies_per_wafer as f64 * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppatc_units::approx_eq;

    fn all_si_die() -> DieSpec {
        DieSpec::new(
            Length::from_micrometers(515.0),
            Length::from_micrometers(270.0),
        )
    }

    fn m3d_die() -> DieSpec {
        DieSpec::new(
            Length::from_micrometers(334.0),
            Length::from_micrometers(159.0),
        )
    }

    #[test]
    fn table2_die_counts() {
        let wafer = WaferSpec::paper_default();
        let n_si = wafer.dies_per_wafer(&all_si_die());
        let n_m3d = wafer.dies_per_wafer(&m3d_die());
        assert!(
            approx_eq(n_si as f64, 299_127.0, 0.002),
            "all-Si dies {n_si}"
        );
        assert!(
            approx_eq(n_m3d as f64, 606_238.0, 0.002),
            "M3D dies {n_m3d}"
        );
    }

    #[test]
    fn table2_good_die_carbon() {
        let wafer = WaferSpec::paper_default();
        let si = embodied_per_good_die(
            CarbonMass::from_kilograms(837.0),
            wafer.dies_per_wafer(&all_si_die()),
            &YieldModel::Fixed(0.90),
            all_si_die().area(),
        );
        let m3d = embodied_per_good_die(
            CarbonMass::from_kilograms(1100.0),
            wafer.dies_per_wafer(&m3d_die()),
            &YieldModel::Fixed(0.50),
            m3d_die().area(),
        );
        assert!(
            approx_eq(si.as_grams(), 3.11, 0.005),
            "all-Si {} g",
            si.as_grams()
        );
        assert!(
            approx_eq(m3d.as_grams(), 3.63, 0.005),
            "M3D {} g",
            m3d.as_grams()
        );
        // Sec. III-C: a 1.17× per-good-die increase for M3D.
        assert!(approx_eq(m3d / si, 1.17, 0.01));
    }

    #[test]
    fn sec3c_area_and_good_die_ratios() {
        // Sec. III-C: "the area per die of the all-Si design is 2.72× larger
        // than the M3D design, but [the M3D wafer] produces 1.13× more good
        // dies per wafer". From the published (rounded) die dimensions the
        // area ratio evaluates to 2.62; the paper's 2.72 uses unrounded
        // layout data.
        let wafer = WaferSpec::paper_default();
        let area_ratio = all_si_die().area() / m3d_die().area();
        assert!(
            approx_eq(area_ratio, 2.62, 0.02),
            "area ratio {area_ratio:.3}"
        );
        let good_si = wafer.dies_per_wafer(&all_si_die()) as f64 * 0.90;
        let good_m3d = wafer.dies_per_wafer(&m3d_die()) as f64 * 0.50;
        assert!(
            approx_eq(good_m3d / good_si, 1.13, 0.02),
            "good-die ratio {:.3}",
            good_m3d / good_si
        );
    }

    #[test]
    fn smaller_dies_yield_more() {
        let wafer = WaferSpec::paper_default();
        assert!(wafer.dies_per_wafer(&m3d_die()) > wafer.dies_per_wafer(&all_si_die()));
    }

    #[test]
    fn oversized_die_gives_zero() {
        let wafer = WaferSpec::paper_default();
        let huge = DieSpec::new(
            Length::from_millimeters(400.0),
            Length::from_millimeters(400.0),
        );
        assert_eq!(wafer.dies_per_wafer(&huge), 0);
    }

    #[test]
    fn yield_models_agree_for_small_defect_density() {
        let a = Area::from_square_millimeters(0.139);
        let d0 = 0.1;
        let poisson = YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a);
        let murphy = YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a);
        let nb = YieldModel::NegativeBinomial {
            d0_per_cm2: d0,
            alpha: 2.0,
        }
        .die_yield(a);
        assert!(approx_eq(poisson, murphy, 1e-4));
        assert!(approx_eq(poisson, nb, 1e-4));
        assert!(poisson < 1.0);
    }

    #[test]
    fn murphy_beats_poisson_for_large_dies() {
        let a = Area::from_square_centimeters(2.0);
        let d0 = 0.5;
        let poisson = YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a);
        let murphy = YieldModel::Murphy { d0_per_cm2: d0 }.die_yield(a);
        assert!(murphy > poisson);
    }

    #[test]
    fn negative_binomial_limits() {
        let a = Area::from_square_centimeters(1.0);
        let d0 = 0.3;
        let poisson = YieldModel::Poisson { d0_per_cm2: d0 }.die_yield(a);
        let nb_large_alpha = YieldModel::NegativeBinomial {
            d0_per_cm2: d0,
            alpha: 1e6,
        }
        .die_yield(a);
        assert!(approx_eq(poisson, nb_large_alpha, 1e-4));
        // Small alpha (clustered defects) improves yield.
        let nb_clustered = YieldModel::NegativeBinomial {
            d0_per_cm2: d0,
            alpha: 0.5,
        }
        .die_yield(a);
        assert!(nb_clustered > poisson);
    }

    #[test]
    fn square_die_has_requested_area() {
        let die = DieSpec::square(Area::from_square_millimeters(4.0));
        assert!(approx_eq(die.area().as_square_millimeters(), 4.0, 1e-12));
        assert!(approx_eq(die.width().as_millimeters(), 2.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "no dies fit")]
    fn zero_dies_panics_in_eq5() {
        let _ = embodied_per_good_die(
            CarbonMass::from_kilograms(837.0),
            0,
            &YieldModel::Fixed(0.9),
            Area::from_square_millimeters(1.0),
        );
    }

    #[test]
    #[should_panic(expected = "fixed yield must be in [0, 1]")]
    fn invalid_fixed_yield_panics() {
        let _ = YieldModel::Fixed(1.5).die_yield(Area::from_square_millimeters(1.0));
    }
}
