//! Energy, power, and energy-per-area.

use crate::geometry::Area;
use crate::time::{Frequency, Time};

quantity! {
    /// An amount of energy. Canonical unit: joules.
    ///
    /// Fabrication energies are quoted in kWh per wafer; circuit energies in
    /// picojoules per cycle. Both views are provided.
    ///
    /// ```
    /// use ppatc_units::Energy;
    /// let e = Energy::from_kilowatt_hours(436.0);
    /// assert!((e.as_joules() - 1.5696e9).abs() < 1e3);
    /// ```
    Energy, base = "joules", symbol = "J"
}

impl Energy {
    /// Creates an energy from joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self::new(j)
    }

    /// Creates an energy from kilowatt-hours.
    #[inline]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Self::new(kwh * 3.6e6)
    }

    /// Creates an energy from picojoules.
    #[inline]
    pub fn from_picojoules(pj: f64) -> Self {
        Self::new(pj * 1e-12)
    }

    /// Creates an energy from femtojoules.
    #[inline]
    pub fn from_femtojoules(fj: f64) -> Self {
        Self::new(fj * 1e-15)
    }

    /// Returns the energy in joules.
    #[inline]
    pub const fn as_joules(self) -> f64 {
        self.value()
    }

    /// Returns the energy in kilowatt-hours.
    #[inline]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.value() / 3.6e6
    }

    /// Returns the energy in picojoules.
    #[inline]
    pub fn as_picojoules(self) -> f64 {
        self.value() * 1e12
    }

    /// Returns the energy in femtojoules.
    #[inline]
    pub fn as_femtojoules(self) -> f64 {
        self.value() * 1e15
    }

    /// Returns the average power delivering this energy over `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero or negative.
    #[inline]
    pub fn average_power(self, t: Time) -> Power {
        assert!(t.value() > 0.0, "averaging window must be positive");
        Power::new(self.value() / t.value())
    }

    /// Interprets this energy as a per-cycle energy and returns the resulting
    /// power at clock frequency `f` (`E · f`).
    #[inline]
    pub fn per_cycle_power(self, f: Frequency) -> Power {
        Power::new(self.value() * f.value())
    }
}

quantity! {
    /// A power. Canonical unit: watts.
    ///
    /// ```
    /// use ppatc_units::{Power, Time};
    /// let p = Power::from_milliwatts(10.0);
    /// let e = p * Time::from_hours(2.0);
    /// assert!((e.as_kilowatt_hours() - 2.0e-5).abs() < 1e-12);
    /// ```
    Power, base = "watts", symbol = "W"
}

impl Power {
    /// Creates a power from watts.
    #[inline]
    pub const fn from_watts(w: f64) -> Self {
        Self::new(w)
    }

    /// Creates a power from milliwatts.
    #[inline]
    pub fn from_milliwatts(mw: f64) -> Self {
        Self::new(mw * 1e-3)
    }

    /// Creates a power from microwatts.
    #[inline]
    pub fn from_microwatts(uw: f64) -> Self {
        Self::new(uw * 1e-6)
    }

    /// Creates a power from nanowatts.
    #[inline]
    pub fn from_nanowatts(nw: f64) -> Self {
        Self::new(nw * 1e-9)
    }

    /// Returns the power in watts.
    #[inline]
    pub const fn as_watts(self) -> f64 {
        self.value()
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn as_milliwatts(self) -> f64 {
        self.value() * 1e3
    }

    /// Returns the power in microwatts.
    #[inline]
    pub fn as_microwatts(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the energy consumed per clock cycle at frequency `f` (`P / f`).
    ///
    /// # Panics
    ///
    /// Panics if `f` is zero or negative.
    #[inline]
    pub fn energy_per_cycle(self, f: Frequency) -> Energy {
        assert!(f.value() > 0.0, "frequency must be positive");
        Energy::new(self.value() / f.value())
    }
}

quantity! {
    /// An energy surface density (electrical energy per area, "EPA" in the
    /// paper). Canonical unit: joules per square metre.
    ///
    /// ```
    /// use ppatc_units::{Area, EnergyArea};
    /// let epa = EnergyArea::from_kwh_per_cm2(1.0);
    /// let e = epa * Area::from_square_centimeters(2.0);
    /// assert!((e.as_kilowatt_hours() - 2.0).abs() < 1e-12);
    /// ```
    EnergyArea, base = "J/m²", symbol = "J/m²"
}

impl EnergyArea {
    /// Creates an energy density from kWh per cm².
    #[inline]
    pub fn from_kwh_per_cm2(kwh_per_cm2: f64) -> Self {
        Self::new(kwh_per_cm2 * 3.6e6 / 1e-4)
    }

    /// Returns the energy density in kWh per cm².
    #[inline]
    pub fn as_kwh_per_cm2(self) -> f64 {
        self.value() * 1e-4 / 3.6e6
    }
}

quantity_product!(Power, Time => Energy);
quantity_quotient!(Energy, Time => Power);
quantity_quotient!(Energy, Power => Time);
quantity_product!(EnergyArea, Area => Energy);
quantity_quotient!(Energy, Area => EnergyArea);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn kwh_round_trip() {
        let e = Energy::from_kilowatt_hours(699.0);
        assert!(approx_eq(e.as_kilowatt_hours(), 699.0, 1e-12));
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_watts(1000.0) * Time::from_hours(1.0);
        assert!(approx_eq(e.as_kilowatt_hours(), 1.0, 1e-12));
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_kilowatt_hours(1.0) / Time::from_hours(2.0);
        assert!(approx_eq(p.as_watts(), 500.0, 1e-12));
    }

    #[test]
    fn per_cycle_energy_at_500mhz() {
        // Table II: 1.42 pJ/cycle at 500 MHz is 0.71 mW of dynamic power.
        let p = Energy::from_picojoules(1.42).per_cycle_power(Frequency::from_megahertz(500.0));
        assert!(approx_eq(p.as_milliwatts(), 0.71, 1e-12));
        let e = p.energy_per_cycle(Frequency::from_megahertz(500.0));
        assert!(approx_eq(e.as_picojoules(), 1.42, 1e-12));
    }

    #[test]
    fn energy_area_integrates_over_area() {
        let epa = EnergyArea::from_kwh_per_cm2(0.5);
        let wafer = Area::from_square_centimeters(706.86);
        assert!(approx_eq((epa * wafer).as_kilowatt_hours(), 353.43, 1e-9));
    }

    #[test]
    fn sum_of_energies() {
        let total: Energy = (1..=3).map(|i| Energy::from_joules(i as f64)).sum();
        assert!(approx_eq(total.as_joules(), 6.0, 1e-12));
    }
}
