//! A small, dependency-free, deterministic pseudo-random number generator.
//!
//! The workspace deliberately avoids external randomness crates: every
//! Monte-Carlo sweep, property test, and fault-injection run must be exactly
//! reproducible from a seed, on every platform, forever. [`SplitMix64`]
//! (Steele, Lea & Flood, OOPSLA 2014) is tiny, passes BigCrush when used as
//! a 64-bit generator, and is the standard seeding primitive for larger
//! generators — more than enough statistical quality for the sampling and
//! testing done here.

/// The Weyl-sequence increment of SplitMix64 (the golden ratio in 64-bit
/// fixed point).
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// The SplitMix64 output permutation: a bijective avalanche mix of the
/// state.
const fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic 64-bit PRNG with a single `u64` of state.
///
/// ```
/// use ppatc_units::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// A counter-indexed sub-stream: a *pure function* of `(seed, index)`.
    ///
    /// The returned generator is seeded with the `index`-th output of the
    /// SplitMix64 sequence seeded with `seed`, so distinct indices are
    /// guaranteed distinct states (the output permutation is a bijection)
    /// and consecutive indices are fully decorrelated. This is the standard
    /// SplitMix64 "seed other generators" discipline, used to make Monte-
    /// Carlo sample *i* independent of how many samples surround it and of
    /// the order in which parallel workers draw them.
    ///
    /// ```
    /// use ppatc_units::rng::SplitMix64;
    ///
    /// // Pure in both arguments: no draw history can perturb it.
    /// let a = SplitMix64::stream(7, 1000).next_u64();
    /// let b = SplitMix64::stream(7, 1000).next_u64();
    /// assert_eq!(a, b);
    /// assert_ne!(a, SplitMix64::stream(7, 1001).next_u64());
    /// ```
    pub fn stream(seed: u64, index: u64) -> Self {
        Self::new(mix(
            seed.wrapping_add(GAMMA.wrapping_mul(index.wrapping_add(1)))
        ))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GAMMA);
        mix(self.state)
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform integer in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded generation (Lemire); the tiny modulo bias
        // is irrelevant at the sample counts used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi > lo {
            lo + (hi - lo) * self.next_f64()
        } else {
            lo
        }
    }

    /// Log-uniform `f64` in `[lo, hi)` for positive bounds: a factor of 2
    /// above the geometric mean is as likely as a factor of 2 below.
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi > lo && lo > 0.0 {
            self.uniform(lo.ln(), hi.ln()).exp()
        } else {
            lo
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(SplitMix64::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn stream_is_pure_and_matches_the_seeding_sequence() {
        // stream(seed, i) is exactly the (i+1)-th raw output of the
        // sequence seeded with `seed`, used as a fresh state.
        let mut base = SplitMix64::new(7);
        for i in 0..10 {
            let expected = SplitMix64::new(base.next_u64());
            assert_eq!(SplitMix64::stream(7, i), expected);
        }
        // Pure: independent of any other stream's draw history.
        let mut consumed = SplitMix64::stream(7, 3);
        let _ = consumed.next_u64();
        assert_eq!(
            SplitMix64::stream(7, 4).next_u64(),
            SplitMix64::stream(7, 4).next_u64()
        );
    }

    #[test]
    fn streams_are_distinct_and_uncorrelated_at_adjacent_indices() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..1000u64 {
            assert!(seen.insert(SplitMix64::stream(99, i).next_u64()));
        }
        // First draws of adjacent streams behave like independent uniforms.
        let n = 10_000u64;
        let mut below = 0;
        for i in 0..n {
            if SplitMix64::stream(5, i).next_f64() < 0.5 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-half fraction {frac}");
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = SplitMix64::new(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 5.0);
            assert!((2.0..5.0).contains(&x));
        }
        assert_eq!(rng.uniform(4.0, 4.0), 4.0);
    }

    #[test]
    fn log_uniform_is_symmetric_in_log_space() {
        let mut rng = SplitMix64::new(9);
        let n = 20_000;
        let mut below = 0;
        for _ in 0..n {
            // Geometric mean of (1/3, 3) is 1.0.
            if rng.log_uniform(1.0 / 3.0, 3.0) < 1.0 {
                below += 1;
            }
        }
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "below-geomean fraction {frac}");
    }

    #[test]
    fn next_below_stays_in_bound() {
        let mut rng = SplitMix64::new(11);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..100 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        assert_eq!(rng.next_below(0), 0);
    }
}
