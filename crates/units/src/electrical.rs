//! Electrical quantities used by the device and circuit models.

use crate::energy::Power;
use crate::time::Time;

quantity! {
    /// An electric potential. Canonical unit: volts.
    ///
    /// ```
    /// use ppatc_units::Voltage;
    /// let vdd = Voltage::from_volts(0.7);
    /// assert!((vdd.as_millivolts() - 700.0).abs() < 1e-9);
    /// ```
    Voltage, base = "volts", symbol = "V"
}

impl Voltage {
    /// Creates a voltage from volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Self::new(v)
    }

    /// Creates a voltage from millivolts.
    #[inline]
    pub fn from_millivolts(mv: f64) -> Self {
        Self::new(mv * 1e-3)
    }

    /// Returns the voltage in volts.
    #[inline]
    pub const fn as_volts(self) -> f64 {
        self.value()
    }

    /// Returns the voltage in millivolts.
    #[inline]
    pub fn as_millivolts(self) -> f64 {
        self.value() * 1e3
    }
}

quantity! {
    /// An electric current. Canonical unit: amperes.
    ///
    /// Device currents are usually quoted per micrometre of transistor width
    /// (µA/µm); this type holds the absolute current after multiplying by
    /// width.
    Current, base = "amperes", symbol = "A"
}

impl Current {
    /// Creates a current from amperes.
    #[inline]
    pub const fn from_amperes(a: f64) -> Self {
        Self::new(a)
    }

    /// Creates a current from microamperes.
    #[inline]
    pub fn from_microamperes(ua: f64) -> Self {
        Self::new(ua * 1e-6)
    }

    /// Creates a current from nanoamperes.
    #[inline]
    pub fn from_nanoamperes(na: f64) -> Self {
        Self::new(na * 1e-9)
    }

    /// Returns the current in amperes.
    #[inline]
    pub const fn as_amperes(self) -> f64 {
        self.value()
    }

    /// Returns the current in microamperes.
    #[inline]
    pub fn as_microamperes(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the current in nanoamperes.
    #[inline]
    pub fn as_nanoamperes(self) -> f64 {
        self.value() * 1e9
    }
}

quantity! {
    /// An electric charge. Canonical unit: coulombs.
    Charge, base = "coulombs", symbol = "C"
}

impl Charge {
    /// Creates a charge from coulombs.
    #[inline]
    pub const fn from_coulombs(c: f64) -> Self {
        Self::new(c)
    }

    /// Creates a charge from femtocoulombs.
    #[inline]
    pub fn from_femtocoulombs(fc: f64) -> Self {
        Self::new(fc * 1e-15)
    }

    /// Returns the charge in coulombs.
    #[inline]
    pub const fn as_coulombs(self) -> f64 {
        self.value()
    }

    /// Returns the charge in femtocoulombs.
    #[inline]
    pub fn as_femtocoulombs(self) -> f64 {
        self.value() * 1e15
    }
}

quantity! {
    /// A capacitance. Canonical unit: farads.
    ///
    /// ```
    /// use ppatc_units::{Capacitance, Voltage};
    /// let c = Capacitance::from_femtofarads(1.0);
    /// let q = c * Voltage::from_volts(0.7);
    /// assert!((q.as_femtocoulombs() - 0.7).abs() < 1e-12);
    /// ```
    Capacitance, base = "farads", symbol = "F"
}

impl Capacitance {
    /// Creates a capacitance from farads.
    #[inline]
    pub const fn from_farads(f: f64) -> Self {
        Self::new(f)
    }

    /// Creates a capacitance from femtofarads.
    #[inline]
    pub fn from_femtofarads(ff: f64) -> Self {
        Self::new(ff * 1e-15)
    }

    /// Creates a capacitance from attofarads.
    #[inline]
    pub fn from_attofarads(af: f64) -> Self {
        Self::new(af * 1e-18)
    }

    /// Returns the capacitance in farads.
    #[inline]
    pub const fn as_farads(self) -> f64 {
        self.value()
    }

    /// Returns the capacitance in femtofarads.
    #[inline]
    pub fn as_femtofarads(self) -> f64 {
        self.value() * 1e15
    }

    /// Returns the capacitance in attofarads.
    #[inline]
    pub fn as_attofarads(self) -> f64 {
        self.value() * 1e18
    }
}

quantity! {
    /// An electrical resistance. Canonical unit: ohms.
    Resistance, base = "ohms", symbol = "Ω"
}

impl Resistance {
    /// Creates a resistance from ohms.
    #[inline]
    pub const fn from_ohms(ohms: f64) -> Self {
        Self::new(ohms)
    }

    /// Creates a resistance from kilo-ohms.
    #[inline]
    pub fn from_kilo_ohms(kohms: f64) -> Self {
        Self::new(kohms * 1e3)
    }

    /// Returns the resistance in ohms.
    #[inline]
    pub const fn as_ohms(self) -> f64 {
        self.value()
    }
}

quantity_product!(Capacitance, Voltage => Charge);
quantity_quotient!(Charge, Voltage => Capacitance);
quantity_quotient!(Charge, Capacitance => Voltage);
quantity_product!(Current, Time => Charge);
quantity_quotient!(Charge, Current => Time);
quantity_quotient!(Charge, Time => Current);
quantity_product!(Voltage, Current => Power);
quantity_quotient!(Power, Voltage => Current);
quantity_quotient!(Voltage, Current => Resistance);
quantity_quotient!(Voltage, Resistance => Current);
quantity_product!(Resistance, Capacitance => Time);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn rc_product_is_time() {
        let tau = Resistance::from_kilo_ohms(10.0) * Capacitance::from_femtofarads(2.0);
        assert!(approx_eq(tau.as_picoseconds(), 20.0, 1e-12));
    }

    #[test]
    fn charge_over_current_is_time() {
        let q = Charge::from_femtocoulombs(10.0);
        let i = Current::from_microamperes(1.0);
        assert!(approx_eq((q / i).as_nanoseconds(), 10.0, 1e-12));
    }

    #[test]
    fn static_power_from_leakage() {
        let p = Voltage::from_volts(0.7) * Current::from_nanoamperes(100.0);
        assert!(approx_eq(p.as_watts(), 7e-8, 1e-12));
    }

    #[test]
    fn ohms_law_round_trip() {
        let r = Voltage::from_volts(1.0) / Current::from_microamperes(10.0);
        assert!(approx_eq(r.as_ohms(), 1e5, 1e-12));
        let i = Voltage::from_volts(1.0) / r;
        assert!(approx_eq(i.as_microamperes(), 10.0, 1e-12));
    }
}
