//! Carbon-accounting quantities: CO₂-equivalent mass, carbon intensity,
//! per-area footprints, and the carbon-delay product.

use crate::energy::Energy;
use crate::geometry::Area;
use crate::time::Time;

quantity! {
    /// A mass of CO₂-equivalent emissions. Canonical unit: grams CO₂e.
    ///
    /// ```
    /// use ppatc_units::CarbonMass;
    /// let per_wafer = CarbonMass::from_kilograms(837.0);
    /// assert!((per_wafer.as_grams() - 837_000.0).abs() < 1e-6);
    /// ```
    CarbonMass, base = "grams CO₂e", symbol = "gCO₂e"
}

impl CarbonMass {
    /// Creates a carbon mass from grams CO₂e.
    #[inline]
    pub const fn from_grams(g: f64) -> Self {
        Self::new(g)
    }

    /// Creates a carbon mass from kilograms CO₂e.
    #[inline]
    pub fn from_kilograms(kg: f64) -> Self {
        Self::new(kg * 1e3)
    }

    /// Creates a carbon mass from (metric) tonnes CO₂e.
    #[inline]
    pub fn from_tonnes(t: f64) -> Self {
        Self::new(t * 1e6)
    }

    /// Returns the carbon mass in grams CO₂e.
    #[inline]
    pub const fn as_grams(self) -> f64 {
        self.value()
    }

    /// Returns the carbon mass in kilograms CO₂e.
    #[inline]
    pub fn as_kilograms(self) -> f64 {
        self.value() / 1e3
    }

    /// Returns the carbon mass in tonnes CO₂e.
    #[inline]
    pub fn as_tonnes(self) -> f64 {
        self.value() / 1e6
    }
}

quantity! {
    /// Carbon intensity of electrical energy. Canonical unit: grams CO₂e per
    /// joule.
    ///
    /// Grid intensities are quoted in gCO₂e/kWh (the paper's Fig. 2c uses
    /// U.S. 380, coal 820, solar 48, and Taiwan 563 gCO₂e/kWh).
    ///
    /// ```
    /// use ppatc_units::{CarbonIntensity, Energy};
    /// let us = CarbonIntensity::from_g_per_kwh(380.0);
    /// let c = us * Energy::from_kilowatt_hours(699.0);
    /// assert!((c.as_kilograms() - 265.62).abs() < 1e-9);
    /// ```
    CarbonIntensity, base = "gCO₂e/J", symbol = "gCO₂e/J"
}

impl CarbonIntensity {
    /// Creates a carbon intensity from grams CO₂e per kilowatt-hour.
    #[inline]
    pub fn from_g_per_kwh(g_per_kwh: f64) -> Self {
        Self::new(g_per_kwh / 3.6e6)
    }

    /// Returns the carbon intensity in grams CO₂e per kilowatt-hour.
    #[inline]
    pub fn as_g_per_kwh(self) -> f64 {
        self.value() * 3.6e6
    }
}

quantity! {
    /// A carbon surface density (gCO₂e per unit area), used for the MPA and
    /// GPA terms of the embodied-carbon model (Eq. 2).
    ///
    /// ```
    /// use ppatc_units::{Area, CarbonArea, Length};
    /// let mpa = CarbonArea::from_g_per_cm2(500.0);
    /// let wafer = Area::of_wafer(Length::from_millimeters(300.0));
    /// assert!(((mpa * wafer).as_grams() - 3.534e5).abs() < 100.0);
    /// ```
    CarbonArea, base = "gCO₂e/m²", symbol = "gCO₂e/m²"
}

impl CarbonArea {
    /// Creates a carbon density from grams CO₂e per square centimetre.
    #[inline]
    pub fn from_g_per_cm2(g_per_cm2: f64) -> Self {
        Self::new(g_per_cm2 / 1e-4)
    }

    /// Creates a carbon density from kilograms CO₂e per square centimetre.
    #[inline]
    pub fn from_kg_per_cm2(kg_per_cm2: f64) -> Self {
        Self::new(kg_per_cm2 * 1e3 / 1e-4)
    }

    /// Returns the carbon density in grams CO₂e per square centimetre.
    #[inline]
    pub fn as_g_per_cm2(self) -> f64 {
        self.value() * 1e-4
    }
}

quantity! {
    /// Carbon emitted per unit mass-specific energy·area — internal helper
    /// dimension for (CI_fab · EPA) terms before integrating over area.
    /// Canonical unit: gCO₂e/m² (same dimension as [`CarbonArea`] but kept
    /// distinct to mark its origin in fabrication electricity).
    CarbonPerEnergyArea, base = "gCO₂e/m²", symbol = "gCO₂e/m²"
}

impl CarbonPerEnergyArea {
    /// Reinterprets the fabrication-electricity carbon density as a plain
    /// carbon surface density so it can be summed with MPA and GPA.
    #[inline]
    pub fn to_carbon_area(self) -> CarbonArea {
        CarbonArea::new(self.value())
    }
}

quantity! {
    /// A total-carbon-delay product (tCDP): carbon mass × execution time.
    ///
    /// Canonical unit: gCO₂e·s, which is the same as the paper's
    /// gCO₂e/Hz. Lower is more carbon-efficient.
    ///
    /// ```
    /// use ppatc_units::{CarbonMass, Time};
    /// let tcdp = CarbonMass::from_grams(8.5) * Time::from_seconds(0.04);
    /// assert!((tcdp.as_grams_per_hertz() - 0.34).abs() < 1e-12);
    /// ```
    CarbonDelay, base = "gCO₂e·s", symbol = "gCO₂e·s"
}

impl CarbonDelay {
    /// Creates a carbon-delay product from gCO₂e·s (equivalently gCO₂e/Hz).
    #[inline]
    pub const fn from_gram_seconds(gs: f64) -> Self {
        Self::new(gs)
    }

    /// Returns the carbon-delay product in gCO₂e/Hz (the paper's unit).
    #[inline]
    pub const fn as_grams_per_hertz(self) -> f64 {
        self.value()
    }
}

quantity_product!(CarbonIntensity, Energy => CarbonMass);
quantity_quotient!(CarbonMass, Energy => CarbonIntensity);
quantity_product!(CarbonArea, Area => CarbonMass);
quantity_quotient!(CarbonMass, Area => CarbonArea);
quantity_product!(CarbonMass, Time => CarbonDelay);
quantity_quotient!(CarbonDelay, Time => CarbonMass);
quantity_quotient!(CarbonDelay, CarbonMass => Time);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::geometry::Length;

    #[test]
    fn grid_intensity_round_trip() {
        for g in [380.0, 820.0, 48.0, 563.0] {
            let ci = CarbonIntensity::from_g_per_kwh(g);
            assert!(approx_eq(ci.as_g_per_kwh(), g, 1e-12));
        }
    }

    #[test]
    fn embodied_kwh_to_carbon() {
        // CI_fab · EPA for the all-Si process on the U.S. grid, with the
        // 1.4× facility overhead: 380 g/kWh × 699 kWh × 1.4 ≈ 371.9 kg.
        let ci = CarbonIntensity::from_g_per_kwh(380.0);
        let epa = Energy::from_kilowatt_hours(699.0);
        let c = ci * epa * 1.4;
        assert!(approx_eq(c.as_kilograms(), 371.868, 1e-6));
    }

    #[test]
    fn mpa_times_wafer_area() {
        let mpa = CarbonArea::from_g_per_cm2(500.0);
        let wafer = Area::of_wafer(Length::from_millimeters(300.0));
        assert!(approx_eq((mpa * wafer).as_grams(), 353_429.0, 1e-3));
    }

    #[test]
    fn tcdp_units() {
        // 20,047,348 cycles at 500 MHz is ~40.1 ms of execution time.
        let exec = Time::from_seconds(20_047_348.0 / 500e6);
        let tc = CarbonMass::from_grams(8.5);
        let tcdp = tc * exec;
        assert!(approx_eq(tcdp.as_grams_per_hertz(), 0.3408, 1e-3));
    }

    #[test]
    fn kg_per_cm2_gpa() {
        let gpa = CarbonArea::from_kg_per_cm2(0.20);
        assert!(approx_eq(gpa.as_g_per_cm2(), 200.0, 1e-12));
    }
}
