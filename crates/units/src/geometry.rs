//! Lengths and areas.

quantity! {
    /// A length. Canonical unit: metres.
    ///
    /// Used for die dimensions (µm–mm), wafer diameters (mm), and device
    /// feature sizes (nm).
    ///
    /// ```
    /// use ppatc_units::Length;
    /// let pitch = Length::from_nanometers(36.0);
    /// assert!((pitch.as_micrometers() - 0.036).abs() < 1e-12);
    /// ```
    Length, base = "metres", symbol = "m"
}

impl Length {
    /// Creates a length from metres.
    #[inline]
    pub const fn from_meters(m: f64) -> Self {
        Self::new(m)
    }

    /// Creates a length from millimetres.
    #[inline]
    pub fn from_millimeters(mm: f64) -> Self {
        Self::new(mm * 1e-3)
    }

    /// Creates a length from micrometres.
    #[inline]
    pub fn from_micrometers(um: f64) -> Self {
        Self::new(um * 1e-6)
    }

    /// Creates a length from nanometres.
    #[inline]
    pub fn from_nanometers(nm: f64) -> Self {
        Self::new(nm * 1e-9)
    }

    /// Returns the length in metres.
    #[inline]
    pub const fn as_meters(self) -> f64 {
        self.value()
    }

    /// Returns the length in millimetres.
    #[inline]
    pub fn as_millimeters(self) -> f64 {
        self.value() * 1e3
    }

    /// Returns the length in micrometres.
    #[inline]
    pub fn as_micrometers(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the length in nanometres.
    #[inline]
    pub fn as_nanometers(self) -> f64 {
        self.value() * 1e9
    }
}

quantity! {
    /// An area. Canonical unit: square metres.
    ///
    /// ```
    /// use ppatc_units::{Area, Length};
    /// let die = Length::from_micrometers(270.0) * Length::from_micrometers(515.0);
    /// assert!((die.as_square_millimeters() - 0.139).abs() < 5e-4);
    /// ```
    Area, base = "m²", symbol = "m²"
}

impl Area {
    /// Creates an area from square metres.
    #[inline]
    pub const fn from_square_meters(m2: f64) -> Self {
        Self::new(m2)
    }

    /// Creates an area from square centimetres.
    #[inline]
    pub fn from_square_centimeters(cm2: f64) -> Self {
        Self::new(cm2 * 1e-4)
    }

    /// Creates an area from square millimetres.
    #[inline]
    pub fn from_square_millimeters(mm2: f64) -> Self {
        Self::new(mm2 * 1e-6)
    }

    /// Creates an area from square micrometres.
    #[inline]
    pub fn from_square_micrometers(um2: f64) -> Self {
        Self::new(um2 * 1e-12)
    }

    /// Returns the area in square metres.
    #[inline]
    pub const fn as_square_meters(self) -> f64 {
        self.value()
    }

    /// Returns the area in square centimetres.
    #[inline]
    pub fn as_square_centimeters(self) -> f64 {
        self.value() * 1e4
    }

    /// Returns the area in square millimetres.
    #[inline]
    pub fn as_square_millimeters(self) -> f64 {
        self.value() * 1e6
    }

    /// Returns the area in square micrometres.
    #[inline]
    pub fn as_square_micrometers(self) -> f64 {
        self.value() * 1e12
    }

    /// Area of a full circular wafer of the given diameter (no edge
    /// exclusion).
    ///
    /// ```
    /// use ppatc_units::{Area, Length};
    /// let wafer = Area::of_wafer(Length::from_millimeters(300.0));
    /// assert!((wafer.as_square_centimeters() - 706.858).abs() < 1e-2);
    /// ```
    #[inline]
    pub fn of_wafer(diameter: Length) -> Self {
        let r = diameter.value() / 2.0;
        Self::new(core::f64::consts::PI * r * r)
    }
}

quantity! {
    /// A volume. Canonical unit: cubic metres.
    ///
    /// Used for the fab water-footprint extension: ultra-pure-water demand
    /// is a few cubic metres per wafer, tracked per step in litres.
    ///
    /// ```
    /// use ppatc_units::Volume;
    /// let upw = Volume::from_litres(4200.0);
    /// assert!((upw.as_cubic_meters() - 4.2).abs() < 1e-12);
    /// ```
    Volume, base = "m³", symbol = "m³"
}

impl Volume {
    /// Creates a volume from cubic metres.
    #[inline]
    pub const fn from_cubic_meters(m3: f64) -> Self {
        Self::new(m3)
    }

    /// Creates a volume from litres.
    #[inline]
    pub fn from_litres(l: f64) -> Self {
        Self::new(l * 1e-3)
    }

    /// Creates a volume from millilitres.
    #[inline]
    pub fn from_millilitres(ml: f64) -> Self {
        Self::new(ml * 1e-6)
    }

    /// Returns the volume in cubic metres.
    #[inline]
    pub const fn as_cubic_meters(self) -> f64 {
        self.value()
    }

    /// Returns the volume in litres.
    #[inline]
    pub fn as_litres(self) -> f64 {
        self.value() * 1e3
    }

    /// Returns the volume in millilitres.
    #[inline]
    pub fn as_millilitres(self) -> f64 {
        self.value() * 1e6
    }
}

quantity_product!(square Length => Area);
quantity_quotient!(Area, Length => Length);
quantity_product!(Area, Length => Volume);
quantity_quotient!(Volume, Area => Length);
quantity_quotient!(Volume, Length => Area);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn length_conversions_round_trip() {
        let l = Length::from_nanometers(48.0);
        assert!(approx_eq(l.as_nanometers(), 48.0, 1e-12));
        assert!(approx_eq(l.as_micrometers(), 0.048, 1e-12));
    }

    #[test]
    fn length_squared_is_area() {
        let a = Length::from_millimeters(2.0) * Length::from_millimeters(3.0);
        assert!(approx_eq(a.as_square_millimeters(), 6.0, 1e-12));
    }

    #[test]
    fn wafer_area_matches_paper() {
        // 300 mm wafer = 706.86 cm²; MPA of 500 g/cm² gives 3.5e5 g (Sec. II-B).
        let a = Area::of_wafer(Length::from_millimeters(300.0));
        assert!(approx_eq(a.as_square_centimeters() * 500.0, 3.534e5, 1e-3));
    }

    #[test]
    fn area_divided_by_length_is_length() {
        let a = Area::from_square_millimeters(6.0);
        let l = a / Length::from_millimeters(2.0);
        assert!(approx_eq(l.as_millimeters(), 3.0, 1e-12));
    }

    #[test]
    fn volume_conversions_round_trip() {
        let v = Volume::from_litres(2.5);
        assert!(approx_eq(v.as_millilitres(), 2500.0, 1e-9));
        assert!(approx_eq(v.as_cubic_meters(), 2.5e-3, 1e-15));
        assert!(approx_eq(
            Volume::from_millilitres(750.0).as_litres(),
            0.75,
            1e-12
        ));
    }

    #[test]
    fn area_times_length_is_volume() {
        let v = Area::from_square_meters(2.0) * Length::from_millimeters(500.0);
        assert!(approx_eq(v.as_litres(), 1000.0, 1e-9));
        let a = v / Length::from_millimeters(500.0);
        assert!(approx_eq(a.as_square_meters(), 2.0, 1e-12));
        let l = v / Area::from_square_meters(2.0);
        assert!(approx_eq(l.as_millimeters(), 500.0, 1e-9));
    }
}
