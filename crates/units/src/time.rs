//! Time and frequency.

quantity! {
    /// A duration. Canonical unit: seconds.
    ///
    /// System lifetimes in the paper are given in months of calendar time;
    /// [`Time::from_months`] uses the mean Gregorian month (30.44 days), the
    /// convention used when amortizing embodied carbon over a lifetime.
    ///
    /// ```
    /// use ppatc_units::Time;
    /// let life = Time::from_months(24.0);
    /// assert!((life.as_days() - 730.5).abs() < 0.1);
    /// ```
    Time, base = "seconds", symbol = "s"
}

/// Seconds per mean Gregorian month (365.25 days / 12).
const SECONDS_PER_MONTH: f64 = 365.25 / 12.0 * 86_400.0;

impl Time {
    /// Creates a duration from seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Self::new(s)
    }

    /// Creates a duration from nanoseconds.
    #[inline]
    pub fn from_nanoseconds(ns: f64) -> Self {
        Self::new(ns * 1e-9)
    }

    /// Creates a duration from picoseconds.
    #[inline]
    pub fn from_picoseconds(ps: f64) -> Self {
        Self::new(ps * 1e-12)
    }

    /// Creates a duration from microseconds.
    #[inline]
    pub fn from_microseconds(us: f64) -> Self {
        Self::new(us * 1e-6)
    }

    /// Creates a duration from hours.
    #[inline]
    pub fn from_hours(h: f64) -> Self {
        Self::new(h * 3600.0)
    }

    /// Creates a duration from days (24 h).
    #[inline]
    pub fn from_days(d: f64) -> Self {
        Self::new(d * 86_400.0)
    }

    /// Creates a duration from mean Gregorian months (30.44 days).
    #[inline]
    pub fn from_months(months: f64) -> Self {
        Self::new(months * SECONDS_PER_MONTH)
    }

    /// Returns the duration in seconds.
    #[inline]
    pub const fn as_seconds(self) -> f64 {
        self.value()
    }

    /// Returns the duration in nanoseconds.
    #[inline]
    pub fn as_nanoseconds(self) -> f64 {
        self.value() * 1e9
    }

    /// Returns the duration in picoseconds.
    #[inline]
    pub fn as_picoseconds(self) -> f64 {
        self.value() * 1e12
    }

    /// Returns the duration in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.value() / 3600.0
    }

    /// Returns the duration in days.
    #[inline]
    pub fn as_days(self) -> f64 {
        self.value() / 86_400.0
    }

    /// Returns the duration in mean Gregorian months.
    #[inline]
    pub fn as_months(self) -> f64 {
        self.value() / SECONDS_PER_MONTH
    }

    /// Returns the frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative.
    #[inline]
    pub fn to_frequency(self) -> Frequency {
        assert!(self.value() > 0.0, "period must be positive");
        Frequency::new(1.0 / self.value())
    }
}

quantity! {
    /// A frequency. Canonical unit: hertz.
    ///
    /// ```
    /// use ppatc_units::Frequency;
    /// let f = Frequency::from_megahertz(500.0);
    /// assert!((f.period().as_nanoseconds() - 2.0).abs() < 1e-12);
    /// ```
    Frequency, base = "Hz", symbol = "Hz"
}

impl Frequency {
    /// Creates a frequency from hertz.
    #[inline]
    pub const fn from_hertz(hz: f64) -> Self {
        Self::new(hz)
    }

    /// Creates a frequency from megahertz.
    #[inline]
    pub fn from_megahertz(mhz: f64) -> Self {
        Self::new(mhz * 1e6)
    }

    /// Creates a frequency from gigahertz.
    #[inline]
    pub fn from_gigahertz(ghz: f64) -> Self {
        Self::new(ghz * 1e9)
    }

    /// Returns the frequency in hertz.
    #[inline]
    pub const fn as_hertz(self) -> f64 {
        self.value()
    }

    /// Returns the frequency in megahertz.
    #[inline]
    pub fn as_megahertz(self) -> f64 {
        self.value() / 1e6
    }

    /// Returns the frequency in gigahertz.
    #[inline]
    pub fn as_gigahertz(self) -> f64 {
        self.value() / 1e9
    }

    /// Returns the clock period of this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[inline]
    pub fn period(self) -> Time {
        assert!(self.value() > 0.0, "frequency must be positive");
        Time::new(1.0 / self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn month_convention_is_mean_gregorian() {
        let t = Time::from_months(12.0);
        assert!(approx_eq(t.as_days(), 365.25, 1e-12));
    }

    #[test]
    fn period_round_trips() {
        let f = Frequency::from_megahertz(500.0);
        assert!(approx_eq(f.period().to_frequency().as_hertz(), 5e8, 1e-12));
    }

    #[test]
    fn arithmetic_and_ratio() {
        let a = Time::from_hours(2.0);
        let b = Time::from_hours(1.0);
        assert!(approx_eq((a + b).as_hours(), 3.0, 1e-12));
        assert!(approx_eq((a - b).as_hours(), 1.0, 1e-12));
        assert!(approx_eq(a / b, 2.0, 1e-12));
        assert!(approx_eq((a * 3.0).as_hours(), 6.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let _ = Time::zero().to_frequency();
    }

    #[test]
    fn display_includes_symbol() {
        let f = Frequency::from_hertz(5.0);
        assert_eq!(format!("{f:.1}"), "5.0 Hz");
        assert_eq!(format!("{f:?}"), "Frequency(5 Hz)");
    }
}
