//! Strongly-typed physical quantities for carbon-aware hardware modeling.
//!
//! Every quantity in the PPAtC model stack — energy per wafer, carbon
//! intensity of a power grid, die area, clock frequency — is represented by a
//! dedicated newtype over `f64` ([C-NEWTYPE]). This prevents the classic
//! spreadsheet failure mode of multiplying a gCO₂e/kWh number by a pJ number
//! and silently being off by nine orders of magnitude.
//!
//! Each type stores its value in a single canonical SI-flavored base unit
//! (joules, watts, seconds, square metres, grams CO₂e, ...) and offers
//! constructors and accessors for the unit spellings used by the paper
//! (kWh/wafer, pJ/cycle, gCO₂e/kWh, mm², months of lifetime, ...).
//!
//! Dimensional arithmetic is implemented for the products and quotients the
//! models actually need, e.g.:
//!
//! ```
//! use ppatc_units::{Power, Time, CarbonIntensity};
//!
//! let power = Power::from_milliwatts(9.71);
//! let two_hours = Time::from_hours(2.0);
//! let energy = power * two_hours;
//! let grid = CarbonIntensity::from_g_per_kwh(380.0);
//! let carbon = grid * energy;
//! assert!((carbon.as_grams() - 0.00738).abs() < 1e-4);
//! ```
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

#![warn(missing_docs)]

#[macro_use]
mod quantity;
mod carbon;
mod electrical;
mod energy;
mod geometry;
pub mod registry;
pub mod rng;
mod time;

pub use carbon::{CarbonArea, CarbonDelay, CarbonIntensity, CarbonMass, CarbonPerEnergyArea};
pub use electrical::{Capacitance, Charge, Current, Resistance, Voltage};
pub use energy::{Energy, EnergyArea, Power};
pub use geometry::{Area, Length, Volume};
pub use time::{Frequency, Time};

/// Returns `true` when `a` and `b` agree to within relative tolerance `tol`
/// (or absolute tolerance `tol` when both are near zero).
///
/// This is the comparison used throughout the workspace test suites to check
/// model outputs against the paper's published anchors.
///
/// ```
/// assert!(ppatc_units::approx_eq(837.0, 838.0, 0.01));
/// assert!(!ppatc_units::approx_eq(837.0, 1100.0, 0.01));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs());
    if scale < 1e-300 {
        return true;
    }
    (a - b).abs() <= tol * scale.max(1.0e-30)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_handles_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-9));
        assert!(approx_eq(0.0, -0.0, 1e-9));
    }

    #[test]
    fn approx_eq_is_relative() {
        assert!(approx_eq(1.0e6, 1.0e6 * (1.0 + 1e-7), 1e-6));
        assert!(!approx_eq(1.0e6, 1.1e6, 1e-3));
    }
}
