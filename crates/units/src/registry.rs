//! A machine-readable registry of every quantity type in this crate.
//!
//! Static-analysis tooling (notably `ppatc-lint`'s dimensional dataflow
//! pass) needs to know, for each `ppatc-units` newtype, (a) its dimension
//! as a vector of base-dimension exponents, and (b) which constructor and
//! accessor methods cross the typed/`f64` boundary, in which unit spelling,
//! and at what scale relative to the canonical base unit. This module is
//! that table, kept next to the implementations it describes and pinned to
//! them by `tests/registry.rs`, which round-trips every entry through the
//! real constructors and accessors.
//!
//! The six base dimensions are the ones the PPAtC model stack actually
//! uses: energy (J), time (s), length (m), CO₂-equivalent mass (gCO₂e),
//! electric charge (C), and currency (USD). Everything else is a product
//! of these — power is J·s⁻¹, carbon intensity is gCO₂e·J⁻¹, capacitance
//! is C²·J⁻¹, and so on.

/// Exponents over the six base dimensions of the PPAtC stack.
///
/// Two quantities may be added, subtracted, or compared only when their
/// `DimVec`s are equal *and* their scales agree; multiplying or dividing
/// composes `DimVec`s component-wise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct DimVec {
    /// Exponent of energy (base unit: joule).
    pub energy: i8,
    /// Exponent of time (base unit: second).
    pub time: i8,
    /// Exponent of length (base unit: metre).
    pub length: i8,
    /// Exponent of CO₂e mass (base unit: gram CO₂e).
    pub carbon: i8,
    /// Exponent of electric charge (base unit: coulomb).
    pub charge: i8,
    /// Exponent of currency (base unit: US dollar).
    pub currency: i8,
}

impl DimVec {
    /// The dimensionless vector (all exponents zero).
    pub const NONE: Self = Self::of(0, 0, 0, 0, 0, 0);

    /// Builds a dimension vector from its six exponents, in the order
    /// energy, time, length, carbon, charge, currency.
    #[must_use]
    pub const fn of(
        energy: i8,
        time: i8,
        length: i8,
        carbon: i8,
        charge: i8,
        currency: i8,
    ) -> Self {
        Self {
            energy,
            time,
            length,
            carbon,
            charge,
            currency,
        }
    }

    /// Component-wise sum: the dimension of a product `a · b`.
    #[must_use]
    pub const fn mul(self, rhs: Self) -> Self {
        Self::of(
            self.energy + rhs.energy,
            self.time + rhs.time,
            self.length + rhs.length,
            self.carbon + rhs.carbon,
            self.charge + rhs.charge,
            self.currency + rhs.currency,
        )
    }

    /// Component-wise difference: the dimension of a quotient `a / b`.
    #[must_use]
    pub const fn div(self, rhs: Self) -> Self {
        Self::of(
            self.energy - rhs.energy,
            self.time - rhs.time,
            self.length - rhs.length,
            self.carbon - rhs.carbon,
            self.charge - rhs.charge,
            self.currency - rhs.currency,
        )
    }

    /// `true` when every exponent is zero.
    #[must_use]
    pub const fn is_none(self) -> bool {
        self.energy == 0
            && self.time == 0
            && self.length == 0
            && self.carbon == 0
            && self.charge == 0
            && self.currency == 0
    }
}

/// Whether a registered method crosses the typed boundary inward or outward.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MethodRole {
    /// `Type::from_x(raw) -> Type`: raw `f64` in the method's unit goes in.
    Constructor,
    /// `value.as_x() -> f64`: raw `f64` in the method's unit comes out.
    Accessor,
}

/// One constructor or accessor that converts between a quantity type and a
/// raw `f64` in a specific unit spelling.
#[derive(Clone, Copy, Debug)]
pub struct UnitMethod {
    /// The method name as spelled in source (`from_kilowatt_hours`).
    pub name: &'static str,
    /// Human spelling of the raw side's unit (`kWh`).
    pub unit: &'static str,
    /// Scale of the raw unit relative to the canonical base unit:
    /// `canonical = raw · factor` for constructors, and the accessor
    /// returns `canonical / factor`.
    pub factor: f64,
    /// Constructor or accessor.
    pub role: MethodRole,
}

const fn ctor(name: &'static str, unit: &'static str, factor: f64) -> UnitMethod {
    UnitMethod {
        name,
        unit,
        factor,
        role: MethodRole::Constructor,
    }
}

const fn acc(name: &'static str, unit: &'static str, factor: f64) -> UnitMethod {
    UnitMethod {
        name,
        unit,
        factor,
        role: MethodRole::Accessor,
    }
}

/// One quantity newtype: its dimension, canonical symbol, and boundary
/// methods. `new`/`value` (canonical, factor 1) exist on every type via the
/// `quantity!` macro and are not repeated here.
#[derive(Clone, Copy, Debug)]
pub struct QuantitySpec {
    /// The Rust type name (`Energy`).
    pub type_name: &'static str,
    /// Canonical-unit symbol (`J`).
    pub symbol: &'static str,
    /// Dimension vector of the type.
    pub dim: DimVec,
    /// All unit-spelled constructors and accessors.
    pub methods: &'static [UnitMethod],
}

/// Seconds in a mean Gregorian month (365.25 / 12 days), matching
/// `Time::from_months`.
const SECONDS_PER_MONTH: f64 = 365.25 / 12.0 * 86_400.0;

/// kWh→J conversion, matching `Energy::from_kilowatt_hours`.
const JOULES_PER_KWH: f64 = 3.6e6;

/// Every quantity type exported by this crate, with its full boundary-method
/// table. Order matches the public re-export list in `lib.rs`.
pub const REGISTRY: &[QuantitySpec] = &[
    QuantitySpec {
        type_name: "Energy",
        symbol: "J",
        dim: DimVec::of(1, 0, 0, 0, 0, 0),
        methods: &[
            ctor("from_joules", "J", 1.0),
            ctor("from_kilowatt_hours", "kWh", JOULES_PER_KWH),
            ctor("from_picojoules", "pJ", 1e-12),
            ctor("from_femtojoules", "fJ", 1e-15),
            acc("as_joules", "J", 1.0),
            acc("as_kilowatt_hours", "kWh", JOULES_PER_KWH),
            acc("as_picojoules", "pJ", 1e-12),
            acc("as_femtojoules", "fJ", 1e-15),
        ],
    },
    QuantitySpec {
        type_name: "Power",
        symbol: "W",
        dim: DimVec::of(1, -1, 0, 0, 0, 0),
        methods: &[
            ctor("from_watts", "W", 1.0),
            ctor("from_milliwatts", "mW", 1e-3),
            ctor("from_microwatts", "µW", 1e-6),
            ctor("from_nanowatts", "nW", 1e-9),
            acc("as_watts", "W", 1.0),
            acc("as_milliwatts", "mW", 1e-3),
            acc("as_microwatts", "µW", 1e-6),
        ],
    },
    QuantitySpec {
        type_name: "EnergyArea",
        symbol: "J/m²",
        dim: DimVec::of(1, 0, -2, 0, 0, 0),
        methods: &[
            ctor("from_kwh_per_cm2", "kWh/cm²", JOULES_PER_KWH / 1e-4),
            acc("as_kwh_per_cm2", "kWh/cm²", JOULES_PER_KWH / 1e-4),
        ],
    },
    QuantitySpec {
        type_name: "Time",
        symbol: "s",
        dim: DimVec::of(0, 1, 0, 0, 0, 0),
        methods: &[
            ctor("from_seconds", "s", 1.0),
            ctor("from_nanoseconds", "ns", 1e-9),
            ctor("from_picoseconds", "ps", 1e-12),
            ctor("from_microseconds", "µs", 1e-6),
            ctor("from_hours", "h", 3600.0),
            ctor("from_days", "d", 86_400.0),
            ctor("from_months", "months", SECONDS_PER_MONTH),
            acc("as_seconds", "s", 1.0),
            acc("as_nanoseconds", "ns", 1e-9),
            acc("as_picoseconds", "ps", 1e-12),
            acc("as_hours", "h", 3600.0),
            acc("as_days", "d", 86_400.0),
            acc("as_months", "months", SECONDS_PER_MONTH),
        ],
    },
    QuantitySpec {
        type_name: "Frequency",
        symbol: "Hz",
        dim: DimVec::of(0, -1, 0, 0, 0, 0),
        methods: &[
            ctor("from_hertz", "Hz", 1.0),
            ctor("from_megahertz", "MHz", 1e6),
            ctor("from_gigahertz", "GHz", 1e9),
            acc("as_hertz", "Hz", 1.0),
            acc("as_megahertz", "MHz", 1e6),
            acc("as_gigahertz", "GHz", 1e9),
        ],
    },
    QuantitySpec {
        type_name: "Length",
        symbol: "m",
        dim: DimVec::of(0, 0, 1, 0, 0, 0),
        methods: &[
            ctor("from_meters", "m", 1.0),
            ctor("from_millimeters", "mm", 1e-3),
            ctor("from_micrometers", "µm", 1e-6),
            ctor("from_nanometers", "nm", 1e-9),
            acc("as_meters", "m", 1.0),
            acc("as_millimeters", "mm", 1e-3),
            acc("as_micrometers", "µm", 1e-6),
            acc("as_nanometers", "nm", 1e-9),
        ],
    },
    QuantitySpec {
        type_name: "Area",
        symbol: "m²",
        dim: DimVec::of(0, 0, 2, 0, 0, 0),
        methods: &[
            ctor("from_square_meters", "m²", 1.0),
            ctor("from_square_centimeters", "cm²", 1e-4),
            ctor("from_square_millimeters", "mm²", 1e-6),
            ctor("from_square_micrometers", "µm²", 1e-12),
            acc("as_square_meters", "m²", 1.0),
            acc("as_square_centimeters", "cm²", 1e-4),
            acc("as_square_millimeters", "mm²", 1e-6),
            acc("as_square_micrometers", "µm²", 1e-12),
        ],
    },
    QuantitySpec {
        type_name: "Volume",
        symbol: "m³",
        dim: DimVec::of(0, 0, 3, 0, 0, 0),
        methods: &[
            ctor("from_cubic_meters", "m³", 1.0),
            ctor("from_litres", "L", 1e-3),
            ctor("from_millilitres", "mL", 1e-6),
            acc("as_cubic_meters", "m³", 1.0),
            acc("as_litres", "L", 1e-3),
            acc("as_millilitres", "mL", 1e-6),
        ],
    },
    QuantitySpec {
        type_name: "CarbonMass",
        symbol: "gCO₂e",
        dim: DimVec::of(0, 0, 0, 1, 0, 0),
        methods: &[
            ctor("from_grams", "gCO₂e", 1.0),
            ctor("from_kilograms", "kgCO₂e", 1e3),
            ctor("from_tonnes", "tCO₂e", 1e6),
            acc("as_grams", "gCO₂e", 1.0),
            acc("as_kilograms", "kgCO₂e", 1e3),
            acc("as_tonnes", "tCO₂e", 1e6),
        ],
    },
    QuantitySpec {
        type_name: "CarbonIntensity",
        symbol: "gCO₂e/J",
        dim: DimVec::of(-1, 0, 0, 1, 0, 0),
        methods: &[
            ctor("from_g_per_kwh", "gCO₂e/kWh", 1.0 / JOULES_PER_KWH),
            acc("as_g_per_kwh", "gCO₂e/kWh", 1.0 / JOULES_PER_KWH),
        ],
    },
    QuantitySpec {
        type_name: "CarbonArea",
        symbol: "gCO₂e/m²",
        dim: DimVec::of(0, 0, -2, 1, 0, 0),
        methods: &[
            ctor("from_g_per_cm2", "gCO₂e/cm²", 1e4),
            ctor("from_kg_per_cm2", "kgCO₂e/cm²", 1e7),
            acc("as_g_per_cm2", "gCO₂e/cm²", 1e4),
        ],
    },
    QuantitySpec {
        type_name: "CarbonPerEnergyArea",
        symbol: "gCO₂e/m²",
        dim: DimVec::of(0, 0, -2, 1, 0, 0),
        methods: &[],
    },
    QuantitySpec {
        type_name: "CarbonDelay",
        symbol: "gCO₂e·s",
        dim: DimVec::of(0, 1, 0, 1, 0, 0),
        methods: &[
            ctor("from_gram_seconds", "gCO₂e·s", 1.0),
            acc("as_grams_per_hertz", "gCO₂e/Hz", 1.0),
        ],
    },
    QuantitySpec {
        type_name: "Voltage",
        symbol: "V",
        dim: DimVec::of(1, 0, 0, 0, -1, 0),
        methods: &[
            ctor("from_volts", "V", 1.0),
            ctor("from_millivolts", "mV", 1e-3),
            acc("as_volts", "V", 1.0),
            acc("as_millivolts", "mV", 1e-3),
        ],
    },
    QuantitySpec {
        type_name: "Current",
        symbol: "A",
        dim: DimVec::of(0, -1, 0, 0, 1, 0),
        methods: &[
            ctor("from_amperes", "A", 1.0),
            ctor("from_microamperes", "µA", 1e-6),
            ctor("from_nanoamperes", "nA", 1e-9),
            acc("as_amperes", "A", 1.0),
            acc("as_microamperes", "µA", 1e-6),
            acc("as_nanoamperes", "nA", 1e-9),
        ],
    },
    QuantitySpec {
        type_name: "Charge",
        symbol: "C",
        dim: DimVec::of(0, 0, 0, 0, 1, 0),
        methods: &[
            ctor("from_coulombs", "C", 1.0),
            ctor("from_femtocoulombs", "fC", 1e-15),
            acc("as_coulombs", "C", 1.0),
            acc("as_femtocoulombs", "fC", 1e-15),
        ],
    },
    QuantitySpec {
        type_name: "Capacitance",
        symbol: "F",
        dim: DimVec::of(-1, 0, 0, 0, 2, 0),
        methods: &[
            ctor("from_farads", "F", 1.0),
            ctor("from_femtofarads", "fF", 1e-15),
            ctor("from_attofarads", "aF", 1e-18),
            acc("as_farads", "F", 1.0),
            acc("as_femtofarads", "fF", 1e-15),
            acc("as_attofarads", "aF", 1e-18),
        ],
    },
    QuantitySpec {
        type_name: "Resistance",
        symbol: "Ω",
        dim: DimVec::of(1, 1, 0, 0, -2, 0),
        methods: &[
            ctor("from_ohms", "Ω", 1.0),
            ctor("from_kilo_ohms", "kΩ", 1e3),
            acc("as_ohms", "Ω", 1.0),
        ],
    },
];

/// Dimensional products `A · B = C` implemented by this crate's `Mul`
/// impls, by type name (the `Length · Length = Area` row covers the
/// `square` form).
pub const PRODUCTS: &[(&str, &str, &str)] = &[
    ("Power", "Time", "Energy"),
    ("EnergyArea", "Area", "Energy"),
    ("CarbonIntensity", "Energy", "CarbonMass"),
    ("CarbonArea", "Area", "CarbonMass"),
    ("CarbonMass", "Time", "CarbonDelay"),
    ("Capacitance", "Voltage", "Charge"),
    ("Current", "Time", "Charge"),
    ("Voltage", "Current", "Power"),
    ("Resistance", "Capacitance", "Time"),
    ("Length", "Length", "Area"),
    ("Area", "Length", "Volume"),
];

/// Dimensional quotients `A / B = C` implemented by this crate's `Div`
/// impls. `A / A = f64` (the macro-provided ratio) is implicit for every
/// type and not listed.
pub const QUOTIENTS: &[(&str, &str, &str)] = &[
    ("Energy", "Time", "Power"),
    ("Energy", "Power", "Time"),
    ("Energy", "Area", "EnergyArea"),
    ("CarbonMass", "Energy", "CarbonIntensity"),
    ("CarbonMass", "Area", "CarbonArea"),
    ("CarbonDelay", "Time", "CarbonMass"),
    ("CarbonDelay", "CarbonMass", "Time"),
    ("Charge", "Voltage", "Capacitance"),
    ("Charge", "Capacitance", "Voltage"),
    ("Charge", "Current", "Time"),
    ("Charge", "Time", "Current"),
    ("Power", "Voltage", "Current"),
    ("Voltage", "Current", "Resistance"),
    ("Voltage", "Resistance", "Current"),
    ("Area", "Length", "Length"),
    ("Volume", "Area", "Length"),
    ("Volume", "Length", "Area"),
];

/// Methods that convert one quantity type into another without touching
/// `f64`: `(receiver type, method name, result type)`.
pub const TYPED_CONVERSIONS: &[(&str, &str, &str)] = &[
    ("Time", "to_frequency", "Frequency"),
    ("Frequency", "period", "Time"),
    ("CarbonPerEnergyArea", "to_carbon_area", "CarbonArea"),
    ("Energy", "average_power", "Power"),
    ("Energy", "per_cycle_power", "Power"),
    ("Power", "energy_per_cycle", "Energy"),
    ("Area", "of_wafer", "Area"),
];

/// Looks up a quantity spec by type name.
#[must_use]
pub fn spec_of(type_name: &str) -> Option<&'static QuantitySpec> {
    REGISTRY.iter().find(|s| s.type_name == type_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_compose() {
        let energy = DimVec::of(1, 0, 0, 0, 0, 0);
        let time = DimVec::of(0, 1, 0, 0, 0, 0);
        let power = energy.div(time);
        assert_eq!(power, DimVec::of(1, -1, 0, 0, 0, 0));
        assert_eq!(power.mul(time), energy);
        assert!(DimVec::NONE.is_none());
        assert!(!power.is_none());
    }

    #[test]
    fn product_and_quotient_tables_are_dimensionally_consistent() {
        let dim = |name: &str| spec_of(name).map(|s| s.dim);
        for &(a, b, c) in PRODUCTS {
            let (da, db, dc) = (dim(a), dim(b), dim(c));
            assert!(
                da.is_some() && db.is_some() && dc.is_some(),
                "unknown type in product {a}·{b}={c}"
            );
            assert_eq!(da.unwrap().mul(db.unwrap()), dc.unwrap(), "{a}·{b}≠{c}");
        }
        for &(a, b, c) in QUOTIENTS {
            let (da, db, dc) = (dim(a), dim(b), dim(c));
            assert!(
                da.is_some() && db.is_some() && dc.is_some(),
                "unknown type in quotient {a}/{b}={c}"
            );
            assert_eq!(da.unwrap().div(db.unwrap()), dc.unwrap(), "{a}/{b}≠{c}");
        }
    }

    #[test]
    fn method_names_are_unique_across_the_registry() {
        // The lint seeding table resolves accessors/constructors by bare
        // method name, so a name may appear on at most one type.
        let mut seen: Vec<(&str, &str)> = Vec::new();
        for spec in REGISTRY {
            for m in spec.methods {
                assert!(
                    !seen
                        .iter()
                        .any(|&(n, t)| n == m.name && t != spec.type_name),
                    "method {} appears on more than one type",
                    m.name
                );
                seen.push((m.name, spec.type_name));
            }
        }
    }
}
