//! The `quantity!` macro: boilerplate for scalar physical-quantity newtypes.

/// Defines a physical-quantity newtype over `f64` with the full set of
/// arithmetic and comparison trait impls shared by every unit in this crate.
///
/// Generated API per type:
/// - `new(base)` / `value()` — construct from / read back the canonical unit
/// - `zero()` and `Default` (zero)
/// - `Add`, `Sub`, `Neg`, `AddAssign`, `SubAssign` with `Self`
/// - `Mul<f64>`, `Div<f64>`, `f64 * Self`, and `Div<Self> -> f64` (ratio)
/// - `Sum` over iterators of `Self`
/// - `PartialOrd`, `Display` (canonical unit with symbol), `Debug`
/// - `min`/`max`/`abs`/`clamp` helpers and `is_finite`
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, base = $base_doc:literal, symbol = $symbol:literal
    ) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            #[doc = concat!("Creates a value from the canonical unit (", $base_doc, ").")]
            #[inline]
            pub const fn new(base: f64) -> Self {
                Self(base)
            }

            #[doc = concat!("Returns the value in the canonical unit (", $base_doc, ").")]
            #[inline]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the zero value.
            #[inline]
            pub const fn zero() -> Self {
                Self(0.0)
            }

            /// Returns the smaller of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of `self` and `other`.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the value to the inclusive range `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi` or either bound is NaN.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                Self(self.0.clamp(lo.0, hi.0))
            }

            /// Returns `true` if the value is neither infinite nor NaN.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl<'a> core::iter::Sum<&'a $name> for $name {
            fn sum<I: Iterator<Item = &'a Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                if let Some(precision) = f.precision() {
                    write!(f, "{:.*} {}", precision, self.0, $symbol)
                } else {
                    write!(f, "{} {}", self.0, $symbol)
                }
            }
        }

        impl core::fmt::Debug for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, concat!(stringify!($name), "({} ", $symbol, ")"), self.0)
            }
        }
    };
}

/// Implements `Mul` for a dimensional product `$a * $b = $c` (and the
/// commuted order when the operand types differ). Use the `square` form for
/// `$a * $a = $c`.
macro_rules! quantity_product {
    (square $a:ty => $c:ty) => {
        impl core::ops::Mul for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: Self) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }
    };
    ($a:ty, $b:ty => $c:ty) => {
        impl core::ops::Mul<$b> for $a {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $b) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }

        impl core::ops::Mul<$a> for $b {
            type Output = $c;
            #[inline]
            fn mul(self, rhs: $a) -> $c {
                <$c>::new(self.value() * rhs.value())
            }
        }
    };
}

/// Implements `Div` for a dimensional quotient `$a / $b = $c`.
macro_rules! quantity_quotient {
    ($a:ty, $b:ty => $c:ty) => {
        impl core::ops::Div<$b> for $a {
            type Output = $c;
            #[inline]
            fn div(self, rhs: $b) -> $c {
                <$c>::new(self.value() / rhs.value())
            }
        }
    };
}
