//! Pins `ppatc_units::registry` to the real constructor/accessor
//! implementations: every `UnitMethod` factor must round-trip through the
//! method it names, and every registered method must be covered by the
//! dispatch table below — so adding a boundary method without registering
//! it (or registering a wrong factor) fails this suite, not a downstream
//! lint run.

use ppatc_units::registry::{MethodRole, REGISTRY};
use ppatc_units::{
    approx_eq, Area, Capacitance, CarbonArea, CarbonDelay, CarbonIntensity, CarbonMass, Charge,
    Current, Energy, EnergyArea, Frequency, Length, Power, Resistance, Time, Voltage, Volume,
};

/// Calls `Type::method(raw)` for a registered constructor and returns the
/// canonical value, or `None` when the (type, method) pair is not in the
/// dispatch table.
fn construct(type_name: &str, method: &str, raw: f64) -> Option<f64> {
    Some(match (type_name, method) {
        ("Energy", "from_joules") => Energy::from_joules(raw).value(),
        ("Energy", "from_kilowatt_hours") => Energy::from_kilowatt_hours(raw).value(),
        ("Energy", "from_picojoules") => Energy::from_picojoules(raw).value(),
        ("Energy", "from_femtojoules") => Energy::from_femtojoules(raw).value(),
        ("Power", "from_watts") => Power::from_watts(raw).value(),
        ("Power", "from_milliwatts") => Power::from_milliwatts(raw).value(),
        ("Power", "from_microwatts") => Power::from_microwatts(raw).value(),
        ("Power", "from_nanowatts") => Power::from_nanowatts(raw).value(),
        ("EnergyArea", "from_kwh_per_cm2") => EnergyArea::from_kwh_per_cm2(raw).value(),
        ("Time", "from_seconds") => Time::from_seconds(raw).value(),
        ("Time", "from_nanoseconds") => Time::from_nanoseconds(raw).value(),
        ("Time", "from_picoseconds") => Time::from_picoseconds(raw).value(),
        ("Time", "from_microseconds") => Time::from_microseconds(raw).value(),
        ("Time", "from_hours") => Time::from_hours(raw).value(),
        ("Time", "from_days") => Time::from_days(raw).value(),
        ("Time", "from_months") => Time::from_months(raw).value(),
        ("Frequency", "from_hertz") => Frequency::from_hertz(raw).value(),
        ("Frequency", "from_megahertz") => Frequency::from_megahertz(raw).value(),
        ("Frequency", "from_gigahertz") => Frequency::from_gigahertz(raw).value(),
        ("Length", "from_meters") => Length::from_meters(raw).value(),
        ("Length", "from_millimeters") => Length::from_millimeters(raw).value(),
        ("Length", "from_micrometers") => Length::from_micrometers(raw).value(),
        ("Length", "from_nanometers") => Length::from_nanometers(raw).value(),
        ("Area", "from_square_meters") => Area::from_square_meters(raw).value(),
        ("Area", "from_square_centimeters") => Area::from_square_centimeters(raw).value(),
        ("Area", "from_square_millimeters") => Area::from_square_millimeters(raw).value(),
        ("Area", "from_square_micrometers") => Area::from_square_micrometers(raw).value(),
        ("Volume", "from_cubic_meters") => Volume::from_cubic_meters(raw).value(),
        ("Volume", "from_litres") => Volume::from_litres(raw).value(),
        ("Volume", "from_millilitres") => Volume::from_millilitres(raw).value(),
        ("CarbonMass", "from_grams") => CarbonMass::from_grams(raw).value(),
        ("CarbonMass", "from_kilograms") => CarbonMass::from_kilograms(raw).value(),
        ("CarbonMass", "from_tonnes") => CarbonMass::from_tonnes(raw).value(),
        ("CarbonIntensity", "from_g_per_kwh") => CarbonIntensity::from_g_per_kwh(raw).value(),
        ("CarbonArea", "from_g_per_cm2") => CarbonArea::from_g_per_cm2(raw).value(),
        ("CarbonArea", "from_kg_per_cm2") => CarbonArea::from_kg_per_cm2(raw).value(),
        ("CarbonDelay", "from_gram_seconds") => CarbonDelay::from_gram_seconds(raw).value(),
        ("Voltage", "from_volts") => Voltage::from_volts(raw).value(),
        ("Voltage", "from_millivolts") => Voltage::from_millivolts(raw).value(),
        ("Current", "from_amperes") => Current::from_amperes(raw).value(),
        ("Current", "from_microamperes") => Current::from_microamperes(raw).value(),
        ("Current", "from_nanoamperes") => Current::from_nanoamperes(raw).value(),
        ("Charge", "from_coulombs") => Charge::from_coulombs(raw).value(),
        ("Charge", "from_femtocoulombs") => Charge::from_femtocoulombs(raw).value(),
        ("Capacitance", "from_farads") => Capacitance::from_farads(raw).value(),
        ("Capacitance", "from_femtofarads") => Capacitance::from_femtofarads(raw).value(),
        ("Capacitance", "from_attofarads") => Capacitance::from_attofarads(raw).value(),
        ("Resistance", "from_ohms") => Resistance::from_ohms(raw).value(),
        ("Resistance", "from_kilo_ohms") => Resistance::from_kilo_ohms(raw).value(),
        _ => return None,
    })
}

/// Calls `Type::new(canonical).method()` for a registered accessor.
fn access(type_name: &str, method: &str, canonical: f64) -> Option<f64> {
    Some(match (type_name, method) {
        ("Energy", "as_joules") => Energy::new(canonical).as_joules(),
        ("Energy", "as_kilowatt_hours") => Energy::new(canonical).as_kilowatt_hours(),
        ("Energy", "as_picojoules") => Energy::new(canonical).as_picojoules(),
        ("Energy", "as_femtojoules") => Energy::new(canonical).as_femtojoules(),
        ("Power", "as_watts") => Power::new(canonical).as_watts(),
        ("Power", "as_milliwatts") => Power::new(canonical).as_milliwatts(),
        ("Power", "as_microwatts") => Power::new(canonical).as_microwatts(),
        ("EnergyArea", "as_kwh_per_cm2") => EnergyArea::new(canonical).as_kwh_per_cm2(),
        ("Time", "as_seconds") => Time::new(canonical).as_seconds(),
        ("Time", "as_nanoseconds") => Time::new(canonical).as_nanoseconds(),
        ("Time", "as_picoseconds") => Time::new(canonical).as_picoseconds(),
        ("Time", "as_hours") => Time::new(canonical).as_hours(),
        ("Time", "as_days") => Time::new(canonical).as_days(),
        ("Time", "as_months") => Time::new(canonical).as_months(),
        ("Frequency", "as_hertz") => Frequency::new(canonical).as_hertz(),
        ("Frequency", "as_megahertz") => Frequency::new(canonical).as_megahertz(),
        ("Frequency", "as_gigahertz") => Frequency::new(canonical).as_gigahertz(),
        ("Length", "as_meters") => Length::new(canonical).as_meters(),
        ("Length", "as_millimeters") => Length::new(canonical).as_millimeters(),
        ("Length", "as_micrometers") => Length::new(canonical).as_micrometers(),
        ("Length", "as_nanometers") => Length::new(canonical).as_nanometers(),
        ("Area", "as_square_meters") => Area::new(canonical).as_square_meters(),
        ("Area", "as_square_centimeters") => Area::new(canonical).as_square_centimeters(),
        ("Area", "as_square_millimeters") => Area::new(canonical).as_square_millimeters(),
        ("Area", "as_square_micrometers") => Area::new(canonical).as_square_micrometers(),
        ("Volume", "as_cubic_meters") => Volume::new(canonical).as_cubic_meters(),
        ("Volume", "as_litres") => Volume::new(canonical).as_litres(),
        ("Volume", "as_millilitres") => Volume::new(canonical).as_millilitres(),
        ("CarbonMass", "as_grams") => CarbonMass::new(canonical).as_grams(),
        ("CarbonMass", "as_kilograms") => CarbonMass::new(canonical).as_kilograms(),
        ("CarbonMass", "as_tonnes") => CarbonMass::new(canonical).as_tonnes(),
        ("CarbonIntensity", "as_g_per_kwh") => CarbonIntensity::new(canonical).as_g_per_kwh(),
        ("CarbonArea", "as_g_per_cm2") => CarbonArea::new(canonical).as_g_per_cm2(),
        ("CarbonDelay", "as_grams_per_hertz") => CarbonDelay::new(canonical).as_grams_per_hertz(),
        ("Voltage", "as_volts") => Voltage::new(canonical).as_volts(),
        ("Voltage", "as_millivolts") => Voltage::new(canonical).as_millivolts(),
        ("Current", "as_amperes") => Current::new(canonical).as_amperes(),
        ("Current", "as_microamperes") => Current::new(canonical).as_microamperes(),
        ("Current", "as_nanoamperes") => Current::new(canonical).as_nanoamperes(),
        ("Charge", "as_coulombs") => Charge::new(canonical).as_coulombs(),
        ("Charge", "as_femtocoulombs") => Charge::new(canonical).as_femtocoulombs(),
        ("Capacitance", "as_farads") => Capacitance::new(canonical).as_farads(),
        ("Capacitance", "as_femtofarads") => Capacitance::new(canonical).as_femtofarads(),
        ("Capacitance", "as_attofarads") => Capacitance::new(canonical).as_attofarads(),
        ("Resistance", "as_ohms") => Resistance::new(canonical).as_ohms(),
        _ => return None,
    })
}

#[test]
fn every_registered_factor_matches_its_implementation() {
    // A deliberately awkward raw value so scale errors cannot cancel.
    const RAW: f64 = 7.25;
    for spec in REGISTRY {
        for m in spec.methods {
            match m.role {
                MethodRole::Constructor => {
                    let got = construct(spec.type_name, m.name, RAW).unwrap_or_else(|| {
                        panic!("{}::{} missing from dispatch table", spec.type_name, m.name)
                    });
                    assert!(
                        approx_eq(got, RAW * m.factor, 1e-12),
                        "{}::{}({RAW}) = {got}, registry factor {} expects {}",
                        spec.type_name,
                        m.name,
                        m.factor,
                        RAW * m.factor
                    );
                }
                MethodRole::Accessor => {
                    let got = access(spec.type_name, m.name, RAW).unwrap_or_else(|| {
                        panic!("{}::{} missing from dispatch table", spec.type_name, m.name)
                    });
                    assert!(
                        approx_eq(got, RAW / m.factor, 1e-12),
                        "{}.{}() on canonical {RAW} = {got}, registry factor {} expects {}",
                        spec.type_name,
                        m.name,
                        m.factor,
                        RAW / m.factor
                    );
                }
            }
        }
    }
}

#[test]
fn registry_covers_every_exported_quantity_type() {
    let names: Vec<&str> = REGISTRY.iter().map(|s| s.type_name).collect();
    for expected in [
        "Energy",
        "Power",
        "EnergyArea",
        "Time",
        "Frequency",
        "Length",
        "Area",
        "Volume",
        "CarbonMass",
        "CarbonIntensity",
        "CarbonArea",
        "CarbonPerEnergyArea",
        "CarbonDelay",
        "Voltage",
        "Current",
        "Charge",
        "Capacitance",
        "Resistance",
    ] {
        assert!(
            names.contains(&expected),
            "{expected} missing from REGISTRY"
        );
    }
    assert_eq!(names.len(), 18, "unexpected registry size: {names:?}");
}
