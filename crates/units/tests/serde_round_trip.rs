//! Serde round-trip tests (run with `--features serde`).
//!
//! Quantities serialize transparently as their canonical-unit `f64`, so
//! carbon reports written by one tool read back bit-exactly in another.

#![cfg(feature = "serde")]

use ppatc_units::*;

#[test]
fn quantities_round_trip_through_json() {
    let energy = Energy::from_kilowatt_hours(699.0);
    let json = serde_json::to_string(&energy).expect("serializes");
    let back: Energy = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, energy);

    let carbon = CarbonMass::from_grams(3.11);
    let back: CarbonMass =
        serde_json::from_str(&serde_json::to_string(&carbon).expect("serializes"))
            .expect("deserializes");
    assert_eq!(back, carbon);
}

#[test]
fn serialization_is_transparent_f64() {
    // A quantity serializes as a bare number (its canonical unit), not a
    // struct — so external tools can consume reports without knowing the
    // newtypes.
    let p = Power::from_watts(0.0097);
    assert_eq!(serde_json::to_string(&p).expect("serializes"), "0.0097");
    let ci: CarbonIntensity = serde_json::from_str("0.0001").expect("deserializes");
    assert!((ci.value() - 0.0001).abs() < 1e-18);
}

#[test]
fn a_full_report_structure_serializes() {
    #[derive(serde::Serialize, serde::Deserialize, PartialEq, Debug)]
    struct Report {
        embodied: CarbonMass,
        power: Power,
        lifetime: Time,
        area: Area,
    }
    let report = Report {
        embodied: CarbonMass::from_grams(3.63),
        power: Power::from_milliwatts(8.5),
        lifetime: Time::from_months(24.0),
        area: Area::from_square_millimeters(0.053),
    };
    let json = serde_json::to_string_pretty(&report).expect("serializes");
    let back: Report = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(back, report);
}
