//! Conversion round-trip tests for the unit conversions the carbon model
//! leans on hardest: Eq. 2 multiplies gCO₂e/kWh grid intensities by kWh
//! fab energies and mm² die areas, and tCDP integrates over month-quoted
//! lifetimes — a silent factor error in any one of these corrupts every
//! figure downstream.

use ppatc_units::{Area, CarbonIntensity, Energy, Time};

const SECONDS_PER_MONTH: f64 = 365.25 / 12.0 * 86_400.0; // mean Julian-year month
const JOULES_PER_KWH: f64 = 3.6e6;

fn rel_close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-12 * b.abs().max(1.0)
}

#[test]
fn kwh_joule_round_trip() {
    // Fig. 2b: 699 kWh per wafer.
    let e = Energy::from_kilowatt_hours(699.0);
    assert!(rel_close(e.as_joules(), 699.0 * JOULES_PER_KWH));
    assert!(rel_close(e.as_kilowatt_hours(), 699.0));
    let back = Energy::from_joules(e.as_joules());
    assert!(rel_close(back.as_kilowatt_hours(), 699.0));
}

#[test]
fn square_millimeter_square_meter_round_trip() {
    // A 300 mm wafer is ~70,686 mm².
    let a = Area::from_square_millimeters(70_686.0);
    assert!(rel_close(a.as_square_meters(), 70_686.0 * 1e-6));
    let back = Area::from_square_meters(a.as_square_meters());
    assert!(rel_close(back.as_square_millimeters(), 70_686.0));
}

#[test]
fn carbon_intensity_g_per_kwh_g_per_joule_round_trip() {
    // Fig. 2c: U.S. grid, 380 gCO₂e/kWh.
    let us = CarbonIntensity::from_g_per_kwh(380.0);
    // The base value is gCO₂e/J.
    assert!(rel_close(us.value(), 380.0 / JOULES_PER_KWH));
    let back = CarbonIntensity::new(us.value());
    assert!(rel_close(back.as_g_per_kwh(), 380.0));
}

#[test]
fn months_seconds_round_trip() {
    // The paper's lifetime axis runs in months (tCDP at 24 months).
    let life = Time::from_months(24.0);
    assert!(rel_close(life.as_seconds(), 24.0 * SECONDS_PER_MONTH));
    let back = Time::from_seconds(life.as_seconds());
    assert!(rel_close(back.as_months(), 24.0));
}

#[test]
fn intensity_times_energy_recovers_known_mass() {
    // 380 gCO₂e/kWh × 699 kWh = 265.62 kgCO₂e — the per-wafer fab
    // electricity carbon in the paper's baseline U.S. scenario.
    let c = CarbonIntensity::from_g_per_kwh(380.0) * Energy::from_kilowatt_hours(699.0);
    assert!(rel_close(c.as_kilograms(), 265.62));
}

#[test]
fn conversions_compose_through_mixed_paths() {
    // kWh → J → kWh survives scaling by an area ratio (dimensionless),
    // mirroring how the embodied pipeline splits wafer energy across dies.
    let wafer = Energy::from_kilowatt_hours(699.0);
    let die_share = Area::from_square_millimeters(0.139).as_square_meters()
        / Area::from_square_millimeters(70_686.0).as_square_meters();
    let per_die = Energy::from_joules(wafer.as_joules() * die_share);
    assert!(rel_close(
        per_die.as_kilowatt_hours(),
        699.0 * (0.139 / 70_686.0)
    ));
}
